#!/usr/bin/env bash
# CI gate: formatting, lints, release build, docs, and the test suites.
# Run from anywhere inside the repository.
#
# This script is the single entrypoint for both local runs and CI: every
# job in .github/workflows/ci.yml invokes it with one step name, so the
# two can never drift.
#
# Usage:
#   scripts/check.sh                  run every step (the full gate)
#   scripts/check.sh --quick          full gate minus the release build
#   scripts/check.sh <step> [...]     run only the named steps, in order
#
# Steps: fmt clippy build test doc stress
set -euo pipefail

cd "$(dirname "$0")/.."

usage() {
    sed -n '2,14p' "$0" | sed 's/^# \{0,1\}//'
    exit 2
}

run_fmt() {
    echo "== cargo fmt --check"
    cargo fmt --all -- --check
}

run_clippy() {
    echo "== cargo clippy -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
}

run_build() {
    echo "== cargo build --release"
    cargo build --release --workspace
}

run_test() {
    echo "== cargo test"
    cargo test -q --workspace
}

run_doc() {
    echo "== cargo doc -D warnings"
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
}

run_stress() {
    echo "== stress: concurrent jobs with failure injection"
    cargo test -q -p spangle-dataflow --test stress_concurrent_jobs -- --ignored
    echo "== stress: executor-kill chaos recovery"
    cargo test -q -p spangle-dataflow --test chaos_recovery -- --ignored
}

steps=()
for arg in "$@"; do
    case "$arg" in
    --quick) steps+=(fmt clippy test doc) ;;
    fmt | clippy | build | test | doc | stress) steps+=("$arg") ;;
    -h | --help | *) usage ;;
    esac
done
if [ ${#steps[@]} -eq 0 ]; then
    steps=(fmt clippy build test doc)
fi

for step in "${steps[@]}"; do
    "run_$step"
done

echo "== all checks passed"
