#!/usr/bin/env bash
# CI gate: formatting, lints, release build, docs, and the test suites.
# Run from anywhere inside the repository.
#
# This script is the single entrypoint for both local runs and CI: every
# job in .github/workflows/ci.yml invokes it with one step name, so the
# two can never drift.
#
# Usage:
#   scripts/check.sh                  run every step (the full gate)
#   scripts/check.sh --quick          full gate minus the release build
#   scripts/check.sh <step> [...]     run only the named steps, in order
#
# Steps: fmt clippy build test planoff doc stress
set -euo pipefail

cd "$(dirname "$0")/.."

usage() {
    sed -n '2,14p' "$0" | sed 's/^# \{0,1\}//'
    exit 2
}

run_fmt() {
    echo "== cargo fmt --check"
    cargo fmt --all -- --check
}

run_clippy() {
    echo "== cargo clippy -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
}

run_build() {
    echo "== cargo build --release"
    cargo build --release --workspace
}

# Wall-clock watchdog for the test steps: a scheduler regression that
# wedges a job (admission never draining, a deadline never firing, a lost
# wake-up) otherwise hangs CI until the runner's global timeout. Override
# with WATCHDOG_SECS; 0 disables.
WATCHDOG_SECS="${WATCHDOG_SECS:-600}"

watchdog() {
    if [ "$WATCHDOG_SECS" -gt 0 ] && command -v timeout >/dev/null; then
        timeout --signal=KILL "$WATCHDOG_SECS" "$@"
    else
        "$@"
    fi
}

run_test() {
    echo "== cargo test (watchdog ${WATCHDOG_SECS}s)"
    watchdog cargo test -q --workspace
}

# The adaptive plan layer (narrow-chain fusion, shuffle elision, runtime
# partition coalescing) defaults on; this step proves the unoptimised
# execution paths still work by running the whole suite with every
# planner rewrite disabled. Tests that assert a rewrite's own behaviour
# pin their flags through the builder, which wins over the env default.
run_planoff() {
    echo "== cargo test with SPANGLE_DISABLE_PLANNER=1 (watchdog ${WATCHDOG_SECS}s)"
    SPANGLE_DISABLE_PLANNER=1 watchdog cargo test -q --workspace
}

run_doc() {
    echo "== cargo doc -D warnings"
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
}

run_stress() {
    echo "== stress: concurrent jobs, admission overload (watchdog ${WATCHDOG_SECS}s)"
    # Serial: both scenarios assert on process-wide thread counts.
    watchdog cargo test -q -p spangle-dataflow --test stress_concurrent_jobs -- \
        --ignored --test-threads=1
    echo "== stress: executor-kill chaos recovery"
    watchdog cargo test -q -p spangle-dataflow --test chaos_recovery -- --ignored
}

steps=()
for arg in "$@"; do
    case "$arg" in
    --quick) steps+=(fmt clippy test planoff doc) ;;
    fmt | clippy | build | test | planoff | doc | stress) steps+=("$arg") ;;
    -h | --help | *) usage ;;
    esac
done
if [ ${#steps[@]} -eq 0 ]; then
    steps=(fmt clippy build test planoff doc)
fi

for step in "${steps[@]}"; do
    "run_$step"
done

echo "== all checks passed"
