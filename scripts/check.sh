#!/usr/bin/env bash
# CI gate: formatting, lints, release build, docs, and the test suites.
# Run from anywhere inside the repository.
#
# This script is the single entrypoint for both local runs and CI: every
# job in .github/workflows/ci.yml invokes it with one step name, so the
# two can never drift.
#
# Usage:
#   scripts/check.sh                  run every step (the full gate)
#   scripts/check.sh --quick          full gate minus the release build
#   scripts/check.sh <step> [...]     run only the named steps, in order
#
# Steps: fmt clippy build test planoff specoff spill health healthoff
# proc doc stress bench
# (proc, stress and bench are CI-job-only: they are not part of the
# default full gate because of their runtime.)
set -euo pipefail

cd "$(dirname "$0")/.."

usage() {
    # Print the leading comment block (however long it grows), shebang
    # excluded — a hard-coded line range here silently truncates the
    # help text every time a step is added above.
    awk 'NR > 1 && !/^#/ { exit } NR > 1 { sub(/^# ?/, ""); print }' "$0"
    exit 2
}

run_fmt() {
    echo "== cargo fmt --check"
    cargo fmt --all -- --check
}

run_clippy() {
    echo "== cargo clippy -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
}

run_build() {
    echo "== cargo build --release"
    cargo build --release --workspace
}

# Wall-clock watchdog for the test steps: a scheduler regression that
# wedges a job (admission never draining, a deadline never firing, a lost
# wake-up) otherwise hangs CI until the runner's global timeout. Override
# with WATCHDOG_SECS; 0 disables.
WATCHDOG_SECS="${WATCHDOG_SECS:-600}"

watchdog() {
    if [ "$WATCHDOG_SECS" -gt 0 ] && command -v timeout >/dev/null; then
        timeout --signal=KILL "$WATCHDOG_SECS" "$@"
    else
        "$@"
    fi
}

run_test() {
    echo "== cargo test (watchdog ${WATCHDOG_SECS}s)"
    watchdog cargo test -q --workspace
}

# The adaptive plan layer (narrow-chain fusion, shuffle elision, runtime
# partition coalescing) defaults on; this step proves the unoptimised
# execution paths still work by running the whole suite with every
# planner rewrite disabled. Tests that assert a rewrite's own behaviour
# pin their flags through the builder, which wins over the env default.
run_planoff() {
    echo "== cargo test with SPANGLE_DISABLE_PLANNER=1 (watchdog ${WATCHDOG_SECS}s)"
    SPANGLE_DISABLE_PLANNER=1 watchdog cargo test -q --workspace
}

# Speculative execution defaults on; this step proves the scheduler is
# correct without its straggler mitigation by running the whole suite
# with speculation disabled. Tests that assert speculation's own
# behaviour pin it on through the builder, which wins over the env
# default.
run_specoff() {
    echo "== cargo test with SPANGLE_DISABLE_SPECULATION=1 (watchdog ${WATCHDOG_SECS}s)"
    SPANGLE_DISABLE_SPECULATION=1 watchdog cargo test -q --workspace
}

# The tiered block store defaults to a disabled watermark (usize::MAX);
# this step proves the spill/rehydrate machinery is load-bearing by
# running the whole suite with an artificially low watermark, so cold
# shuffle blocks and cached partitions constantly demote to disk and
# rehydrate mid-job. Tests that pin their own watermark (or disable
# spilling) through the builder win over the env default.
run_spill() {
    echo "== cargo test with SPANGLE_MEMORY_WATERMARK_BYTES=262144 (watchdog ${WATCHDOG_SECS}s)"
    SPANGLE_MEMORY_WATERMARK_BYTES=262144 watchdog cargo test -q --workspace
}

# Health monitoring defaults to forgiving intervals (1 s loss threshold,
# 10 s watchdog); this step tightens both (400 ms loss, 1 s watchdog) and
# runs the whole suite under the aggressive monitor, proving loss
# detection (fed by the pool's dedicated heartbeater) and the
# body-driven no-progress watchdog stay false-positive-free near their
# margins. Tests that assert the monitor's own behaviour pin their
# intervals through the builder, which wins over the env default.
run_health() {
    echo "== cargo test with SPANGLE_HEARTBEAT_MS=40 SPANGLE_WATCHDOG_MS=1000 (watchdog ${WATCHDOG_SECS}s)"
    SPANGLE_HEARTBEAT_MS=40 SPANGLE_WATCHDOG_MS=1000 watchdog cargo test -q --workspace
}

# Health monitoring (and its retry backoff) defaults on; this step proves
# the announced-failures-only paths still work by running the whole suite
# with the layer's kill switch thrown — exactly the pre-health scheduler.
# Tests that assert the monitor's own behaviour pin it on through the
# builder, which wins over the env default.
run_healthoff() {
    echo "== cargo test with SPANGLE_DISABLE_HEALTH=1 (watchdog ${WATCHDOG_SECS}s)"
    SPANGLE_DISABLE_HEALTH=1 watchdog cargo test -q --workspace
}

run_doc() {
    echo "== cargo doc -D warnings"
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
}

# The executor backend defaults to the in-process pool; this step runs
# the whole suite with SPANGLE_BACKEND=proc, so every context is served
# by real worker OS processes speaking the Unix-socket wire protocol,
# then runs the SIGKILL crash gate: one worker process killed per
# PageRank iteration, detected purely by missed socket heartbeats,
# recovered bit-identically from lineage. Tests that pin a backend
# through the builder win over the env default.
run_proc() {
    echo "== cargo test with SPANGLE_BACKEND=proc (watchdog ${WATCHDOG_SECS}s)"
    cargo build -q -p spangle-dataflow --bin spangle_worker
    local worker_bin="$PWD/target/debug/spangle_worker"
    SPANGLE_BACKEND=proc SPANGLE_WORKER_BIN="$worker_bin" \
        SPANGLE_PROC_MAX_WORKERS=4 \
        watchdog cargo test -q --workspace
    echo "== proc: SIGKILL crash-recovery gate"
    SPANGLE_WORKER_BIN="$worker_bin" \
        watchdog cargo test -q -p spangle-dataflow --test proc_backend -- --ignored
}

run_stress() {
    echo "== stress: concurrent jobs, admission overload (watchdog ${WATCHDOG_SECS}s)"
    # Serial: both scenarios assert on process-wide thread counts.
    watchdog cargo test -q -p spangle-dataflow --test stress_concurrent_jobs -- \
        --ignored --test-threads=1
    echo "== stress: executor-kill chaos recovery"
    watchdog cargo test -q -p spangle-dataflow --test chaos_recovery -- --ignored
}

# Perf-trajectory gate: regenerate the fig10/fig11 wall-clock artifacts
# in release mode and fail if they regressed more than
# BENCH_REGRESSION_PCT (default 25%) against the committed baselines.
# The fresh BENCH_*.json files are left in the working tree so CI can
# upload them and a genuine improvement can be committed as the new
# baseline.
run_bench() {
    echo "== bench: fig10/fig11 perf-trajectory gate (watchdog ${WATCHDOG_SECS}s)"
    local baseline_dir
    baseline_dir="$(mktemp -d)"
    cp BENCH_fig10.json BENCH_fig11.json "$baseline_dir"/
    cargo build --release -p spangle-bench
    watchdog cargo run --release -q -p spangle-bench --bin fig10
    watchdog cargo run --release -q -p spangle-bench --bin fig11
    local status=0
    for fig in fig10 fig11; do
        cargo run --release -q -p spangle-bench --bin bench_compare -- \
            "$baseline_dir/BENCH_$fig.json" "BENCH_$fig.json" || status=1
    done
    rm -rf "$baseline_dir"
    return "$status"
}

steps=()
for arg in "$@"; do
    case "$arg" in
    --quick) steps+=(fmt clippy test planoff specoff spill health healthoff doc) ;;
    fmt | clippy | build | test | planoff | specoff | spill | health | healthoff | proc | doc | stress | bench) steps+=("$arg") ;;
    -h | --help | *) usage ;;
    esac
done
if [ ${#steps[@]} -eq 0 ]; then
    steps=(fmt clippy build test planoff specoff spill health healthoff doc)
fi

for step in "${steps[@]}"; do
    "run_$step"
done

echo "== all checks passed"
