#![warn(missing_docs)]

//! # Spangle
//!
//! A distributed in-memory processing system for large-scale arrays — a
//! Rust reproduction of *Spangle* (Kim, Kim, Moon; ICDE 2021).
//!
//! This umbrella crate re-exports the entire workspace under one roof:
//!
//! * [`bitmask`] — bit vectors, population-count strategies, hierarchical
//!   masks, and offset arrays (paper §IV).
//! * [`dataflow`] — the Spark-substitute runtime: a lineage-based, lazily
//!   evaluated, fault-tolerant distributed dataset abstraction with a DAG
//!   scheduler, shuffle service and simulated executor cluster (§II-C).
//! * [`mod@array`] — ArrayRDD, chunks, metadata/mapper, MaskRDD and the array
//!   operators Subarray / Filter / Join / Aggregator / Accumulator (§III–V).
//! * [`linalg`] — bitmask-aware distributed matrices: multiplication with
//!   the local-join optimisation, matrix–vector products and metadata
//!   transpose (§V-A4, §VI-A).
//! * [`ml`] — PageRank via bitmask adjacency decomposition and parallel
//!   SGD / logistic regression (§VI-B, §VI-C).
//! * [`raster`] — synthetic SDSS-like and chlorophyll-like raster datasets
//!   plus the five SS-DB benchmark queries of Table I (§VII-B).
//! * [`baselines`] — the comparator systems of §VII: dense chunked arrays
//!   (SciSpark-like), COO and CSC block matrices (Spark/MLlib-like),
//!   edge-list and Pregel-style PageRank (Spark/GraphX-like), a row-based
//!   logistic regression, and a single-process array engine standing in for
//!   SciDB.
//!
//! ## Quickstart
//!
//! ```
//! use spangle::dataflow::SpangleContext;
//! use spangle::array::{ArrayBuilder, ArrayMeta};
//! use spangle::array::aggregate::builtin::Avg;
//!
//! // A simulated 4-executor cluster.
//! let ctx = SpangleContext::new(4);
//!
//! // A 64x64 array chunked 16x16, with a null hole in the middle.
//! let meta = ArrayMeta::new(vec![64, 64], vec![16, 16]);
//! let arr = ArrayBuilder::new(&ctx, meta)
//!     .ingest(|coords| {
//!         let (x, y) = (coords[0], coords[1]);
//!         if (16..48).contains(&x) && (16..48).contains(&y) {
//!             None // null region
//!         } else {
//!             Some((x + y) as f64)
//!         }
//!     })
//!     .build();
//!
//! // Average of a subarray, skipping nulls.
//! let avg = arr.subarray(&[0, 0], &[32, 32]).aggregate(Avg);
//! assert!(avg.is_some());
//! ```

pub use spangle_baselines as baselines;
pub use spangle_bitmask as bitmask;
pub use spangle_core as array;
/// Alias of [`mod@array`] under the crate's original name.
pub use spangle_core as core;
pub use spangle_dataflow as dataflow;
pub use spangle_linalg as linalg;
pub use spangle_ml as ml;
pub use spangle_raster as raster;
