//! Distributed logistic regression with the paper's parallel SGD
//! (§VI-C): Eq. 2 chunk numbering, shuffle-free mini-batch sampling, and
//! the opt₁/opt₂ transpose optimisations — compared against the
//! MLlib-style row-oriented full-batch baseline.
//!
//! ```text
//! cargo run --release --example logistic_regression
//! ```

use spangle::baselines::RowLogReg;
use spangle::dataflow::SpangleContext;
use spangle::ml::datasets;
use spangle::ml::{LogisticRegression, OptLevel, SgdConfig};

fn main() {
    let ctx = SpangleContext::new(4);

    // A synthetic sparse classification problem: 32k samples, 8k
    // features, 12 non-zeros per row.
    let data = datasets::synthetic_logreg(&ctx, 4, 16, 512, 8192, 12, 2024);
    data.persist();
    println!(
        "training set: {} rows x {} features, {} chunks over {} partitions",
        data.num_rows(),
        data.num_features(),
        data.rdd().count().unwrap(),
        data.num_partitions()
    );

    // Verify the shuffle-free property of Eq. 2 sampling.
    let before = ctx.metrics_snapshot();
    let model = LogisticRegression::train(
        &data,
        SgdConfig {
            max_iters: 120,
            batch_chunks: 4,
            ..SgdConfig::default()
        },
    )
    .unwrap();
    let delta = ctx.metrics_snapshot() - before;
    let acc = data.accuracy(&model.weights).unwrap();
    println!(
        "\nspangle SGD    : {} iterations in {:?}, accuracy {:.2}%, \
         shuffle bytes during training: {}",
        model.iterations,
        model.training_time,
        acc * 100.0,
        delta.shuffle_write_bytes
    );

    // The optimisation ablation of Fig. 12b.
    println!("\ntranspose-optimisation ablation (fixed 60 iterations):");
    for (label, opt) in [
        ("none (physical block transpose)", OptLevel::None),
        ("opt1 (Eq. 3 reformulation)     ", OptLevel::Opt1),
        ("opt1+opt2 (metadata transpose) ", OptLevel::Opt1Opt2),
    ] {
        let m = LogisticRegression::train(
            &data,
            SgdConfig {
                max_iters: 60,
                tolerance: 0.0,
                batch_chunks: 4,
                opt,
                ..SgdConfig::default()
            },
        )
        .unwrap();
        println!("  {label}: {:?}", m.training_time);
    }

    // The MLlib-style baseline on the same data.
    let baseline = RowLogReg::ingest(&data, None).unwrap();
    let (weights, iters, t) = baseline.train(0.6, 1e-4, 120).unwrap();
    let acc = data.accuracy(&weights).unwrap();
    println!(
        "\nmllib-like row : {iters} full-batch iterations in {t:?}, accuracy {:.2}%",
        acc * 100.0
    );
}
