//! Quickstart: the ArrayRDD basics in five minutes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small 2-D array with a null region, walks through the core
//! operators (Subarray, Filter, Aggregator, Join), shows the three chunk
//! modes, and demonstrates fault-tolerant recomputation.

use spangle::array::aggregate::builtin::{Avg, Count, Max, Sum};
use spangle::array::{ArrayBuilder, ArrayMeta, ChunkPolicy};
use spangle::dataflow::SpangleContext;

fn main() {
    // A simulated cluster with 4 executors.
    let ctx = SpangleContext::new(4);

    // A 256x256 array in 64x64 chunks. Cells inside the central square
    // are null (no-data); everything else holds x + y.
    let meta = ArrayMeta::new(vec![256, 256], vec![64, 64]);
    let arr = ArrayBuilder::new(&ctx, meta)
        .ingest(|c| {
            let (x, y) = (c[0], c[1]);
            let hole = (96..160).contains(&x) && (96..160).contains(&y);
            (!hole).then(|| (x + y) as f64)
        })
        .build();
    arr.persist();

    println!("== ingest");
    println!("  valid cells : {}", arr.count_valid().unwrap());
    println!(
        "  chunks      : {} (empty chunks are never created)",
        arr.num_chunks().unwrap()
    );
    println!("  modes       : {:?}", arr.mode_counts().unwrap());
    println!("  memory      : {} KiB", arr.mem_bytes().unwrap() / 1024);

    println!("\n== point queries");
    println!("  arr[10, 20]   = {:?}", arr.get(&[10, 20]).unwrap());
    println!(
        "  arr[128, 128] = {:?} (inside the null hole)",
        arr.get(&[128, 128]).unwrap()
    );

    println!("\n== subarray + aggregator");
    let sub = arr.subarray(&[0, 0], &[128, 128]);
    println!("  count([0,0)..[128,128)) = {:?}", sub.aggregate(Count));
    println!("  avg                     = {:?}", sub.aggregate(Avg));
    println!("  sum                     = {:?}", sub.aggregate(Sum));
    println!("  max                     = {:?}", sub.aggregate(Max));

    println!("\n== filter (non-matching cells become null)");
    let filtered = arr.filter(|v| v >= 400.0);
    println!(
        "  cells with value >= 400: {}",
        filtered.count_valid().unwrap()
    );

    println!("\n== grouped aggregation (Q5-style density)");
    let mut groups = arr
        .aggregate_by(|c| ((c[0] / 128) as u64, (c[1] / 128) as u64), Count)
        .unwrap();
    groups.sort();
    for ((gx, gy), n) in groups {
        println!("  quadrant ({gx},{gy}): {n} observations");
    }

    println!("\n== cell-wise join of two arrays");
    let other = ArrayBuilder::new(&ctx, ArrayMeta::new(vec![256, 256], vec![64, 64]))
        .ingest(|c| c[0].is_multiple_of(2).then_some(1000.0))
        .build();
    let and_join = arr.zip_with(&other, |a, b| a.zip(b).map(|(x, y)| x + y));
    println!(
        "  AND-join valid cells: {}",
        and_join.count_valid().unwrap()
    );

    println!("\n== chunk modes under different densities");
    let sparse = arr.filter(|v| v % 97.0 < 3.0); // ~3% survive
    println!(
        "  after a highly selective filter: {:?}",
        sparse.mode_counts().unwrap()
    );
    let dense_again = sparse.reencode(ChunkPolicy::always_dense());
    println!(
        "  sparse {} KiB vs forced-dense {} KiB",
        sparse.mem_bytes().unwrap() / 1024,
        dense_again.mem_bytes().unwrap() / 1024
    );

    println!("\n== fault tolerance");
    let before = arr.count_valid().unwrap();
    ctx.evict_cached_partition(arr.rdd().id(), 0);
    ctx.failure_injector().fail_task(arr.rdd().id(), 1, 1);
    let after = arr.count_valid().unwrap();
    println!("  evicted a cached partition and killed a task attempt;");
    println!(
        "  recomputed from lineage: {before} == {after} -> {}",
        before == after
    );
}
