//! Distributed linear algebra with bitmask-aware block matrices: the
//! shuffle plan vs the fused local join of §VI-A, broadcast matrix–vector
//! products, and the offset-array alternative for static hyper-sparse
//! blocks.
//!
//! ```text
//! cargo run --release --example matrix_operations
//! ```

use spangle::bitmask::ValidityRepr;
use spangle::core::ChunkPolicy;
use spangle::dataflow::SpangleContext;
use spangle::linalg::block::preferred_repr;
use spangle::linalg::{DenseVector, DistMatrix};
use std::time::Instant;

fn main() {
    let ctx = SpangleContext::new(4);

    // A 1024x1024 sparse matrix (1.5% non-zeros) in 128x128 blocks.
    let n = 1024;
    let a = DistMatrix::generate(&ctx, n, n, (128, 128), ChunkPolicy::default(), |r, c| {
        (r * 31 + c * 17)
            .is_multiple_of(67)
            .then_some(((r + c) % 9) as f64 - 4.0)
    });
    a.persist();
    println!(
        "A: {}x{}, nnz={}, {} KiB across {} blocks",
        a.rows(),
        a.cols(),
        a.nnz().unwrap(),
        a.mem_bytes().unwrap() / 1024,
        a.array().num_chunks().unwrap()
    );

    // --- matrix-vector products with broadcast vectors ----------------
    let x = DenseVector::column((0..n).map(|i| (i % 5) as f64).collect());
    let y = a.matvec(&x).unwrap();
    println!(
        "\nM·x   : |y|_1 = {:.1}",
        y.as_slice().iter().map(|v| v.abs()).sum::<f64>()
    );

    // A vector transpose is metadata-only (opt2): free, no copy.
    let yt = y.transpose(); // column -> row, O(1)
    let z = a.vecmat(&yt).unwrap();
    println!(
        "yᵀ·M  : |z|_1 = {:.1}",
        z.as_slice().iter().map(|v| v.abs()).sum::<f64>()
    );

    // --- shuffle multiply vs the local join ---------------------------
    let before = ctx.metrics_snapshot();
    let t0 = Instant::now();
    let shuffle_product = a.multiply(&a);
    let nnz_shuffle = shuffle_product.nnz().unwrap();
    let t_shuffle = t0.elapsed();
    let shuffle_stats = ctx.metrics_snapshot() - before;

    // Prepare the §VI-A layout once (left by column-block, right by
    // row-block), then multiply without shuffling the inputs.
    let left = a.partition_left_by_inner(4);
    let right = a.partition_right_by_inner(4);
    DistMatrix::multiply_local(&left, &right).nnz().unwrap(); // warm the layout
    let before = ctx.metrics_snapshot();
    let t0 = Instant::now();
    let local_product = DistMatrix::multiply_local(&left, &right);
    let nnz_local = local_product.nnz().unwrap();
    let t_local = t0.elapsed();
    let local_stats = ctx.metrics_snapshot() - before;

    assert_eq!(nnz_shuffle, nnz_local);
    println!("\nA·A through the shuffle plan : {t_shuffle:?}");
    println!(
        "  stages={}, shuffle bytes={}",
        shuffle_stats.stages_run, shuffle_stats.shuffle_write_bytes
    );
    println!("A·A through the local join   : {t_local:?}");
    println!(
        "  stages={}, shuffle bytes={}",
        local_stats.stages_run, local_stats.shuffle_write_bytes
    );

    // --- gram matrix ----------------------------------------------------
    let gram = a.gram();
    println!(
        "\nAᵀA: nnz={} ({}x{})",
        gram.nnz().unwrap(),
        gram.cols(),
        gram.cols()
    );

    // --- bitmask vs offset-array representation -------------------------
    println!("\nvalidity representation the size rule picks per block:");
    let chunks = a.array().rdd().collect().unwrap();
    let (mut masks, mut offsets) = (0, 0);
    for (_, chunk) in &chunks {
        match preferred_repr(chunk) {
            ValidityRepr::Bitmask => masks += 1,
            ValidityRepr::Offsets => offsets += 1,
        }
    }
    println!(
        "  bitmask: {masks} blocks, offset-array: {offsets} blocks (1.5% density favours offsets)"
    );
}
