//! PageRank three ways (paper §VI-B): Spangle's bitmask-matrix
//! decomposition vs the Spark edge-list and GraphX-like baselines, on one
//! power-law graph — all three agreeing with a sequential reference.
//!
//! ```text
//! cargo run --release --example pagerank
//! ```

use spangle::baselines::{pagerank_edge_list, pagerank_pregel_like};
use spangle::dataflow::SpangleContext;
use spangle::ml::pagerank::pagerank_reference;
use spangle::ml::{pagerank, Graph};

fn main() {
    let ctx = SpangleContext::new(4);

    // A power-law graph plus a ring so every vertex has an in-edge (the
    // edge-list baseline drops in-edge-less vertices, a known Spark
    // PageRank quirk).
    let n = 2000;
    let g = Graph::power_law(&ctx, n, 24_000, 42, 4);
    let ring: Vec<(u64, u64)> = (0..n as u64).map(|v| (v, (v + 1) % n as u64)).collect();
    let g = Graph::new(n, g.edges().union(&ctx.parallelize(ring, 2)));
    g.edges().persist();
    println!("graph: {} vertices, {} edges", n, g.num_edges().unwrap());

    let iters = 15;
    let alpha = 0.85;

    // Spangle: adjacency as bitmask-only blocks, p = alpha*A'(w o p) + t.
    let spangle = pagerank(&g, 128, false, alpha, iters).unwrap();
    println!(
        "\nspangle        : build {:?}, {} iterations, avg {:?}/iter",
        spangle.build_time,
        iters,
        spangle.iteration_times.iter().sum::<std::time::Duration>() / iters as u32
    );

    // Spark edge-list baseline.
    let spark = pagerank_edge_list(&g, alpha, iters, 4).unwrap();
    println!(
        "spark-edgelist : build {:?}, avg {:?}/iter",
        spark.build_time,
        spark.iteration_times.iter().sum::<std::time::Duration>() / iters as u32
    );

    // GraphX-like baseline.
    let graphx = pagerank_pregel_like(&g, alpha, iters, 4).unwrap();
    println!(
        "graphx-like    : build {:?}, avg {:?}/iter",
        graphx.build_time,
        graphx.iteration_times.iter().sum::<std::time::Duration>() / iters as u32
    );

    // Cross-check against the sequential reference.
    let edges = g.edges().collect().unwrap();
    let reference = pagerank_reference(n, &edges, alpha, iters);
    let max_err = |ranks: &[f64]| {
        ranks
            .iter()
            .zip(&reference)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max)
    };
    println!("\nmax |rank - reference|:");
    println!(
        "  spangle        : {:.3e}",
        max_err(spangle.ranks.as_slice())
    );
    println!("  spark-edgelist : {:.3e}", max_err(&spark.ranks));
    println!("  graphx-like    : {:.3e}", max_err(&graphx.ranks));

    // Top pages.
    let mut indexed: Vec<(usize, f64)> = spangle
        .ranks
        .as_slice()
        .iter()
        .copied()
        .enumerate()
        .collect();
    indexed.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop 5 vertices by rank:");
    for (v, r) in indexed.into_iter().take(5) {
        println!("  vertex {v:5}: {r:.6}");
    }
}
