//! Scientific raster analysis on a chlorophyll-like dataset — the
//! workloads of the paper's introduction: subarray selection, conditional
//! aggregation, regridding, window smoothing, a running accumulation, and
//! a multi-attribute pipeline with the lazy MaskRDD.
//!
//! ```text
//! cargo run --release --example chlorophyll_analysis
//! ```

use spangle::array::accumulator::Accumulator;
use spangle::array::aggregate::builtin::{Avg, Count, Histogram, Stats};
use spangle::array::maskrdd::SpangleArray;
use spangle::array::overlap::OverlapArrayRdd;
use spangle::array::{ArrayBuilder, ArrayMeta, ChunkPolicy};
use spangle::dataflow::SpangleContext;
use spangle::raster::ChlConfig;

fn main() {
    let ctx = SpangleContext::new(4);

    // An 8-day chlorophyll composite: [lon, lat, time] with land and
    // clouds as null regions.
    let cfg = ChlConfig {
        lon: 512,
        lat: 256,
        time: 4,
        land_per_mille: 450,
        cloud_per_mille: 200,
        ..ChlConfig::default()
    };
    let meta = ArrayMeta::new(cfg.dims(), vec![64, 64, 1]);
    let chl = ArrayBuilder::new(&ctx, meta.clone())
        .ingest(cfg.value_fn())
        .build();
    chl.persist();

    println!("== the composite");
    let total = meta.volume();
    let valid = chl.count_valid().unwrap();
    println!(
        "  {} of {} cells observed ({:.1}% — the rest is land/cloud)",
        valid,
        total,
        100.0 * valid as f64 / total as f64
    );
    println!("  chunk modes: {:?}", chl.mode_counts().unwrap());

    println!("\n== area of interest: a coastal box, first two composites");
    let aoi = chl.subarray(&[100, 40, 0], &[300, 200, 2]);
    println!("  observations : {:?}", aoi.aggregate(Count));
    println!("  mean chl     : {:.4}", aoi.aggregate(Avg).unwrap());

    if let Some(stats) = aoi.aggregate(Stats) {
        println!(
            "  distribution : mean {:.4}, std dev {:.4} over {} obs",
            stats.mean,
            stats.std_dev(),
            stats.count
        );
    }
    let hist = aoi.aggregate(Histogram::new(0.0, 2.0, 8)).unwrap();
    println!("  histogram    : {hist:?}");

    println!("\n== bloom detection (conditional aggregation)");
    let blooms = aoi.filter(|v| v > 1.0);
    println!("  bloom cells  : {}", blooms.count_valid().unwrap());
    if let Some(mean) = blooms.aggregate(Avg) {
        println!("  bloom mean   : {mean:.4}");
    }

    println!("\n== regridding 4x4 blocks (Q2-style)");
    let coarse = chl.regrid_mean(&[4, 4, 1]);
    println!(
        "  {:?} -> {:?}, {} coarse cells",
        meta.dims(),
        coarse.meta().dims(),
        coarse.count_valid().unwrap()
    );

    println!("\n== window smoothing with overlap (ghost cells)");
    let with_halo = OverlapArrayRdd::ingest(
        &ctx,
        ArrayMeta::new(vec![256, 128, 1], vec![64, 64, 1]),
        vec![1, 1, 0],
        ChunkPolicy::default(),
        cfg.value_fn(),
    );
    let before = ctx.metrics_snapshot();
    let smoothed = with_halo.window_mean(&[1, 1, 0]);
    let smoothed_count = smoothed.count_valid().unwrap();
    let delta = ctx.metrics_snapshot() - before;
    println!(
        "  smoothed {} cells with zero shuffle bytes (halo made it local: {} B)",
        smoothed_count, delta.shuffle_write_bytes
    );

    println!("\n== running accumulation along longitude");
    let acc = Accumulator::<f64>::prefix_sum(0);
    let west_east = acc.run_async(&chl).unwrap();
    let east_edge = west_east.subarray(&[500, 0, 0], &[512, 256, 4]);
    println!(
        "  eastern-edge running totals: mean {:.3}",
        east_edge.aggregate(Avg).unwrap()
    );

    println!("\n== multi-attribute pipeline with the lazy MaskRDD");
    let sst = ArrayBuilder::new(&ctx, meta.clone())
        .ingest(move |c| cfg.value(c[0], c[1], c[2]).map(|v| 15.0 + 10.0 * v))
        .build();
    let multi = SpangleArray::new(
        vec![("chl".into(), chl.clone()), ("sst".into(), sst)],
        true, // lazy: operators below only touch the hidden mask
    );
    let analysed = multi
        .subarray(&[100, 40, 0], &[300, 200, 2])
        .filter_attribute("chl", |v| v > 0.5);
    println!(
        "  warm bloom cells (chl > 0.5): {} — and the SST attribute sees \
         the same mask: {}",
        analysed.count_valid("chl").unwrap(),
        analysed.count_valid("sst").unwrap()
    );
}
