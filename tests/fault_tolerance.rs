//! Fault-tolerance integration tests: lineage recomputation must yield
//! identical results through the whole stack — array operators, matrix
//! multiplication, PageRank — under injected task failures and cache
//! evictions.

use spangle::array::aggregate::builtin::Sum;
use spangle::array::{ArrayBuilder, ArrayMeta, ChunkPolicy};
use spangle::dataflow::SpangleContext;
use spangle::linalg::DistMatrix;
use spangle::ml::{pagerank, Graph};

#[test]
fn array_pipeline_survives_task_failures() {
    let ctx = SpangleContext::new(4);
    let arr = ArrayBuilder::new(&ctx, ArrayMeta::new(vec![96, 96], vec![24, 24]))
        .ingest(|c| (!(c[0] + c[1]).is_multiple_of(3)).then(|| (c[0] * 96 + c[1]) as f64))
        .build();
    let clean = arr.subarray(&[5, 5], &[90, 80]).filter(|v| v > 100.0);
    let expected_count = clean.count_valid().unwrap();
    let expected_sum = clean.aggregate(Sum).unwrap();

    // Kill the first two attempts of several result tasks. Failure sites
    // are the RDD whose partitions the tasks produce — the pipeline's
    // chunk RDD; the ingest and operators above recompute through the
    // narrow lineage inside the retried task.
    let failed = arr.subarray(&[5, 5], &[90, 80]).filter(|v| v > 100.0);
    for p in 0..3 {
        ctx.failure_injector().fail_task(failed.rdd().id(), p, 2);
    }
    assert_eq!(failed.count_valid().unwrap(), expected_count);
    assert!(
        ctx.failure_injector().is_drained(),
        "all injections consumed"
    );
    assert_eq!(failed.aggregate(Sum).unwrap(), expected_sum);
}

#[test]
fn persisted_data_recovers_from_block_loss() {
    let ctx = SpangleContext::new(4);
    let arr = ArrayBuilder::new(&ctx, ArrayMeta::new(vec![64, 64], vec![16, 16]))
        .ingest(|c| Some((c[0] ^ c[1]) as f64))
        .build();
    arr.persist();
    let first = arr.collect_cells().unwrap();
    // Lose every cached partition.
    for p in 0..arr.rdd().num_partitions() {
        ctx.evict_cached_partition(arr.rdd().id(), p);
    }
    let second = arr.collect_cells().unwrap();
    assert_eq!(first, second);
}

#[test]
fn matrix_multiplication_survives_failures_in_every_stage() {
    let ctx = SpangleContext::new(4);
    let a = DistMatrix::generate(&ctx, 32, 32, (8, 8), ChunkPolicy::default(), |r, c| {
        Some(((r * 13 + c * 7) % 11) as f64 - 5.0)
    });
    let b = DistMatrix::generate(&ctx, 32, 24, (8, 8), ChunkPolicy::default(), |r, c| {
        (r + c).is_multiple_of(4).then_some((r + c) as f64)
    });
    let expected = a.multiply(&b).to_local().unwrap();

    // Kill the next five task attempts wherever they land: shuffle map
    // tasks of either join side, the reduce stage, or the result stage —
    // all must recover through retries.
    ctx.failure_injector().fail_next_tasks(5);
    let product = a.multiply(&b);
    assert_eq!(product.to_local().unwrap(), expected);
    assert!(ctx.failure_injector().is_drained());
}

#[test]
fn job_aborts_cleanly_when_a_task_always_fails() {
    let ctx = SpangleContext::new(2);
    let arr = ArrayBuilder::new(&ctx, ArrayMeta::new(vec![32, 32], vec![16, 16]))
        .ingest(|_| Some(1.0f64))
        .build();
    ctx.failure_injector()
        .fail_task(arr.rdd().id(), 0, usize::MAX);
    let err = arr.count_valid().unwrap_err();
    assert_eq!(err.partition, 0);
    assert!(err.attempts >= 4);
    // The cluster stays usable afterwards.
    let fresh = ArrayBuilder::new(&ctx, ArrayMeta::new(vec![8, 8], vec![4, 4]))
        .ingest(|_| Some(1.0f64))
        .build();
    assert_eq!(fresh.count_valid().unwrap(), 64);
}

#[test]
fn pagerank_is_unaffected_by_mid_run_failures() {
    let ctx = SpangleContext::new(4);
    let g = Graph::power_law(&ctx, 256, 2048, 5, 4);
    let clean = pagerank(&g, 64, false, 0.85, 8).unwrap();
    // Fail a handful of tasks mid-run (edge grouping, mask matvec,
    // degree collection — whichever come next) and rerun.
    ctx.failure_injector().fail_next_tasks(6);
    let recovered = pagerank(&g, 64, false, 0.85, 8).unwrap();
    assert!(ctx.failure_injector().is_drained());
    for (a, b) in clean
        .ranks
        .as_slice()
        .iter()
        .zip(recovered.ranks.as_slice())
    {
        assert!((a - b).abs() < 1e-15);
    }
}
