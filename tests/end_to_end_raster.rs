//! End-to-end raster pipelines across the full stack: ingest → operators
//! → aggregation, with every system under comparison agreeing on the
//! answers.

use spangle::array::aggregate::builtin::{Avg, Count, Sum};
use spangle::array::maskrdd::{JoinMode, SpangleArray};
use spangle::array::{ArrayBuilder, ArrayMeta, ChunkPolicy};
use spangle::baselines::LocalArrayEngine;
use spangle::dataflow::SpangleContext;
use spangle::raster::{
    ChlConfig, DenseRaster, QueryRange, RasterSystem, SpangleRaster, TileRaster,
};

fn chl() -> ChlConfig {
    ChlConfig {
        lon: 128,
        lat: 96,
        time: 4,
        land_cell: 16,
        ..ChlConfig::default()
    }
}

#[test]
fn four_systems_agree_on_all_five_queries() {
    let ctx = SpangleContext::new(4);
    let cfg = chl();
    let meta = ArrayMeta::new(cfg.dims(), vec![32, 32, 1]);
    let spangle = SpangleRaster::ingest(&ctx, meta.clone(), cfg.value_fn());
    let dense = DenseRaster::ingest(&ctx, meta.clone(), cfg.value_fn());
    let tiles = TileRaster::ingest(&ctx, meta.clone(), 32, cfg.value_fn());
    let local = LocalArrayEngine::ingest(meta, cfg.value_fn());

    let range = QueryRange {
        lo: vec![16, 8, 1],
        hi: vec![112, 88, 3],
    };

    // Distributed systems through the trait...
    let systems: Vec<&dyn RasterSystem> = vec![&spangle, &dense, &tiles];
    let q1: Vec<f64> = systems.iter().map(|s| s.q1_avg(&range).unwrap()).collect();
    let q3: Vec<f64> = systems
        .iter()
        .map(|s| s.q3_cond_avg(&range, 0.3).unwrap())
        .collect();
    let q4: Vec<usize> = systems
        .iter()
        .map(|s| s.q4_filter_count(&range, 0.1, 0.7))
        .collect();
    let q5: Vec<usize> = systems
        .iter()
        .map(|s| s.q5_density(&range, 16, 200))
        .collect();

    // ...and the single-process engine directly.
    let l1 = local.range_avg(&range.lo, &range.hi, |_| true).unwrap();
    let l3 = local.range_avg(&range.lo, &range.hi, |v| v > 0.3).unwrap();
    let l4 = local.range_count(&range.lo, &range.hi, |v| (0.1..0.7).contains(&v));
    let l5 = local.range_density(&range.lo, &range.hi, 16, 200).len();

    for i in 0..systems.len() {
        assert!((q1[i] - l1).abs() < 1e-9, "q1 {}", systems[i].name());
        assert!((q3[i] - l3).abs() < 1e-9, "q3 {}", systems[i].name());
        assert_eq!(q4[i], l4, "q4 {}", systems[i].name());
        assert_eq!(q5[i], l5, "q5 {}", systems[i].name());
    }
    assert!(q4[0] > 0 && q5[0] > 0, "queries must not be vacuous");
}

#[test]
fn operator_pipeline_is_order_insensitive_where_algebra_says_so() {
    let ctx = SpangleContext::new(4);
    let cfg = chl();
    let arr = ArrayBuilder::new(&ctx, ArrayMeta::new(cfg.dims(), vec![32, 32, 2]))
        .ingest(cfg.value_fn())
        .build();
    // subarray ∘ filter == filter ∘ subarray.
    let a = arr
        .subarray(&[10, 10, 0], &[100, 90, 3])
        .filter(|v| v > 0.25);
    let b = arr
        .filter(|v| v > 0.25)
        .subarray(&[10, 10, 0], &[100, 90, 3]);
    assert_eq!(a.count_valid().unwrap(), b.count_valid().unwrap());
    assert_eq!(a.aggregate(Sum), b.aggregate(Sum));
    // Intersecting subarrays compose.
    let c = arr
        .subarray(&[0, 0, 0], &[100, 96, 4])
        .subarray(&[10, 10, 0], &[128, 90, 3]);
    let d = arr.subarray(&[10, 10, 0], &[100, 90, 3]);
    assert_eq!(c.collect_cells().unwrap(), d.collect_cells().unwrap());
}

#[test]
fn multi_attribute_join_pipeline_lazy_equals_eager() {
    let ctx = SpangleContext::new(4);
    let cfg = chl();
    let meta = ArrayMeta::new(cfg.dims(), vec![32, 32, 1]);
    let build = |lazy: bool| {
        let a = ArrayBuilder::new(&ctx, meta.clone())
            .ingest(cfg.value_fn())
            .build();
        let b = ArrayBuilder::new(&ctx, meta.clone())
            .ingest(move |c| cfg.value(c[0], c[1], c[2]).map(|v| v * 2.0))
            .build();
        SpangleArray::new(vec![("a".into(), a)], lazy)
            .join(
                &SpangleArray::new(vec![("b".into(), b)], lazy),
                JoinMode::And,
            )
            .subarray(&[8, 8, 0], &[120, 88, 4])
            .filter_attribute("b", |v| v > 0.4)
    };
    let lazy = build(true);
    let eager = build(false);
    for attr in ["a", "b"] {
        assert_eq!(
            lazy.count_valid(attr).unwrap(),
            eager.count_valid(attr).unwrap(),
            "attribute {attr}"
        );
        let l = lazy.materialize(attr).aggregate(Avg);
        let e = eager.materialize(attr).aggregate(Avg);
        match (l, e) {
            (Some(l), Some(e)) => assert!((l - e).abs() < 1e-9, "attribute {attr}"),
            (l, e) => assert_eq!(l.is_some(), e.is_some()),
        }
    }
}

#[test]
fn sparse_and_dense_policies_agree_on_results_but_not_memory() {
    let ctx = SpangleContext::new(4);
    let cfg = ChlConfig {
        land_per_mille: 700,
        ..chl()
    };
    let meta = ArrayMeta::new(cfg.dims(), vec![32, 32, 1]);
    let sparse = ArrayBuilder::new(&ctx, meta.clone())
        .ingest(cfg.value_fn())
        .build();
    let dense = ArrayBuilder::new(&ctx, meta)
        .policy(ChunkPolicy::always_dense())
        .ingest(cfg.value_fn())
        .build();
    assert_eq!(
        sparse.collect_cells().unwrap(),
        dense.collect_cells().unwrap()
    );
    assert_eq!(sparse.aggregate(Count), dense.aggregate(Count));
    assert!(
        sparse.mem_bytes().unwrap() < dense.mem_bytes().unwrap(),
        "mostly-null data must be smaller sparsely"
    );
}

#[test]
fn regrid_then_aggregate_matches_direct_grouped_aggregate() {
    let ctx = SpangleContext::new(4);
    let cfg = chl();
    let arr = ArrayBuilder::new(&ctx, ArrayMeta::new(cfg.dims(), vec![32, 32, 1]))
        .ingest(cfg.value_fn())
        .build();
    let regridded = arr.regrid_mean(&[16, 16, 1]);
    let direct = arr
        .aggregate_by(
            |c| ((c[0] / 16) as u64, (c[1] / 16) as u64, c[2] as u64),
            Avg,
        )
        .unwrap();
    let mut direct_sorted = direct;
    direct_sorted.sort_by_key(|e| e.0);
    let mut via_regrid: Vec<((u64, u64, u64), f64)> = regridded
        .collect_cells()
        .unwrap()
        .into_iter()
        .map(|(c, v)| ((c[0] as u64, c[1] as u64, c[2] as u64), v))
        .collect();
    via_regrid.sort_by_key(|e| e.0);
    assert_eq!(direct_sorted.len(), via_regrid.len());
    for ((ka, va), (kb, vb)) in direct_sorted.iter().zip(&via_regrid) {
        assert_eq!(ka, kb);
        assert!((va - vb).abs() < 1e-9, "group {ka:?}");
    }
}
