//! Machine-learning integration tests spanning linalg, ml and baselines.

use spangle::baselines::{pagerank_edge_list, pagerank_pregel_like, RowLogReg};
use spangle::core::ChunkPolicy;
use spangle::dataflow::SpangleContext;
use spangle::linalg::{DenseVector, DistMatrix};
use spangle::ml::pagerank::pagerank_reference;
use spangle::ml::{datasets, pagerank, Graph, LogisticRegression, OptLevel, SgdConfig};

#[test]
fn matrix_chain_equals_sequential_reference() {
    let ctx = SpangleContext::new(4);
    // (A·B)·x == A·(B·x)
    let a = DistMatrix::generate(&ctx, 40, 32, (8, 8), ChunkPolicy::default(), |r, c| {
        (r + c)
            .is_multiple_of(3)
            .then_some(((r * 5 + c) % 7) as f64 - 3.0)
    });
    let b = DistMatrix::generate(&ctx, 32, 24, (8, 8), ChunkPolicy::default(), |r, c| {
        Some(((r * 3 + c * 11) % 5) as f64 - 2.0)
    });
    let x = DenseVector::column((0..24).map(|i| (i % 9) as f64 - 4.0).collect());
    let via_product = a.multiply(&b).matvec(&x).unwrap();
    let via_chain = a.matvec(&b.matvec(&x).unwrap()).unwrap();
    for (p, q) in via_product.as_slice().iter().zip(via_chain.as_slice()) {
        assert!((p - q).abs() < 1e-9);
    }
}

#[test]
fn local_join_multiply_is_reusable_across_iterations() {
    let ctx = SpangleContext::new(4);
    let a = DistMatrix::generate(&ctx, 32, 32, (8, 8), ChunkPolicy::default(), |r, c| {
        Some(((r * 17 + c) % 13) as f64)
    });
    let left = a.partition_left_by_inner(4);
    let right = a.partition_right_by_inner(4);
    let expected = a.multiply(&a).to_local().unwrap();
    // Run the local-join product repeatedly; results stay identical and
    // the prepared layout is reused.
    for _ in 0..3 {
        let got = DistMatrix::multiply_local(&left, &right)
            .to_local()
            .unwrap();
        for (g, e) in got.iter().zip(&expected) {
            assert!((g - e).abs() < 1e-9);
        }
    }
}

#[test]
fn three_pagerank_systems_agree_end_to_end() {
    let ctx = SpangleContext::new(4);
    let n = 400;
    let g = Graph::power_law(&ctx, n, 4000, 9, 4);
    let ring: Vec<(u64, u64)> = (0..n as u64).map(|v| (v, (v + 1) % n as u64)).collect();
    let g = Graph::new(n, g.edges().union(&ctx.parallelize(ring, 2)));
    let edges = g.edges().collect().unwrap();
    let reference = pagerank_reference(n, &edges, 0.85, 10);

    let spangle = pagerank(&g, 64, false, 0.85, 10).unwrap();
    let spangle_ss = pagerank(&g, 64, true, 0.85, 10).unwrap();
    let spark = pagerank_edge_list(&g, 0.85, 10, 4).unwrap();
    let graphx = pagerank_pregel_like(&g, 0.85, 10, 4).unwrap();
    for (v, &r) in reference.iter().enumerate().take(n) {
        assert!(
            (spangle.ranks.as_slice()[v] - r).abs() < 1e-12,
            "spangle {v}"
        );
        assert!(
            (spangle_ss.ranks.as_slice()[v] - r).abs() < 1e-12,
            "spangle super-sparse {v}"
        );
        assert!((spark.ranks[v] - r).abs() < 1e-12, "spark {v}");
        assert!((graphx.ranks[v] - r).abs() < 1e-12, "graphx {v}");
    }
}

#[test]
fn sgd_and_row_baseline_learn_comparable_models() {
    let ctx = SpangleContext::new(4);
    let data = datasets::synthetic_logreg(&ctx, 4, 8, 128, 1024, 8, 31);
    data.persist();
    let spangle = LogisticRegression::train(
        &data,
        SgdConfig {
            max_iters: 150,
            batch_chunks: 4,
            ..SgdConfig::default()
        },
    )
    .unwrap();
    let spangle_acc = data.accuracy(&spangle.weights).unwrap();

    let baseline = RowLogReg::ingest(&data, None).unwrap();
    let (weights, _, _) = baseline.train(0.6, 1e-4, 150).unwrap();
    let baseline_acc = data.accuracy(&weights).unwrap();

    assert!(spangle_acc > 0.85, "spangle accuracy {spangle_acc}");
    assert!(baseline_acc > 0.85, "baseline accuracy {baseline_acc}");
    assert!(
        (spangle_acc - baseline_acc).abs() < 0.05,
        "models should be comparable: {spangle_acc} vs {baseline_acc}"
    );
}

#[test]
fn opt_levels_produce_identical_training_trajectories() {
    // With the same seed and batch schedule, the three gradient paths are
    // algebraically identical, so the learned weights must match exactly.
    let ctx = SpangleContext::new(4);
    let data = datasets::synthetic_logreg(&ctx, 4, 4, 64, 256, 6, 77);
    data.persist();
    let train = |opt| {
        LogisticRegression::train(
            &data,
            SgdConfig {
                max_iters: 40,
                tolerance: 0.0,
                batch_chunks: 2,
                opt,
                ..SgdConfig::default()
            },
        )
        .unwrap()
        .weights
    };
    let w_none = train(OptLevel::None);
    let w1 = train(OptLevel::Opt1);
    let w12 = train(OptLevel::Opt1Opt2);
    for ((a, b), c) in w_none
        .as_slice()
        .iter()
        .zip(w1.as_slice())
        .zip(w12.as_slice())
    {
        assert!((a - b).abs() < 1e-12);
        assert!((b - c).abs() < 1e-12);
    }
}

#[test]
fn gram_matrix_is_symmetric_and_positive_semidefinite_on_diagonal() {
    let ctx = SpangleContext::new(4);
    let m = DistMatrix::generate(&ctx, 48, 20, (8, 8), ChunkPolicy::default(), |r, c| {
        (r * 7 + c * 3)
            .is_multiple_of(6)
            .then_some(((r + c) % 9) as f64 - 4.0)
    });
    let gram = m.gram().to_local().unwrap();
    for i in 0..20 {
        assert!(gram[i + i * 20] >= -1e-12, "diagonal [{i}] must be >= 0");
        for j in 0..20 {
            assert!(
                (gram[i + j * 20] - gram[j + i * 20]).abs() < 1e-9,
                "symmetry ({i},{j})"
            );
        }
    }
}
