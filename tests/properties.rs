//! Property-based tests over the core invariants, spanning crates.
//!
//! Contexts are created inside each case; inputs are drawn from the
//! seeded testkit generator, so any failure reports a replayable seed.
//! Cases are kept small so the executor cluster spins up quickly.

use spangle::array::{ArrayBuilder, ArrayMeta, ChunkPolicy};
use spangle::bitmask::{Bitmask, HierarchicalBitmask, Milestones, OffsetArray};
use spangle::core::Chunk;
use spangle::dataflow::SpangleContext;
use spangle::linalg::DistMatrix;
use spangle_testkit::{run_cases, DEFAULT_CASES};

/// Every rank strategy agrees with the reference prefix count.
#[test]
fn rank_strategies_agree() {
    run_cases(0x5A17_0001, DEFAULT_CASES, |rng| {
        let bits = rng.vec_of(1..2048, |r| r.bool());
        let mask = Bitmask::from_fn(bits.len(), |i| bits[i]);
        let milestones = Milestones::build(&mask);
        let hier = HierarchicalBitmask::compress(&mask);
        let offsets = OffsetArray::from_mask(&mask);
        let mut expected = 0usize;
        for (i, &bit) in bits.iter().enumerate() {
            assert_eq!(mask.rank_naive(i), expected);
            assert_eq!(milestones.rank(&mask, i), expected);
            assert_eq!(hier.rank(i), expected);
            assert_eq!(offsets.rank(i), expected);
            if bit {
                expected += 1;
            }
        }
    });
}

/// Chunk mode re-encoding never changes logical content.
#[test]
fn chunk_reencode_roundtrip() {
    run_cases(0x5A17_0002, DEFAULT_CASES, |rng| {
        let values = rng.vec_of(1..1500, |r| r.bool().then(|| r.f64_unit() * 200.0 - 100.0));
        let volume = values.len();
        let payload: Vec<f64> = values.iter().map(|v| v.unwrap_or_default()).collect();
        let mask = Bitmask::from_fn(volume, |i| values[i].is_some());
        if mask.all_zero() {
            return;
        }
        let policies = [
            ChunkPolicy::default(),
            ChunkPolicy::always_dense(),
            ChunkPolicy::naive_sparse(),
            ChunkPolicy {
                dense_threshold: 1.1,
                build_milestones: true,
            },
        ];
        let reference = Chunk::build(payload.clone(), mask.clone(), &policies[0]).unwrap();
        for policy in &policies[1..] {
            let chunk = Chunk::build(payload.clone(), mask.clone(), policy).unwrap();
            assert_eq!(&chunk, &reference);
            let re = chunk.reencode(&policies[0]).unwrap();
            assert_eq!(&re, &reference);
        }
    });
}

/// The mapper is a bijection between cells and (chunk, local) slots.
#[test]
fn mapper_bijection() {
    run_cases(0x5A17_0003, DEFAULT_CASES, |rng| {
        let dims = rng.vec_of(1..4, |r| r.usize_in(1..14));
        let chunk_seed = rng.vec_of(3..4, |r| r.usize_in(1..6));
        let chunk_shape: Vec<usize> = dims
            .iter()
            .zip(&chunk_seed)
            .map(|(&d, &c)| c.min(d))
            .collect();
        let mapper = ArrayMeta::new(dims.clone(), chunk_shape).mapper();
        let volume: usize = dims.iter().product();
        let mut seen = std::collections::HashSet::new();
        // Odometer over all coordinates.
        let mut pos = vec![0usize; dims.len()];
        for _ in 0..volume {
            let id = mapper.chunk_id_of(&pos);
            let local = mapper.local_index_of(&pos);
            assert!(seen.insert((id, local)), "slot collision at {:?}", pos);
            assert_eq!(mapper.global_coords_of(id, local), pos);
            let mut d = 0;
            loop {
                if d == dims.len() {
                    break;
                }
                pos[d] += 1;
                if pos[d] < dims[d] {
                    break;
                }
                pos[d] = 0;
                d += 1;
            }
        }
        assert_eq!(seen.len(), volume);
    });
}

/// Distributed subarray+filter equals the sequential reference.
#[test]
fn subarray_filter_matches_reference() {
    run_cases(0x5A17_0004, DEFAULT_CASES, |rng| {
        let seed = rng.u64_in(0..1000);
        let lo_x = rng.usize_in(0..20);
        let lo_y = rng.usize_in(0..20);
        let w = rng.usize_in(1..20);
        let h = rng.usize_in(1..20);
        let threshold = rng.f64_unit() * 100.0 - 50.0;
        let ctx = SpangleContext::new(2);
        let value = move |x: usize, y: usize| {
            let v = ((x * 31 + y * 17 + seed as usize) % 101) as f64 - 50.0;
            (!(x + y + seed as usize).is_multiple_of(4)).then_some(v)
        };
        let arr = ArrayBuilder::new(&ctx, ArrayMeta::new(vec![24, 24], vec![7, 5]))
            .ingest(move |c| value(c[0], c[1]))
            .build();
        let hi_x = (lo_x + w).min(24);
        let hi_y = (lo_y + h).min(24);
        let got = arr
            .subarray(&[lo_x, lo_y], &[hi_x, hi_y])
            .filter(move |v| v > threshold)
            .collect_cells()
            .unwrap();
        let mut expected = Vec::new();
        for x in lo_x..hi_x {
            for y in lo_y..hi_y {
                if let Some(v) = value(x, y) {
                    if v > threshold {
                        expected.push((vec![x, y], v));
                    }
                }
            }
        }
        assert_eq!(got, expected);
    });
}

/// Distributed matmul equals the triple-loop reference.
#[test]
fn distributed_matmul_matches_reference() {
    run_cases(0x5A17_0005, DEFAULT_CASES, |rng| {
        let m = rng.usize_in(1..20);
        let k = rng.usize_in(1..20);
        let n = rng.usize_in(1..20);
        let seed = rng.u64_in(0..100);
        let ctx = SpangleContext::new(2);
        let entry = move |salt: u64, r: usize, c: usize| -> Option<f64> {
            let h = (r as u64 * 2654435761 + c as u64 * 40503 + seed * 97 + salt)
                .wrapping_mul(0x9E3779B97F4A7C15)
                >> 33;
            (!h.is_multiple_of(3)).then_some((h % 13) as f64 - 6.0)
        };
        let a = DistMatrix::generate(&ctx, m, k, (4, 4), ChunkPolicy::default(), move |r, c| {
            entry(1, r, c)
        });
        let b = DistMatrix::generate(&ctx, k, n, (4, 4), ChunkPolicy::default(), move |r, c| {
            entry(2, r, c)
        });
        let got = a.multiply(&b).to_local().unwrap();
        let al = a.to_local().unwrap();
        let bl = b.to_local().unwrap();
        for r in 0..m {
            for c in 0..n {
                let expected: f64 = (0..k).map(|kk| al[r + kk * m] * bl[kk + c * k]).sum();
                assert!(
                    (got[r + c * m] - expected).abs() < 1e-9,
                    "({}, {}): {} vs {}",
                    r,
                    c,
                    got[r + c * m],
                    expected
                );
            }
        }
    });
}

/// Restriction masks compose: restrict(A∧B) == restrict(A)∘restrict(B).
#[test]
fn chunk_restriction_composes() {
    run_cases(0x5A17_0006, DEFAULT_CASES, |rng| {
        let valid = rng.vec_of(64..256, |r| r.bool());
        let keep_a = rng.vec_of(256..257, |r| r.bool());
        let keep_b = rng.vec_of(256..257, |r| r.bool());
        let volume = valid.len();
        let mask = Bitmask::from_fn(volume, |i| valid[i]);
        if mask.all_zero() {
            return;
        }
        let payload: Vec<f64> = (0..volume).map(|i| i as f64).collect();
        let policy = ChunkPolicy::default();
        let chunk = Chunk::build(payload, mask, &policy).unwrap();
        let a = Bitmask::from_fn(volume, |i| keep_a[i]);
        let b = Bitmask::from_fn(volume, |i| keep_b[i]);
        let combined = chunk.restrict(&a.and(&b), &policy);
        let sequential = chunk
            .restrict(&a, &policy)
            .and_then(|c| c.restrict(&b, &policy));
        match (combined, sequential) {
            (None, None) => {}
            (Some(x), Some(y)) => assert_eq!(x, y),
            (x, y) => panic!("mismatch: {:?} vs {:?}", x.is_some(), y.is_some()),
        }
    });
}
