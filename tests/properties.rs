//! Property-based tests over the core invariants, spanning crates.
//!
//! Contexts are created inside each case; proptest shrinks over array
//! geometry, masks and values. Cases are kept small so the executor
//! cluster spins up quickly.

use proptest::prelude::*;
use spangle::array::{ArrayBuilder, ArrayMeta, ChunkPolicy};
use spangle::bitmask::{Bitmask, HierarchicalBitmask, Milestones, OffsetArray};
use spangle::core::Chunk;
use spangle::dataflow::SpangleContext;
use spangle::linalg::DistMatrix;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every rank strategy agrees with the reference prefix count.
    #[test]
    fn rank_strategies_agree(bits in proptest::collection::vec(any::<bool>(), 1..2048)) {
        let mask = Bitmask::from_fn(bits.len(), |i| bits[i]);
        let milestones = Milestones::build(&mask);
        let hier = HierarchicalBitmask::compress(&mask);
        let offsets = OffsetArray::from_mask(&mask);
        let mut expected = 0usize;
        for i in 0..bits.len() {
            prop_assert_eq!(mask.rank_naive(i), expected);
            prop_assert_eq!(milestones.rank(&mask, i), expected);
            prop_assert_eq!(hier.rank(i), expected);
            prop_assert_eq!(offsets.rank(i), expected);
            if bits[i] {
                expected += 1;
            }
        }
    }

    /// Chunk mode re-encoding never changes logical content.
    #[test]
    fn chunk_reencode_roundtrip(
        values in proptest::collection::vec(proptest::option::of(-100.0f64..100.0), 1..1500)
    ) {
        let volume = values.len();
        let payload: Vec<f64> = values.iter().map(|v| v.unwrap_or_default()).collect();
        let mask = Bitmask::from_fn(volume, |i| values[i].is_some());
        prop_assume!(!mask.all_zero());
        let policies = [
            ChunkPolicy::default(),
            ChunkPolicy::always_dense(),
            ChunkPolicy::naive_sparse(),
            ChunkPolicy { dense_threshold: 1.1, build_milestones: true },
        ];
        let reference = Chunk::build(payload.clone(), mask.clone(), &policies[0]).unwrap();
        for policy in &policies[1..] {
            let chunk = Chunk::build(payload.clone(), mask.clone(), policy).unwrap();
            prop_assert_eq!(&chunk, &reference);
            let re = chunk.reencode(&policies[0]).unwrap();
            prop_assert_eq!(&re, &reference);
        }
    }

    /// The mapper is a bijection between cells and (chunk, local) slots.
    #[test]
    fn mapper_bijection(
        dims in proptest::collection::vec(1usize..14, 1..4),
        chunk_seed in proptest::collection::vec(1usize..6, 3),
    ) {
        let chunk_shape: Vec<usize> = dims
            .iter()
            .zip(&chunk_seed)
            .map(|(&d, &c)| c.min(d))
            .collect();
        let mapper = ArrayMeta::new(dims.clone(), chunk_shape).mapper();
        let volume: usize = dims.iter().product();
        let mut seen = std::collections::HashSet::new();
        // Odometer over all coordinates.
        let mut pos = vec![0usize; dims.len()];
        for _ in 0..volume {
            let id = mapper.chunk_id_of(&pos);
            let local = mapper.local_index_of(&pos);
            prop_assert!(seen.insert((id, local)), "slot collision at {:?}", pos);
            prop_assert_eq!(mapper.global_coords_of(id, local), pos.clone());
            let mut d = 0;
            loop {
                if d == dims.len() { break; }
                pos[d] += 1;
                if pos[d] < dims[d] { break; }
                pos[d] = 0;
                d += 1;
            }
        }
        prop_assert_eq!(seen.len(), volume);
    }

    /// Distributed subarray+filter equals the sequential reference.
    #[test]
    fn subarray_filter_matches_reference(
        seed in 0u64..1000,
        lo_x in 0usize..20, lo_y in 0usize..20,
        w in 1usize..20, h in 1usize..20,
        threshold in -50.0f64..50.0,
    ) {
        let ctx = SpangleContext::new(2);
        let value = move |x: usize, y: usize| {
            let v = ((x * 31 + y * 17 + seed as usize) % 101) as f64 - 50.0;
            ((x + y + seed as usize) % 4 != 0).then_some(v)
        };
        let arr = ArrayBuilder::new(&ctx, ArrayMeta::new(vec![24, 24], vec![7, 5]))
            .ingest(move |c| value(c[0], c[1]))
            .build();
        let hi_x = (lo_x + w).min(24);
        let hi_y = (lo_y + h).min(24);
        let got = arr
            .subarray(&[lo_x, lo_y], &[hi_x, hi_y])
            .filter(move |v| v > threshold)
            .collect_cells()
            .unwrap();
        let mut expected = Vec::new();
        for x in lo_x..hi_x {
            for y in lo_y..hi_y {
                if let Some(v) = value(x, y) {
                    if v > threshold {
                        expected.push((vec![x, y], v));
                    }
                }
            }
        }
        prop_assert_eq!(got, expected);
    }

    /// Distributed matmul equals the triple-loop reference.
    #[test]
    fn distributed_matmul_matches_reference(
        m in 1usize..20, k in 1usize..20, n in 1usize..20,
        seed in 0u64..100,
    ) {
        let ctx = SpangleContext::new(2);
        let entry = move |salt: u64, r: usize, c: usize| -> Option<f64> {
            let h = (r as u64 * 2654435761 + c as u64 * 40503 + seed * 97 + salt)
                .wrapping_mul(0x9E3779B97F4A7C15) >> 33;
            (h % 3 != 0).then(|| (h % 13) as f64 - 6.0)
        };
        let a = DistMatrix::generate(&ctx, m, k, (4, 4), ChunkPolicy::default(),
            move |r, c| entry(1, r, c));
        let b = DistMatrix::generate(&ctx, k, n, (4, 4), ChunkPolicy::default(),
            move |r, c| entry(2, r, c));
        let got = a.multiply(&b).to_local().unwrap();
        let al = a.to_local().unwrap();
        let bl = b.to_local().unwrap();
        for r in 0..m {
            for c in 0..n {
                let expected: f64 = (0..k).map(|kk| al[r + kk * m] * bl[kk + c * k]).sum();
                prop_assert!((got[r + c * m] - expected).abs() < 1e-9,
                    "({}, {}): {} vs {}", r, c, got[r + c * m], expected);
            }
        }
    }

    /// Restriction masks compose: restrict(A∧B) == restrict(A)∘restrict(B).
    #[test]
    fn chunk_restriction_composes(
        valid in proptest::collection::vec(any::<bool>(), 64..256),
        keep_a in proptest::collection::vec(any::<bool>(), 256),
        keep_b in proptest::collection::vec(any::<bool>(), 256),
    ) {
        let volume = valid.len();
        let mask = Bitmask::from_fn(volume, |i| valid[i]);
        prop_assume!(!mask.all_zero());
        let payload: Vec<f64> = (0..volume).map(|i| i as f64).collect();
        let policy = ChunkPolicy::default();
        let chunk = Chunk::build(payload, mask, &policy).unwrap();
        let a = Bitmask::from_fn(volume, |i| keep_a[i]);
        let b = Bitmask::from_fn(volume, |i| keep_b[i]);
        let combined = chunk.restrict(&a.and(&b), &policy);
        let sequential = chunk
            .restrict(&a, &policy)
            .and_then(|c| c.restrict(&b, &policy));
        match (combined, sequential) {
            (None, None) => {}
            (Some(x), Some(y)) => prop_assert_eq!(x, y),
            (x, y) => prop_assert!(false, "mismatch: {:?} vs {:?}", x.is_some(), y.is_some()),
        }
    }
}
