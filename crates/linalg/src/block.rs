//! Per-block kernels: where the bitmask earns its keep (paper Fig. 5).
//!
//! A block is a [`Chunk<f64>`] of extent `rows × cols`, stored column-last
//! (local offset `r + c * rows`, matching the array mapper's dim-0-fastest
//! layout). Zero entries are invalid cells; multiplication only touches
//! pairs that survive the bitmask AND, "avoid\[ing\] the multiplication if
//! one of them is zero".

use spangle_bitmask::{choose_validity_repr, OffsetArray, ValidityRepr};
use spangle_core::{Chunk, ChunkPolicy};

/// Builds a block chunk from a dense column-last buffer, dropping zeros
/// into the mask (zero == invalid in matrix mode).
pub fn block_from_dense(values: Vec<f64>, policy: &ChunkPolicy) -> Option<Chunk<f64>> {
    let mask = spangle_bitmask::Bitmask::from_fn(values.len(), |i| values[i] != 0.0);
    Chunk::build(values, mask, policy)
}

/// Builds a block chunk from `(row, col, value)` triplets.
pub fn block_from_triplets(
    rows: usize,
    cols: usize,
    triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    policy: &ChunkPolicy,
) -> Option<Chunk<f64>> {
    let cells = triplets
        .into_iter()
        .filter(|&(_, _, v)| v != 0.0)
        .map(|(r, c, v)| {
            debug_assert!(r < rows && c < cols, "triplet out of block bounds");
            (r + c * rows, v)
        });
    Chunk::from_cells(rows * cols, cells, policy)
}

/// `out[r + c*a_rows] += A · B` for blocks `A (a_rows × inner)` and
/// `B (inner × b_cols)`, skipping invalid (zero) pairs via the sparsity
/// the bitmask preserved.
///
/// The kernel walks A's valid cells once and joins them against a per-row
/// index of B's valid cells — effectively the bitmask-AND of Fig. 5
/// evaluated lazily.
pub fn block_multiply_into(
    a: &Chunk<f64>,
    a_rows: usize,
    b: &Chunk<f64>,
    inner: usize,
    b_cols: usize,
    out: &mut [f64],
) {
    debug_assert_eq!(a.volume(), a_rows * inner, "A block extent mismatch");
    debug_assert_eq!(b.volume(), inner * b_cols, "B block extent mismatch");
    debug_assert_eq!(out.len(), a_rows * b_cols);
    // Index B by inner row: b_rows[k] lists (col, value).
    let mut b_rows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); inner];
    for (local, v) in b.iter_valid() {
        let k = local % inner;
        let c = local / inner;
        b_rows[k].push((c as u32, v));
    }
    for (local, va) in a.iter_valid() {
        let r = local % a_rows;
        let k = local / a_rows;
        for &(c, vb) in &b_rows[k] {
            out[r + c as usize * a_rows] += va * vb;
        }
    }
}

/// Dense reference kernel: ignores the mask entirely and multiplies every
/// slot (invalid slots read as 0). This is the SciSpark-style baseline.
pub fn block_multiply_dense_into(
    a: &Chunk<f64>,
    a_rows: usize,
    b: &Chunk<f64>,
    inner: usize,
    b_cols: usize,
    out: &mut [f64],
) {
    let mut a_dense = vec![0.0; a_rows * inner];
    for (local, v) in a.iter_valid() {
        a_dense[local] = v;
    }
    let mut b_dense = vec![0.0; inner * b_cols];
    for (local, v) in b.iter_valid() {
        b_dense[local] = v;
    }
    for c in 0..b_cols {
        for k in 0..inner {
            let vb = b_dense[k + c * inner];
            if vb == 0.0 {
                continue;
            }
            let out_col = &mut out[c * a_rows..(c + 1) * a_rows];
            let a_col = &a_dense[k * a_rows..(k + 1) * a_rows];
            for r in 0..a_rows {
                out_col[r] += a_col[r] * vb;
            }
        }
    }
}

/// Offset-array kernel (§V-A4): the same contraction as
/// [`block_multiply_into`] but driving A's traversal through an explicit
/// [`OffsetArray`] instead of the bitmask — profitable for static,
/// hyper-sparse blocks where the offsets are smaller than the mask.
pub fn block_multiply_offsets_into(
    a_offsets: &OffsetArray,
    a_values: &[f64],
    a_rows: usize,
    b: &Chunk<f64>,
    inner: usize,
    b_cols: usize,
    out: &mut [f64],
) {
    debug_assert_eq!(a_offsets.count_ones(), a_values.len());
    debug_assert_eq!(b.volume(), inner * b_cols);
    let mut b_rows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); inner];
    for (local, v) in b.iter_valid() {
        b_rows[local % inner].push(((local / inner) as u32, v));
    }
    for (slot, &off) in a_offsets.offsets().iter().enumerate() {
        let local = off as usize;
        let r = local % a_rows;
        let k = local / a_rows;
        let va = a_values[slot];
        for &(c, vb) in &b_rows[k] {
            out[r + c as usize * a_rows] += va * vb;
        }
    }
}

/// The validity representation a static block should use for repeated
/// multiplication (bitmask vs offset array), per the paper's size rule.
pub fn preferred_repr(block: &Chunk<f64>) -> ValidityRepr {
    choose_validity_repr(block.volume(), block.valid_count())
}

/// Transposes a block: `(rows × cols)` column-last to `(cols × rows)`
/// column-last.
pub fn block_transpose(
    block: &Chunk<f64>,
    rows: usize,
    cols: usize,
    policy: &ChunkPolicy,
) -> Option<Chunk<f64>> {
    debug_assert_eq!(block.volume(), rows * cols);
    let cells = block.iter_valid().map(|(local, v)| {
        let r = local % rows;
        let c = local / rows;
        (c + r * cols, v)
    });
    Chunk::from_cells(rows * cols, cells.collect::<Vec<_>>(), policy)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_of(chunk: &Chunk<f64>) -> Vec<f64> {
        let mut out = vec![0.0; chunk.volume()];
        for (i, v) in chunk.iter_valid() {
            out[i] = v;
        }
        out
    }

    fn reference_multiply(
        a: &[f64],
        a_rows: usize,
        b: &[f64],
        inner: usize,
        b_cols: usize,
    ) -> Vec<f64> {
        let mut out = vec![0.0; a_rows * b_cols];
        for r in 0..a_rows {
            for c in 0..b_cols {
                for k in 0..inner {
                    out[r + c * a_rows] += a[r + k * a_rows] * b[k + c * inner];
                }
            }
        }
        out
    }

    fn sample_block(rows: usize, cols: usize, density_mod: usize, seed: usize) -> Chunk<f64> {
        block_from_triplets(
            rows,
            cols,
            (0..rows).flat_map(|r| {
                (0..cols)
                    .filter(move |c| (r * cols + c + seed).is_multiple_of(density_mod))
                    .map(move |c| (r, c, (r * 10 + c + 1) as f64))
            }),
            &ChunkPolicy::default(),
        )
        .expect("non-empty block")
    }

    #[test]
    fn masked_kernel_matches_dense_reference() {
        for density in [1, 2, 5, 17] {
            let a = sample_block(6, 5, density, 0);
            let b = sample_block(5, 7, density, 3);
            let expected = reference_multiply(&dense_of(&a), 6, &dense_of(&b), 5, 7);
            let mut got = vec![0.0; 6 * 7];
            block_multiply_into(&a, 6, &b, 5, 7, &mut got);
            assert_eq!(got, expected, "density={density}");
            let mut dense_got = vec![0.0; 6 * 7];
            block_multiply_dense_into(&a, 6, &b, 5, 7, &mut dense_got);
            assert_eq!(dense_got, expected, "dense kernel, density={density}");
        }
    }

    #[test]
    fn offset_kernel_matches_masked_kernel() {
        let a = sample_block(8, 8, 7, 1);
        let b = sample_block(8, 6, 3, 2);
        let mut expected = vec![0.0; 8 * 6];
        block_multiply_into(&a, 8, &b, 8, 6, &mut expected);

        let offsets = OffsetArray::from_mask(&a.mask());
        let values: Vec<f64> = a.iter_valid().map(|(_, v)| v).collect();
        let mut got = vec![0.0; 8 * 6];
        block_multiply_offsets_into(&offsets, &values, 8, &b, 8, 6, &mut got);
        assert_eq!(got, expected);
    }

    #[test]
    fn block_from_dense_drops_zeros_into_the_mask() {
        let block = block_from_dense(vec![0.0, 1.0, 0.0, 2.0], &ChunkPolicy::default()).unwrap();
        assert_eq!(block.valid_count(), 2);
        assert_eq!(block.get(0), None, "zero entries are invalid cells");
        assert_eq!(block.get(1), Some(1.0));
    }

    #[test]
    fn all_zero_block_is_not_created() {
        assert!(block_from_dense(vec![0.0; 16], &ChunkPolicy::default()).is_none());
        assert!(block_from_triplets(4, 4, vec![(0, 0, 0.0)], &ChunkPolicy::default()).is_none());
    }

    #[test]
    fn transpose_flips_coordinates() {
        let a = sample_block(4, 6, 3, 0);
        let t = block_transpose(&a, 4, 6, &ChunkPolicy::default()).unwrap();
        for r in 0..4 {
            for c in 0..6 {
                assert_eq!(a.get(r + c * 4), t.get(c + r * 6), "({r},{c})");
            }
        }
    }

    #[test]
    fn preferred_repr_switches_with_sparsity() {
        // 64x64 block (4096 slots), 2 valid cells: offsets (8 B) < mask
        // (512 B).
        let hyper = block_from_triplets(
            64,
            64,
            vec![(0, 0, 1.0), (63, 63, 2.0)],
            &ChunkPolicy::default(),
        )
        .unwrap();
        assert_eq!(preferred_repr(&hyper), ValidityRepr::Offsets);
        let dense = sample_block(64, 64, 1, 0);
        assert_eq!(preferred_repr(&dense), ValidityRepr::Bitmask);
    }
}
