//! Iterative solvers and spectral utilities on top of the broadcast
//! matrix–vector product — the linear-algebra workloads the paper's
//! introduction motivates ("solving a system of linear equations",
//! principal components).
//!
//! Both routines only touch the matrix through [`DistMatrix::matvec`], so
//! every iteration is one broadcast + one small reduce: the same
//! communication pattern as the tailored PageRank.

use crate::matrix::DistMatrix;
use crate::vector::DenseVector;
use spangle_dataflow::JobError;

/// Outcome of an iterative solve.
#[derive(Clone, Debug)]
pub struct SolveResult {
    /// The solution / eigenvector estimate.
    pub x: DenseVector,
    /// Iterations executed.
    pub iterations: usize,
    /// Final residual norm (CG) or eigenvalue estimate (power iteration).
    pub metric: f64,
}

/// Solves `A·x = b` for a symmetric positive-definite `A` by conjugate
/// gradients. Stops when the residual 2-norm drops below `tolerance` or
/// after `max_iters` iterations.
pub fn conjugate_gradient(
    a: &DistMatrix,
    b: &DenseVector,
    tolerance: f64,
    max_iters: usize,
) -> Result<SolveResult, JobError> {
    assert_eq!(a.rows(), a.cols(), "CG needs a square (SPD) matrix");
    assert_eq!(b.len(), a.rows(), "dimension mismatch in A·x = b");
    let n = b.len();
    let mut x = vec![0.0f64; n];
    let mut r: Vec<f64> = b.as_slice().to_vec();
    let mut p = r.clone();
    let mut rs_old: f64 = r.iter().map(|v| v * v).sum();
    let mut iterations = 0;

    while iterations < max_iters && rs_old.sqrt() > tolerance {
        iterations += 1;
        let ap = a.matvec(&DenseVector::column(p.clone()))?;
        let ap = ap.as_slice();
        let denom: f64 = p.iter().zip(ap).map(|(pi, api)| pi * api).sum();
        if denom.abs() < f64::MIN_POSITIVE {
            break; // breakdown: p is (numerically) in A's null space
        }
        let alpha = rs_old / denom;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new: f64 = r.iter().map(|v| v * v).sum();
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }

    Ok(SolveResult {
        x: DenseVector::column(x),
        iterations,
        metric: rs_old.sqrt(),
    })
}

/// Estimates the dominant eigenvalue/eigenvector of `A` by power
/// iteration (the same kernel PageRank is, §VI-B). Stops when successive
/// eigenvalue estimates differ by less than `tolerance`.
pub fn power_iteration(
    a: &DistMatrix,
    tolerance: f64,
    max_iters: usize,
) -> Result<SolveResult, JobError> {
    assert_eq!(a.rows(), a.cols(), "power iteration needs a square matrix");
    let n = a.rows();
    let mut x = vec![1.0 / (n as f64).sqrt(); n];
    let mut eigen = 0.0f64;
    let mut iterations = 0;

    while iterations < max_iters {
        iterations += 1;
        let y = a.matvec(&DenseVector::column(x.clone()))?;
        let y = y.as_slice();
        let norm: f64 = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm < f64::MIN_POSITIVE {
            eigen = 0.0;
            break; // x was in the null space
        }
        let next_eigen: f64 = x.iter().zip(y).map(|(xi, yi)| xi * yi).sum();
        x = y.iter().map(|v| v / norm).collect();
        let converged = (next_eigen - eigen).abs() < tolerance;
        eigen = next_eigen;
        if converged {
            break;
        }
    }

    Ok(SolveResult {
        x: DenseVector::column(x),
        iterations,
        metric: eigen,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spangle_core::ChunkPolicy;
    use spangle_dataflow::SpangleContext;

    /// A small SPD matrix: tridiagonal (2, -1) Laplacian plus identity.
    fn spd(ctx: &SpangleContext, n: usize) -> DistMatrix {
        DistMatrix::generate(ctx, n, n, (8, 8), ChunkPolicy::default(), |r, c| {
            if r == c {
                Some(3.0)
            } else if r.abs_diff(c) == 1 {
                Some(-1.0)
            } else {
                None
            }
        })
    }

    #[test]
    fn cg_solves_an_spd_system() {
        let ctx = SpangleContext::new(2);
        let n = 40;
        let a = spd(&ctx, n);
        a.persist();
        let b = DenseVector::column((0..n).map(|i| ((i % 5) as f64) - 2.0).collect());
        let result = conjugate_gradient(&a, &b, 1e-10, 200).unwrap();
        assert!(result.metric < 1e-9, "residual {}", result.metric);
        // Verify A·x == b directly.
        let ax = a.matvec(&result.x).unwrap();
        for (got, want) in ax.as_slice().iter().zip(b.as_slice()) {
            assert!((got - want).abs() < 1e-7);
        }
        assert!(result.iterations <= n, "CG converges in <= n steps");
    }

    #[test]
    fn cg_on_the_identity_converges_immediately() {
        let ctx = SpangleContext::new(2);
        let eye = DistMatrix::generate(&ctx, 16, 16, (8, 8), ChunkPolicy::default(), |r, c| {
            (r == c).then_some(1.0)
        });
        let b = DenseVector::column(vec![2.0; 16]);
        let result = conjugate_gradient(&eye, &b, 1e-12, 10).unwrap();
        assert_eq!(result.iterations, 1);
        for v in result.x.as_slice() {
            assert!((v - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn power_iteration_finds_the_dominant_eigenpair() {
        let ctx = SpangleContext::new(2);
        // Diagonal matrix: dominant eigenvalue is the largest entry.
        let a = DistMatrix::generate(&ctx, 12, 12, (4, 4), ChunkPolicy::default(), |r, c| {
            (r == c).then(|| (r + 1) as f64)
        });
        let result = power_iteration(&a, 1e-12, 2000).unwrap();
        assert!(
            (result.metric - 12.0).abs() < 1e-6,
            "eigenvalue {}",
            result.metric
        );
        // Eigenvector concentrates on the last coordinate.
        let x = result.x.as_slice();
        assert!(x[11].abs() > 0.999, "eigenvector {x:?}");
    }

    #[test]
    #[should_panic(expected = "square")]
    fn cg_rejects_rectangular_matrices() {
        let ctx = SpangleContext::new(1);
        let a = DistMatrix::generate(&ctx, 4, 6, (2, 2), ChunkPolicy::default(), |_, _| Some(1.0));
        let _ = conjugate_gradient(&a, &DenseVector::column(vec![1.0; 6]), 1e-6, 10);
    }
}
