//! Distributed block matrices (paper §V-A4, §VI-A).
//!
//! A [`DistMatrix`] is a rank-2 ArrayRDD whose chunks are matrix blocks.
//! Multiplication is available in two physical plans:
//!
//! * the **shuffle plan** ([`DistMatrix::multiply`]): both operands are
//!   re-keyed by the contraction index and joined — Spark's "two Join
//!   stages and one Reduce stage";
//! * the **local-join plan** ([`DistMatrix::multiply_local`] over
//!   [`InnerPartitioned`] operands): when "left and right matrices are
//!   partitioned by row IDs and column IDs respectively, Spangle does not
//!   shuffle them" — the join collapses into a single narrow stage and only
//!   the output reduction crosses the network.
//!
//! Matrix–vector products keep the vector on the driver and broadcast it,
//! which is how the tailored PageRank and SGD avoid shuffling anything but
//! tiny partial vectors.

use crate::block::{block_multiply_into, block_transpose};

/// Merge-adds two sorted sparse partial blocks.
fn merge_sparse_partials(a: Vec<(u32, f64)>, b: Vec<(u32, f64)>) -> Vec<(u32, f64)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((a[i].0, a[i].1 + b[j].1));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}
use crate::vector::{DenseVector, Orientation};
use spangle_core::{ArrayBuilder, ArrayMeta, ArrayRdd, Chunk, ChunkPolicy};
use spangle_dataflow::{
    cancellation_point, HashPartitioner, JobError, ModPartitioner, PairRdd, Rdd, SpangleContext,
};
use std::sync::Arc;

/// A distributed block matrix over bitmask chunks.
pub struct DistMatrix {
    array: ArrayRdd<f64>,
}

impl Clone for DistMatrix {
    fn clone(&self) -> Self {
        DistMatrix {
            array: self.array.clone(),
        }
    }
}

impl DistMatrix {
    /// Wraps a rank-2 array as a matrix (dim 0 = rows, dim 1 = columns).
    pub fn from_array(array: ArrayRdd<f64>) -> Self {
        assert_eq!(array.meta().rank(), 2, "matrices are rank-2 arrays");
        DistMatrix { array }
    }

    /// Generates a matrix from an entry function; `f(r, c)` returning
    /// `None` or `Some(0.0)` both mean a zero (invalid) entry.
    pub fn generate(
        ctx: &SpangleContext,
        rows: usize,
        cols: usize,
        block_shape: (usize, usize),
        policy: ChunkPolicy,
        f: impl Fn(usize, usize) -> Option<f64> + Send + Sync + 'static,
    ) -> Self {
        let meta = ArrayMeta::new(vec![rows, cols], vec![block_shape.0, block_shape.1]);
        let array = ArrayBuilder::new(ctx, meta)
            .policy(policy)
            .ingest(move |c| f(c[0], c[1]).filter(|v| *v != 0.0))
            .build();
        DistMatrix { array }
    }

    /// Builds from `(row, col, value)` triplets through the distributed
    /// ingest pipeline.
    pub fn from_triplets(
        ctx: &SpangleContext,
        rows: usize,
        cols: usize,
        block_shape: (usize, usize),
        policy: ChunkPolicy,
        triplets: Vec<(usize, usize, f64)>,
        num_partitions: usize,
    ) -> Self {
        let meta = ArrayMeta::new(vec![rows, cols], vec![block_shape.0, block_shape.1]);
        let cells = triplets
            .into_iter()
            .filter(|&(_, _, v)| v != 0.0)
            .map(|(r, c, v)| (vec![r, c], v))
            .collect();
        DistMatrix {
            array: ArrayRdd::from_cells(ctx, meta, policy, cells, num_partitions),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.array.meta().dims()[0]
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.array.meta().dims()[1]
    }

    /// Block shape `(block_rows, block_cols)`.
    pub fn block_shape(&self) -> (usize, usize) {
        let cs = self.array.meta().chunk_shape();
        (cs[0], cs[1])
    }

    /// The underlying array.
    pub fn array(&self) -> &ArrayRdd<f64> {
        &self.array
    }

    /// The cluster handle.
    pub fn context(&self) -> &SpangleContext {
        self.array.context()
    }

    /// Number of explicitly stored (non-zero) entries.
    pub fn nnz(&self) -> Result<usize, JobError> {
        self.array.count_valid()
    }

    /// Deep memory footprint of all blocks.
    pub fn mem_bytes(&self) -> Result<usize, JobError> {
        self.array.mem_bytes()
    }

    /// Marks the block RDD for caching.
    pub fn persist(&self) -> &Self {
        self.array.persist();
        self
    }

    /// Entry accessor for tests: zero when invalid.
    pub fn to_local(&self) -> Result<Vec<f64>, JobError> {
        let rows = self.rows();
        let mut out = vec![0.0; rows * self.cols()];
        for (coords, v) in self.array.collect_cells()? {
            out[coords[0] + coords[1] * rows] = v;
        }
        Ok(out)
    }

    /// Block-grid dimensions `(grid_rows, grid_cols)`.
    pub fn grid(&self) -> (usize, usize) {
        let g = self.array.meta().grid_dims();
        (g[0], g[1])
    }

    /// Matrix multiplication through the shuffle plan.
    pub fn multiply(&self, other: &DistMatrix) -> DistMatrix {
        self.multiply_impl(other, None)
    }

    /// Matrix multiplication through the local-join plan: both operands
    /// must be [`InnerPartitioned`] over the same partition count (§VI-A).
    pub fn multiply_local(left: &InnerPartitioned, right: &InnerPartitioned) -> DistMatrix {
        assert_eq!(
            left.num_partitions, right.num_partitions,
            "local join requires matching partition counts"
        );
        assert_eq!(
            left.matrix.cols(),
            right.matrix.rows(),
            "inner dimensions must agree"
        );
        left.matrix
            .multiply_impl(&right.matrix, Some((left, right)))
    }

    fn multiply_impl(
        &self,
        other: &DistMatrix,
        prepared: Option<(&InnerPartitioned, &InnerPartitioned)>,
    ) -> DistMatrix {
        assert_eq!(
            self.cols(),
            other.rows(),
            "inner dimensions must agree: {}x{} * {}x{}",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let (a_br, a_bc) = self.block_shape();
        let (b_br, b_bc) = other.block_shape();
        assert_eq!(
            a_bc, b_br,
            "inner block sizes must agree for block multiplication"
        );
        let ctx = self.context().clone();
        let out_meta = Arc::new(ArrayMeta::new(
            vec![self.rows(), other.cols()],
            vec![a_br, b_bc],
        ));
        let a_meta = self.array.meta_arc();
        let b_meta = other.array.meta_arc();
        let policy = self.array.policy();

        // Key both operands by the contraction (inner) block index.
        type Keyed = Rdd<(u64, (u64, Chunk<f64>))>;
        let (keyed_a, keyed_b, partitioner): (
            Keyed,
            Keyed,
            Arc<dyn spangle_dataflow::Partitioner<u64>>,
        ) = match prepared {
            Some((l, r)) => (
                l.rdd.clone(),
                r.rdd.clone(),
                Arc::new(ModPartitioner::new(l.num_partitions)),
            ),
            None => {
                let ga = self.grid();
                let a = self.array.rdd().map(move |(id, chunk)| {
                    let (gr, gc) = (id % ga.0 as u64, id / ga.0 as u64);
                    (gc, (gr, chunk))
                });
                let gb = other.grid();
                let b = other.array.rdd().map(move |(id, chunk)| {
                    let (gr, gc) = (id % gb.0 as u64, id / gb.0 as u64);
                    (gr, (gc, chunk))
                });
                let n = self.array.rdd().num_partitions();
                (a, b, Arc::new(HashPartitioner::new(n)) as _)
            }
        };

        // Join on the inner index and contract each (A-block, B-block)
        // pair. Partials are shipped *sparsely* — sorted `(local offset,
        // value)` runs — so hyper-sparse contractions (the MᵀM cases that
        // OOM dense systems, §VII-C) stay proportional to their non-zeros.
        let out_grid_rows = out_meta.grid_dims()[0] as u64;
        let contraction_meta = (a_meta.clone(), b_meta.clone());
        let partials =
            keyed_a
                .cogroup(&keyed_b, partitioner)
                .flat_map(move |(kb, (a_blocks, b_blocks))| {
                    let (a_meta, b_meta) = &contraction_meta;
                    let a_mapper = a_meta.mapper();
                    let b_mapper = b_meta.mapper();
                    let a_grid_rows = a_meta.grid_dims()[0] as u64;
                    let b_grid_rows = b_meta.grid_dims()[0] as u64;
                    let mut out = Vec::with_capacity(a_blocks.len() * b_blocks.len());
                    for (gr, a_chunk) in &a_blocks {
                        let a_id = gr + kb * a_grid_rows;
                        let a_extent = a_mapper.chunk_extent(a_id);
                        for (gc, b_chunk) in &b_blocks {
                            // One poll per block pair: a straggling or
                            // deadlined contraction yields between GEMM
                            // kernels rather than finishing the tile walk.
                            cancellation_point();
                            let b_id = kb + gc * b_grid_rows;
                            let b_extent = b_mapper.chunk_extent(b_id);
                            debug_assert_eq!(a_extent[1], b_extent[0]);
                            // Dense scratch per pair (transient), compacted to
                            // sparse triplets before it crosses the shuffle.
                            let mut acc = vec![0.0f64; a_extent[0] * b_extent[1]];
                            block_multiply_into(
                                a_chunk,
                                a_extent[0],
                                b_chunk,
                                a_extent[1],
                                b_extent[1],
                                &mut acc,
                            );
                            let sparse: Vec<(u32, f64)> = acc
                                .iter()
                                .enumerate()
                                .filter(|(_, v)| **v != 0.0)
                                .map(|(i, &v)| (i as u32, v))
                                .collect();
                            if sparse.is_empty() {
                                continue;
                            }
                            let out_id = gr + gc * out_grid_rows;
                            out.push((out_id, sparse));
                        }
                    }
                    out
                });

        // Reduce sparse partials per output chunk (merge-add of sorted
        // runs) and re-encode as chunks.
        let n_out = self.array.rdd().num_partitions();
        let reduced =
            partials.reduce_by_key(Arc::new(HashPartitioner::new(n_out)), merge_sparse_partials);
        let red_meta = out_meta.clone();
        let rdd = reduced.flat_map(move |(id, cells)| {
            let volume = red_meta.mapper().chunk_volume(id);
            // Exact cancellations are zeros, and zeros are invalid cells.
            let cells = cells
                .into_iter()
                .filter(|(_, v)| *v != 0.0)
                .map(|(i, v)| (i as usize, v));
            Chunk::from_cells(volume, cells, &policy)
                .map(|c| (id, c))
                .into_iter()
                .collect::<Vec<_>>()
        });
        let sig = spangle_dataflow::Partitioner::<u64>::sig(&HashPartitioner::new(n_out));
        let rdd = rdd.assert_partitioned(sig);
        DistMatrix {
            array: ArrayRdd::from_parts(&ctx, out_meta, policy, rdd),
        }
    }

    /// Re-partitions this matrix by its *column* (inner, when used as the
    /// left operand) block index — half of the local-join layout.
    pub fn partition_left_by_inner(&self, num_partitions: usize) -> InnerPartitioned {
        let (grid_rows, _) = self.grid();
        let grid_rows = grid_rows as u64;
        let keyed = self.array.rdd().map(move |(id, chunk)| {
            let (gr, gc) = (id % grid_rows, id / grid_rows);
            (gc, (gr, chunk))
        });
        let rdd = keyed.partition_by(Arc::new(ModPartitioner::new(num_partitions)));
        rdd.persist();
        InnerPartitioned {
            matrix: self.clone(),
            rdd,
            num_partitions,
        }
    }

    /// Re-partitions this matrix by its *row* (inner, when used as the
    /// right operand) block index — the other half of the local-join
    /// layout.
    pub fn partition_right_by_inner(&self, num_partitions: usize) -> InnerPartitioned {
        let (grid_rows, _) = self.grid();
        let grid_rows = grid_rows as u64;
        let keyed = self.array.rdd().map(move |(id, chunk)| {
            let (gr, gc) = (id % grid_rows, id / grid_rows);
            (gr, (gc, chunk))
        });
        let rdd = keyed.partition_by(Arc::new(ModPartitioner::new(num_partitions)));
        rdd.persist();
        InnerPartitioned {
            matrix: self.clone(),
            rdd,
            num_partitions,
        }
    }

    /// Physical transpose: every block moves to its mirrored grid slot and
    /// is transposed in place. (For *vectors* Spangle never does this —
    /// see [`DenseVector::transpose`].)
    pub fn transpose(&self) -> DistMatrix {
        let (grid_rows, grid_cols) = self.grid();
        let (br, bc) = self.block_shape();
        let meta = self.array.meta_arc();
        let policy = self.array.policy();
        let out_meta = Arc::new(ArrayMeta::new(vec![self.cols(), self.rows()], vec![bc, br]));
        let rdd = self.array.rdd().flat_map(move |(id, chunk)| {
            let mapper = meta.mapper();
            let extent = mapper.chunk_extent(id);
            let (gr, gc) = (id % grid_rows as u64, id / grid_rows as u64);
            let t_id = gc + gr * grid_cols as u64;
            block_transpose(&chunk, extent[0], extent[1], &policy)
                .map(|c| (t_id, c))
                .into_iter()
                .collect::<Vec<_>>()
        });
        // Keys moved: restore the canonical hash layout.
        let n = self.array.rdd().num_partitions();
        let rdd = rdd.partition_by(Arc::new(HashPartitioner::new(n)));
        DistMatrix {
            array: ArrayRdd::from_parts(self.context(), out_meta, policy, rdd),
        }
    }

    /// Gram matrix `MᵀM` — the transpose-and-multiply benchmark of
    /// Fig. 10.
    ///
    /// Because both operands are views of the *same* matrix, the §VI-A
    /// layout can be built once: a single shuffle lays the blocks out by
    /// their row-block index (the contraction index of `MᵀM`), the right
    /// operand reads that layout directly, and the left operand is
    /// derived narrowly from it by transposing each block in place
    /// (`map_values` keeps the partitioner signature). The planner then
    /// proves both legs of the join co-partitioned and elides their
    /// shuffles, so each input block crosses the network once instead of
    /// three times (transpose + two join sides).
    pub fn gram(&self) -> DistMatrix {
        let n = self.array.rdd().num_partitions();
        let (grid_rows, _) = self.grid();
        let gr64 = grid_rows as u64;
        let keyed = self
            .array
            .rdd()
            .map(move |(id, chunk)| (id % gr64, (id, chunk)));
        let shared = keyed.partition_by(Arc::new(ModPartitioner::new(n)));
        shared.persist();
        // Right operand: `M` keyed by its row block — exactly the layout
        // `partition_right_by_inner` would build.
        let right = InnerPartitioned {
            matrix: self.clone(),
            rdd: shared.map_values(move |(id, chunk)| (id / gr64, chunk)),
            num_partitions: n,
        };
        // Left operand: `Mᵀ` keyed by its column block — the same key —
        // with every block transposed where it already sits.
        let meta = self.array.meta_arc();
        let policy = self.array.policy();
        let left = InnerPartitioned {
            // Lazy: `multiply_local` only reads the transpose's metadata.
            matrix: self.transpose(),
            rdd: shared.map_values(move |(id, chunk)| {
                let extent = meta.mapper().chunk_extent(id);
                let t = block_transpose(&chunk, extent[0], extent[1], &policy)
                    .expect("transposing a non-empty block yields a non-empty block");
                (id / gr64, t)
            }),
            num_partitions: n,
        };
        DistMatrix::multiply_local(&left, &right)
    }

    /// `y = M·x` with a broadcast column vector: every block contributes a
    /// partial row-segment, reduced per block row. No matrix data moves.
    pub fn matvec(&self, x: &DenseVector) -> Result<DenseVector, JobError> {
        assert_eq!(
            x.orientation(),
            Orientation::Column,
            "matvec needs a column vector; transpose() is metadata-only"
        );
        assert_eq!(x.len(), self.cols(), "dimension mismatch in M·x");
        let ctx = self.context().clone();
        let bc = ctx.broadcast(x.as_slice().to_vec());
        let meta = self.array.meta_arc();
        let (grid_rows, _) = self.grid();
        let partials = self.array.rdd().map(move |(id, chunk)| {
            let mapper = meta.mapper();
            let extent = mapper.chunk_extent(id);
            let origin = mapper.chunk_origin(id);
            let gr = id % grid_rows as u64;
            let x = bc.value();
            let mut acc = vec![0.0f64; extent[0]];
            for (local, v) in chunk.iter_valid() {
                let r = local % extent[0];
                let c = local / extent[0];
                acc[r] += v * x[origin[1] + c];
            }
            (gr, acc)
        });
        let n = self.array.rdd().num_partitions();
        let reduced = partials.reduce_by_key(Arc::new(HashPartitioner::new(n)), |mut a, b| {
            for (x, y) in a.iter_mut().zip(&b) {
                *x += y;
            }
            a
        });
        let segments = reduced.collect()?;
        let (br, _) = self.block_shape();
        let mut out = vec![0.0; self.rows()];
        for (gr, seg) in segments {
            let base = gr as usize * br;
            out[base..base + seg.len()].copy_from_slice(&seg);
        }
        Ok(DenseVector::column(out))
    }

    /// `yᵀ = xᵀ·M` with a broadcast row vector, reduced per block column.
    pub fn vecmat(&self, x: &DenseVector) -> Result<DenseVector, JobError> {
        assert_eq!(
            x.orientation(),
            Orientation::Row,
            "vecmat needs a row vector; transpose() is metadata-only"
        );
        assert_eq!(x.len(), self.rows(), "dimension mismatch in xᵀ·M");
        let ctx = self.context().clone();
        let bc = ctx.broadcast(x.as_slice().to_vec());
        let meta = self.array.meta_arc();
        let (grid_rows, _) = self.grid();
        let partials = self.array.rdd().map(move |(id, chunk)| {
            let mapper = meta.mapper();
            let extent = mapper.chunk_extent(id);
            let origin = mapper.chunk_origin(id);
            let gc = id / grid_rows as u64;
            let x = bc.value();
            let mut acc = vec![0.0f64; extent[1]];
            for (local, v) in chunk.iter_valid() {
                let r = local % extent[0];
                let c = local / extent[0];
                acc[c] += v * x[origin[0] + r];
            }
            (gc, acc)
        });
        let n = self.array.rdd().num_partitions();
        let reduced = partials.reduce_by_key(Arc::new(HashPartitioner::new(n)), |mut a, b| {
            for (x, y) in a.iter_mut().zip(&b) {
                *x += y;
            }
            a
        });
        let segments = reduced.collect()?;
        let (_, bcols) = self.block_shape();
        let mut out = vec![0.0; self.cols()];
        for (gc, seg) in segments {
            let base = gc as usize * bcols;
            out[base..base + seg.len()].copy_from_slice(&seg);
        }
        Ok(DenseVector::row(out))
    }

    /// Element-wise sum — embarrassingly parallel, shuffle-free when the
    /// operands are co-partitioned.
    pub fn add(&self, other: &DistMatrix) -> DistMatrix {
        self.elementwise(other, |a, b| a + b)
    }

    /// Hadamard (element-wise) product; the bitmask AND makes this skip
    /// every pair with an invalid side (Fig. 5's element-wise case).
    pub fn hadamard(&self, other: &DistMatrix) -> DistMatrix {
        DistMatrix {
            array: self
                .array
                .zip_with(&other.array, |a, b| a.zip(b).map(|(x, y)| x * y)),
        }
    }

    /// Scales every entry.
    pub fn scale(&self, s: f64) -> DistMatrix {
        DistMatrix {
            array: self.array.map_values(move |v| v * s),
        }
    }

    fn elementwise(
        &self,
        other: &DistMatrix,
        f: impl Fn(f64, f64) -> f64 + Send + Sync + 'static,
    ) -> DistMatrix {
        DistMatrix {
            array: self.array.zip_with(&other.array, move |a, b| {
                let v = f(a.unwrap_or(0.0), b.unwrap_or(0.0));
                (v != 0.0).then_some(v)
            }),
        }
    }
}

/// A matrix re-partitioned by its contraction index, ready for
/// [`DistMatrix::multiply_local`]. Building one costs a shuffle; reusing it
/// across iterations (PageRank, SGD) amortises that cost to zero, which is
/// the entire point of §VI-A.
pub struct InnerPartitioned {
    matrix: DistMatrix,
    rdd: Rdd<(u64, (u64, Chunk<f64>))>,
    num_partitions: usize,
}

impl InnerPartitioned {
    /// The wrapped matrix.
    pub fn matrix(&self) -> &DistMatrix {
        &self.matrix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> SpangleContext {
        SpangleContext::new(4)
    }

    fn dense_mat(
        ctx: &SpangleContext,
        rows: usize,
        cols: usize,
        block: (usize, usize),
    ) -> DistMatrix {
        DistMatrix::generate(ctx, rows, cols, block, ChunkPolicy::default(), |r, c| {
            Some(((r * 31 + c * 17) % 7) as f64 - 3.0)
        })
    }

    fn sparse_mat(
        ctx: &SpangleContext,
        rows: usize,
        cols: usize,
        block: (usize, usize),
    ) -> DistMatrix {
        DistMatrix::generate(ctx, rows, cols, block, ChunkPolicy::default(), |r, c| {
            (r + 2 * c).is_multiple_of(11).then_some((r + c + 1) as f64)
        })
    }

    fn reference_multiply(a: &[f64], m: usize, k: usize, b: &[f64], p: usize) -> Vec<f64> {
        let mut out = vec![0.0; m * p];
        for c in 0..p {
            for kk in 0..k {
                let vb = b[kk + c * k];
                for r in 0..m {
                    out[r + c * m] += a[r + kk * m] * vb;
                }
            }
        }
        out
    }

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-9, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn shuffle_multiply_matches_reference() {
        let ctx = ctx();
        // Non-square, edge blocks on both operands.
        let a = dense_mat(&ctx, 30, 22, (8, 8));
        let b = sparse_mat(&ctx, 22, 17, (8, 8));
        let got = a.multiply(&b).to_local().unwrap();
        let expected =
            reference_multiply(&a.to_local().unwrap(), 30, 22, &b.to_local().unwrap(), 17);
        assert_close(&got, &expected);
    }

    #[test]
    fn local_multiply_matches_shuffle_multiply() {
        let ctx = ctx();
        let a = dense_mat(&ctx, 24, 24, (8, 8));
        let b = sparse_mat(&ctx, 24, 16, (8, 8));
        let shuffle = a.multiply(&b).to_local().unwrap();
        let left = a.partition_left_by_inner(4);
        let right = b.partition_right_by_inner(4);
        let local = DistMatrix::multiply_local(&left, &right)
            .to_local()
            .unwrap();
        assert_close(&local, &shuffle);
    }

    #[test]
    fn local_multiply_joins_without_shuffling_inputs() {
        // Asserts the shuffle-elision rewrite itself, so pin it on
        // regardless of SPANGLE_DISABLE_PLANNER.
        let ctx = SpangleContext::builder()
            .executors(4)
            .elide_shuffles(true)
            .build();
        let a = dense_mat(&ctx, 24, 24, (8, 8));
        let b = dense_mat(&ctx, 24, 24, (8, 8));
        let left = a.partition_left_by_inner(4);
        let right = b.partition_right_by_inner(4);
        // Materialise the prepared layouts.
        left.matrix().nnz().unwrap();
        DistMatrix::multiply_local(&left, &right).nnz().unwrap();

        // A second multiply against the same prepared layout re-shuffles
        // nothing on the join side; only the output reduction shuffles, and
        // its volume is far below the input volume.
        let before = ctx.metrics_snapshot();
        let c = DistMatrix::multiply_local(&left, &right);
        c.nnz().unwrap();
        let local_delta = ctx.metrics_snapshot() - before;

        let before = ctx.metrics_snapshot();
        let c2 = a.multiply(&b);
        c2.nnz().unwrap();
        let shuffle_delta = ctx.metrics_snapshot() - before;

        assert!(
            local_delta.shuffle_write_bytes < shuffle_delta.shuffle_write_bytes,
            "local join should move less data: {} vs {}",
            local_delta.shuffle_write_bytes,
            shuffle_delta.shuffle_write_bytes
        );
        assert!(
            local_delta.stages_run < shuffle_delta.stages_run,
            "local join should run fewer stages: {} vs {}",
            local_delta.stages_run,
            shuffle_delta.stages_run
        );
    }

    #[test]
    fn transpose_mirrors_entries() {
        let ctx = ctx();
        let a = sparse_mat(&ctx, 14, 9, (4, 4));
        let t = a.transpose();
        assert_eq!(t.rows(), 9);
        assert_eq!(t.cols(), 14);
        let a_local = a.to_local().unwrap();
        let t_local = t.to_local().unwrap();
        for r in 0..14 {
            for c in 0..9 {
                assert_eq!(a_local[r + c * 14], t_local[c + r * 9], "({r},{c})");
            }
        }
    }

    #[test]
    fn gram_matches_reference() {
        let ctx = ctx();
        let a = sparse_mat(&ctx, 20, 12, (6, 6));
        let local = a.to_local().unwrap();
        let t: Vec<f64> = {
            let mut t = vec![0.0; 12 * 20];
            for r in 0..20 {
                for c in 0..12 {
                    t[c + r * 12] = local[r + c * 20];
                }
            }
            t
        };
        let expected = reference_multiply(&t, 12, 20, &local, 12);
        assert_close(&a.gram().to_local().unwrap(), &expected);
    }

    #[test]
    fn matvec_and_vecmat_match_reference() {
        let ctx = ctx();
        let a = dense_mat(&ctx, 18, 11, (5, 4));
        let local = a.to_local().unwrap();
        let x = DenseVector::column((0..11).map(|i| i as f64 * 0.5 - 2.0).collect());
        let y = a.matvec(&x).unwrap();
        for r in 0..18 {
            let expected: f64 = (0..11).map(|c| local[r + c * 18] * x.as_slice()[c]).sum();
            assert!((y.as_slice()[r] - expected).abs() < 1e-9, "row {r}");
        }

        let xr = DenseVector::row((0..18).map(|i| (i % 5) as f64).collect());
        let yt = a.vecmat(&xr).unwrap();
        for c in 0..11 {
            let expected: f64 = (0..18).map(|r| local[r + c * 18] * xr.as_slice()[r]).sum();
            assert!((yt.as_slice()[c] - expected).abs() < 1e-9, "col {c}");
        }
    }

    #[test]
    fn matvec_moves_no_matrix_blocks() {
        let ctx = ctx();
        let a = dense_mat(&ctx, 64, 64, (16, 16));
        a.persist();
        a.nnz().unwrap();
        let block_bytes = a.mem_bytes().unwrap();
        let x = DenseVector::column(vec![1.0; 64]);
        let before = ctx.metrics_snapshot();
        a.matvec(&x).unwrap();
        let delta = ctx.metrics_snapshot() - before;
        assert!(
            (delta.shuffle_write_bytes as usize) < block_bytes / 4,
            "only small partial vectors may cross the shuffle: {} vs {} block bytes",
            delta.shuffle_write_bytes,
            block_bytes
        );
    }

    #[test]
    fn elementwise_ops_match_reference() {
        let ctx = ctx();
        let a = sparse_mat(&ctx, 10, 10, (4, 4));
        let b = dense_mat(&ctx, 10, 10, (4, 4));
        let al = a.to_local().unwrap();
        let bl = b.to_local().unwrap();

        let sum = a.add(&b).to_local().unwrap();
        let had = a.hadamard(&b).to_local().unwrap();
        let scaled = a.scale(-2.0).to_local().unwrap();
        for i in 0..100 {
            assert!((sum[i] - (al[i] + bl[i])).abs() < 1e-12);
            assert!((had[i] - al[i] * bl[i]).abs() < 1e-12);
            assert!((scaled[i] - al[i] * -2.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_is_rejected() {
        let ctx = ctx();
        let a = dense_mat(&ctx, 8, 8, (4, 4));
        let b = dense_mat(&ctx, 9, 8, (4, 4));
        let _ = a.multiply(&b);
    }

    #[test]
    fn zero_rich_product_drops_zero_entries() {
        let ctx = ctx();
        // a * b where the product has exact zeros: those cells must be
        // invalid, not stored zeros.
        let a = DistMatrix::generate(&ctx, 4, 4, (2, 2), ChunkPolicy::default(), |r, c| {
            (r == c).then_some(if r < 2 { 1.0 } else { 0.0 })
        });
        let b = dense_mat(&ctx, 4, 4, (2, 2));
        let product = a.multiply(&b);
        let nnz = product.nnz().unwrap();
        assert!(
            nnz <= 8,
            "rows 2..4 are zero and must not be stored, nnz={nnz}"
        );
    }
}
