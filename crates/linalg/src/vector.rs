//! Driver-resident dense vectors with metadata-only transpose (§VI-C).
//!
//! Vectors in the paper's workloads (PageRank ranks, SGD weights) are tiny
//! next to the matrices, so Spangle keeps them on the driver and ships them
//! to executors by broadcast. Transposing such a vector "only replaces
//! metadata (e.g., from 1×n to n×1)" — the opt₂ optimisation — instead of
//! copying the payload.

/// Row (`1×n`) or column (`n×1`) orientation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Orientation {
    /// A `1×n` row vector.
    Row,
    /// An `n×1` column vector.
    Column,
}

/// A dense driver-side vector with an orientation tag.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseVector {
    data: Vec<f64>,
    orientation: Orientation,
}

impl DenseVector {
    /// A column vector (`n×1`).
    pub fn column(data: Vec<f64>) -> Self {
        DenseVector {
            data,
            orientation: Orientation::Column,
        }
    }

    /// A row vector (`1×n`).
    pub fn row(data: Vec<f64>) -> Self {
        DenseVector {
            data,
            orientation: Orientation::Row,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Current orientation.
    pub fn orientation(&self) -> Orientation {
        self.orientation
    }

    /// The entries.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the entries.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes into the raw entries.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Metadata-only transpose (opt₂): O(1), flips the orientation tag and
    /// shares no work with the payload.
    pub fn transpose(mut self) -> Self {
        self.orientation = match self.orientation {
            Orientation::Row => Orientation::Column,
            Orientation::Column => Orientation::Row,
        };
        self
    }

    /// Physical transpose: what a layout-faithful system would do — copy
    /// the payload element by element into the new layout. Semantically
    /// identical to [`DenseVector::transpose`]; exists so the opt₂ ablation
    /// (Fig. 12b) has a real cost to remove.
    pub fn transpose_physical(self) -> Self {
        let mut copied = Vec::with_capacity(self.data.len());
        for &v in &self.data {
            copied.push(v);
        }
        DenseVector {
            data: copied,
            orientation: match self.orientation {
                Orientation::Row => Orientation::Column,
                Orientation::Column => Orientation::Row,
            },
        }
    }

    /// Element-wise (Hadamard) product, used by PageRank's `w ∘ p`.
    pub fn hadamard(&self, other: &DenseVector) -> DenseVector {
        assert_eq!(self.len(), other.len(), "hadamard length mismatch");
        DenseVector {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a * b)
                .collect(),
            orientation: self.orientation,
        }
    }

    /// `self · other`.
    pub fn dot(&self, other: &DenseVector) -> f64 {
        assert_eq!(self.len(), other.len(), "dot length mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// `α·self + β·other`, element-wise.
    pub fn axpby(&self, alpha: f64, beta: f64, other: &DenseVector) -> DenseVector {
        assert_eq!(self.len(), other.len(), "axpby length mismatch");
        DenseVector {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| alpha * a + beta * b)
                .collect(),
            orientation: self.orientation,
        }
    }

    /// Adds a scalar to every entry (PageRank's teleport term).
    pub fn add_scalar(&self, s: f64) -> DenseVector {
        DenseVector {
            data: self.data.iter().map(|v| v + s).collect(),
            orientation: self.orientation,
        }
    }

    /// Scales every entry.
    pub fn scale(&self, s: f64) -> DenseVector {
        DenseVector {
            data: self.data.iter().map(|v| v * s).collect(),
            orientation: self.orientation,
        }
    }

    /// L1 distance to another vector (PageRank/SGD convergence checks).
    pub fn l1_distance(&self, other: &DenseVector) -> f64 {
        assert_eq!(self.len(), other.len(), "distance length mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_transpose_is_pure_metadata() {
        let v = DenseVector::row(vec![1.0, 2.0, 3.0]);
        let t = v.clone().transpose();
        assert_eq!(t.orientation(), Orientation::Column);
        assert_eq!(t.as_slice(), v.as_slice());
        assert_eq!(t.transpose().orientation(), Orientation::Row);
    }

    #[test]
    fn physical_transpose_agrees_with_metadata_transpose() {
        let v = DenseVector::column(vec![4.0, 5.0]);
        assert_eq!(v.clone().transpose(), v.transpose_physical());
    }

    #[test]
    fn vector_arithmetic() {
        let a = DenseVector::column(vec![1.0, 2.0, 3.0]);
        let b = DenseVector::column(vec![4.0, 5.0, 6.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.dot(&b), 32.0);
        assert_eq!(a.axpby(2.0, 1.0, &b).as_slice(), &[6.0, 9.0, 12.0]);
        assert_eq!(a.add_scalar(1.0).as_slice(), &[2.0, 3.0, 4.0]);
        assert_eq!(a.scale(3.0).as_slice(), &[3.0, 6.0, 9.0]);
        assert_eq!(a.l1_distance(&b), 9.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_are_rejected() {
        let a = DenseVector::column(vec![1.0]);
        let b = DenseVector::column(vec![1.0, 2.0]);
        let _ = a.dot(&b);
    }
}
