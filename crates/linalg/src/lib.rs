#![warn(missing_docs)]

//! Distributed, bitmask-aware linear algebra over ArrayRDD (paper §V-A4,
//! §VI-A).
//!
//! Matrices are two-dimensional [`spangle_core::ArrayRdd`]s whose chunks
//! are the blocks of a block-partitioned matrix. Following the paper, a
//! zero matrix entry *is* an invalid cell: the chunk bitmask doubles as the
//! sparsity structure, and multiplication kernels skip pairs whose bitmask
//! AND is empty.
//!
//! * [`block`] — per-block kernels (bitmask-guided, offset-array and dense
//!   variants) and block constructors;
//! * [`matrix`] — [`DistMatrix`]: block matrix multiplication through the
//!   shuffle path (two join stages + one reduce stage) and through the
//!   fused **local join** (§VI-A), transpose, element-wise operations, and
//!   matrix–vector / vector–matrix products with broadcast vectors;
//! * [`vector`] — [`DenseVector`] with *metadata-only transpose* (the
//!   opt₂ trick of §VI-C: a vector's orientation is a description, not a
//!   layout);
//! * [`solve`] — conjugate gradients and power iteration built purely on
//!   the broadcast matvec.

pub mod block;
pub mod matrix;
pub mod solve;
pub mod vector;

pub use matrix::{DistMatrix, InnerPartitioned};
pub use solve::{conjugate_gradient, power_iteration, SolveResult};
pub use vector::{DenseVector, Orientation};
