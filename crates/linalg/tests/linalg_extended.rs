//! Extended linear-algebra tests: algebraic identities, extreme shapes,
//! and property-based equivalence of the two multiplication plans.

use spangle_core::ChunkPolicy;
use spangle_dataflow::SpangleContext;
use spangle_linalg::{DenseVector, DistMatrix, Orientation};

fn entry(seed: u64) -> impl Fn(usize, usize) -> Option<f64> + Send + Sync + Clone + 'static {
    move |r, c| {
        let h = (r as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((c as u64).wrapping_mul(0xC2B2AE3D27D4EB4F))
            .wrapping_add(seed)
            .wrapping_mul(0xBF58476D1CE4E5B9)
            >> 33;
        (!h.is_multiple_of(3)).then_some((h % 17) as f64 - 8.0)
    }
}

#[test]
fn transpose_is_an_involution() {
    let ctx = SpangleContext::new(2);
    let a = DistMatrix::generate(&ctx, 23, 17, (8, 4), ChunkPolicy::default(), entry(1));
    let round = a.transpose().transpose();
    assert_eq!(a.to_local().unwrap(), round.to_local().unwrap());
    assert_eq!(round.rows(), 23);
    assert_eq!(round.cols(), 17);
}

#[test]
fn multiplication_distributes_over_addition() {
    let ctx = SpangleContext::new(2);
    let a = DistMatrix::generate(&ctx, 16, 16, (8, 8), ChunkPolicy::default(), entry(2));
    let b = DistMatrix::generate(&ctx, 16, 16, (8, 8), ChunkPolicy::default(), entry(3));
    let c = DistMatrix::generate(&ctx, 16, 12, (8, 8), ChunkPolicy::default(), entry(4));
    let left = a.add(&b).multiply(&c).to_local().unwrap();
    let right_a = a.multiply(&c).to_local().unwrap();
    let right_b = b.multiply(&c).to_local().unwrap();
    for i in 0..left.len() {
        assert!(
            (left[i] - (right_a[i] + right_b[i])).abs() < 1e-9,
            "index {i}"
        );
    }
}

#[test]
fn scale_commutes_with_multiplication() {
    let ctx = SpangleContext::new(2);
    let a = DistMatrix::generate(&ctx, 12, 10, (4, 4), ChunkPolicy::default(), entry(5));
    let b = DistMatrix::generate(&ctx, 10, 8, (4, 4), ChunkPolicy::default(), entry(6));
    let scaled_first = a.scale(3.0).multiply(&b).to_local().unwrap();
    let scaled_last = a.multiply(&b).scale(3.0).to_local().unwrap();
    for (x, y) in scaled_first.iter().zip(&scaled_last) {
        assert!((x - y).abs() < 1e-9);
    }
}

#[test]
fn single_column_and_single_row_matrices() {
    let ctx = SpangleContext::new(2);
    // Column matrix times row matrix: outer product.
    let col = DistMatrix::generate(&ctx, 9, 1, (4, 1), ChunkPolicy::default(), |r, _| {
        Some((r + 1) as f64)
    });
    let row = DistMatrix::generate(&ctx, 1, 7, (1, 4), ChunkPolicy::default(), |_, c| {
        Some((c + 1) as f64)
    });
    let outer = col.multiply(&row).to_local().unwrap();
    for r in 0..9 {
        for c in 0..7 {
            assert_eq!(outer[r + c * 9], ((r + 1) * (c + 1)) as f64);
        }
    }
    // Row times column: a 1x1 inner product.
    let inner = row
        .multiply(&DistMatrix::generate(
            &ctx,
            7,
            1,
            (4, 1),
            ChunkPolicy::default(),
            |r, _| Some((r + 1) as f64),
        ))
        .to_local()
        .unwrap();
    assert_eq!(inner, vec![(1..=7).map(|i| (i * i) as f64).sum::<f64>()]);
}

#[test]
fn matvec_respects_vector_orientation() {
    let ctx = SpangleContext::new(2);
    let a = DistMatrix::generate(&ctx, 6, 6, (3, 3), ChunkPolicy::default(), entry(7));
    let col = DenseVector::column(vec![1.0; 6]);
    assert_eq!(col.orientation(), Orientation::Column);
    let y = a.matvec(&col).unwrap();
    // The metadata transpose converts for vecmat with zero copies.
    let z = a.vecmat(&y.transpose()).unwrap();
    assert_eq!(z.orientation(), Orientation::Row);
    assert_eq!(z.len(), 6);
}

#[test]
#[should_panic(expected = "matvec needs a column vector")]
fn matvec_rejects_row_vectors() {
    let ctx = SpangleContext::new(1);
    let a = DistMatrix::generate(&ctx, 4, 4, (2, 2), ChunkPolicy::default(), entry(8));
    let _ = a.matvec(&DenseVector::row(vec![1.0; 4]));
}

/// The shuffle plan and the local-join plan agree on arbitrary shapes,
/// block sizes and partition counts.
#[test]
fn local_join_equals_shuffle_plan() {
    spangle_testkit::run_cases(0x11A1_0001, 12, |rng| {
        let m = rng.usize_in(1..24);
        let k = rng.usize_in(1..24);
        let n = rng.usize_in(1..24);
        let block = rng.usize_in(2..9);
        let parts = rng.usize_in(1..5);
        let seed = rng.u64_in(0..50);
        let ctx = SpangleContext::new(2);
        let a = DistMatrix::generate(
            &ctx,
            m,
            k,
            (block, block),
            ChunkPolicy::default(),
            entry(seed),
        );
        let b = DistMatrix::generate(
            &ctx,
            k,
            n,
            (block, block),
            ChunkPolicy::default(),
            entry(seed + 1),
        );
        let via_shuffle = a.multiply(&b).to_local().unwrap();
        let left = a.partition_left_by_inner(parts);
        let right = b.partition_right_by_inner(parts);
        let via_local = DistMatrix::multiply_local(&left, &right)
            .to_local()
            .unwrap();
        for (i, (x, y)) in via_shuffle.iter().zip(&via_local).enumerate() {
            assert!((x - y).abs() < 1e-9, "index {}: {} vs {}", i, x, y);
        }
    });
}

/// `(A·B)ᵀ == Bᵀ·Aᵀ` for arbitrary shapes.
#[test]
fn product_transpose_identity() {
    spangle_testkit::run_cases(0x11A1_0002, 12, |rng| {
        let m = rng.usize_in(1..16);
        let k = rng.usize_in(1..16);
        let n = rng.usize_in(1..16);
        let seed = rng.u64_in(0..50);
        let ctx = SpangleContext::new(2);
        let a = DistMatrix::generate(&ctx, m, k, (4, 4), ChunkPolicy::default(), entry(seed));
        let b = DistMatrix::generate(&ctx, k, n, (4, 4), ChunkPolicy::default(), entry(seed + 9));
        let lhs = a.multiply(&b).transpose().to_local().unwrap();
        let rhs = b.transpose().multiply(&a.transpose()).to_local().unwrap();
        for (i, (x, y)) in lhs.iter().zip(&rhs).enumerate() {
            assert!((x - y).abs() < 1e-9, "index {}", i);
        }
    });
}
