//! Text ingest: the CSV path of the paper's pipeline (§III-A: "Spangle
//! first ingests data (e.g., CSV and NetCDF)").
//!
//! Each record is one cell: `coord0,coord1,...,value`. Records are keyed
//! by ChunkID (Algorithm 1), shuffled into their chunks and assembled into
//! payload+bitmask — the distributed ingest pipeline of Fig. 2. Cells
//! absent from the file are null.

use spangle_core::{ArrayMeta, ArrayRdd, ChunkPolicy};
use spangle_dataflow::SpangleContext;

/// A malformed record.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses delimited text into `(coords, value)` cells for an array of
/// geometry `meta`. Lines that are empty or start with `#` are skipped.
pub fn parse_cells(
    meta: &ArrayMeta,
    text: &str,
    delimiter: char,
) -> Result<Vec<(Vec<usize>, f64)>, ParseError> {
    let rank = meta.rank();
    let mut cells = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(delimiter).map(str::trim).collect();
        if fields.len() != rank + 1 {
            return Err(ParseError {
                line: line_no,
                message: format!(
                    "expected {} coordinates + 1 value, found {} fields",
                    rank,
                    fields.len()
                ),
            });
        }
        let mut coords = Vec::with_capacity(rank);
        for (d, field) in fields[..rank].iter().enumerate() {
            let c: usize = field.parse().map_err(|e| ParseError {
                line: line_no,
                message: format!("bad coordinate in dimension {d}: {e}"),
            })?;
            if c >= meta.dims()[d] {
                return Err(ParseError {
                    line: line_no,
                    message: format!(
                        "coordinate {c} out of bounds for dimension {d} (size {})",
                        meta.dims()[d]
                    ),
                });
            }
            coords.push(c);
        }
        let value: f64 = fields[rank].parse().map_err(|e| ParseError {
            line: line_no,
            message: format!("bad value: {e}"),
        })?;
        cells.push((coords, value));
    }
    Ok(cells)
}

/// Ingests delimited text through the full distributed pipeline
/// (ChunkID keying → shuffle grouping → chunk assembly).
pub fn array_from_text(
    ctx: &SpangleContext,
    meta: ArrayMeta,
    policy: ChunkPolicy,
    text: &str,
    delimiter: char,
    num_partitions: usize,
) -> Result<ArrayRdd<f64>, ParseError> {
    let cells = parse_cells(&meta, text, delimiter)?;
    Ok(ArrayRdd::from_cells(
        ctx,
        meta,
        policy,
        cells,
        num_partitions,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spangle_core::aggregate::builtin::Sum;

    fn meta() -> ArrayMeta {
        ArrayMeta::new(vec![8, 8], vec![4, 4])
    }

    #[test]
    fn parses_comments_blanks_and_cells() {
        let text = "# a comment\n\n0,0,1.5\n7, 7, -2.0\n 3,4 , 0.25\n";
        let cells = parse_cells(&meta(), text, ',').unwrap();
        assert_eq!(
            cells,
            vec![(vec![0, 0], 1.5), (vec![7, 7], -2.0), (vec![3, 4], 0.25),]
        );
    }

    #[test]
    fn rejects_wrong_arity() {
        let err = parse_cells(&meta(), "1,2\n", ',').unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("expected 2 coordinates"));
    }

    #[test]
    fn rejects_out_of_bounds_and_bad_numbers() {
        let err = parse_cells(&meta(), "9,0,1.0\n", ',').unwrap_err();
        assert!(err.message.contains("out of bounds"));
        let err = parse_cells(&meta(), "0,0,abc\n", ',').unwrap_err();
        assert!(err.message.contains("bad value"));
        let err = parse_cells(&meta(), "0,x,1.0\n", ',').unwrap_err();
        assert!(err.message.contains("bad coordinate"));
    }

    #[test]
    fn text_ingest_builds_a_queryable_array() {
        let ctx = SpangleContext::new(2);
        let text = "0,0,1.0\n1,1,2.0\n6,7,3.0\n";
        let arr = array_from_text(&ctx, meta(), ChunkPolicy::default(), text, ',', 2).unwrap();
        assert_eq!(arr.count_valid().unwrap(), 3);
        assert_eq!(arr.aggregate(Sum), Some(6.0));
        assert_eq!(arr.get(&[6, 7]).unwrap(), Some(3.0));
        assert_eq!(arr.get(&[5, 5]).unwrap(), None);
    }

    #[test]
    fn error_lines_are_reported_one_based() {
        let text = "0,0,1.0\n0,0,oops\n";
        let err = parse_cells(&meta(), text, ',').unwrap_err();
        assert_eq!(err.line, 2);
    }
}
