//! The Table I benchmark queries and the systems that answer them.
//!
//! Every system implements [`RasterSystem`]: the five SS-DB-derived
//! queries of Table I against identical data. The implementations differ
//! exactly where the paper says the real systems differ:
//!
//! * [`SpangleRaster`] — sparse bitmask chunks, chunk pruning by ID in
//!   Subarray, lazy pipelines;
//! * [`DenseRaster`] — SciSpark-like: every chunk dense, no chunk pruning
//!   (full scans with per-cell range tests);
//! * [`TileRaster`] — RasterFrames-like: dense 2-D tiles built *on the
//!   driver* and parallelised, with tile bounding-box pruning.

use spangle_core::aggregate::builtin::{Avg, Count};
use spangle_core::{ArrayBuilder, ArrayMeta, ArrayRdd, ChunkPolicy, Mapper};
use spangle_dataflow::{cancellation_point, MemSize, Rdd, SpangleContext};

/// An axis-aligned query box `[lo, hi)` over all array dimensions.
#[derive(Clone, Debug)]
pub struct QueryRange {
    /// Inclusive lower corner.
    pub lo: Vec<usize>,
    /// Exclusive upper corner.
    pub hi: Vec<usize>,
}

impl QueryRange {
    /// A box over the full array.
    pub fn full(meta: &ArrayMeta) -> Self {
        QueryRange {
            lo: vec![0; meta.rank()],
            hi: meta.dims().to_vec(),
        }
    }
}

/// The five Table I queries. All counts/averages are over *valid* cells.
pub trait RasterSystem {
    /// System label, as printed in the Fig. 7 harness.
    fn name(&self) -> &'static str;

    /// Q1 (aggregation): average value of cells in a range.
    fn q1_avg(&self, range: &QueryRange) -> Option<f64>;

    /// Q2 (regridding): mean over aligned `k × k` spatial blocks of the
    /// range; returns `(blocks produced, sum of block means)` so systems
    /// can be cross-checked.
    fn q2_regrid(&self, range: &QueryRange, k: usize) -> (usize, f64);

    /// Q3 (conditional aggregation): average of in-range cells above a
    /// threshold.
    fn q3_cond_avg(&self, range: &QueryRange, threshold: f64) -> Option<f64>;

    /// Q4 (polygons/filter): number of in-range cells with values in
    /// `[vlo, vhi)`.
    fn q4_filter_count(&self, range: &QueryRange, vlo: f64, vhi: f64) -> usize;

    /// Q5 (density): number of `cell × cell` spatial groups (over the
    /// first two dimensions) holding more than `min_count` observations.
    fn q5_density(&self, range: &QueryRange, cell: usize, min_count: usize) -> usize;

    /// Resident bytes of the ingested data.
    fn mem_bytes(&self) -> usize;
}

// --------------------------------------------------------------------
// Spangle
// --------------------------------------------------------------------

/// Spangle's own pipeline: sparse chunks, Subarray pruning, Aggregator.
pub struct SpangleRaster {
    arr: ArrayRdd<f64>,
}

impl SpangleRaster {
    /// Ingests `f` over `meta` with the default (sparse-aware) policy.
    pub fn ingest(
        ctx: &SpangleContext,
        meta: ArrayMeta,
        f: impl Fn(&[usize]) -> Option<f64> + Send + Sync + 'static,
    ) -> Self {
        let arr = ArrayBuilder::new(ctx, meta).ingest(f).build();
        arr.persist();
        arr.num_chunks().expect("ingest failed");
        SpangleRaster { arr }
    }

    /// The ingested array (for composing with other operators).
    pub fn array(&self) -> &ArrayRdd<f64> {
        &self.arr
    }
}

impl RasterSystem for SpangleRaster {
    fn name(&self) -> &'static str {
        "spangle"
    }

    fn q1_avg(&self, range: &QueryRange) -> Option<f64> {
        self.arr.subarray(&range.lo, &range.hi).aggregate(Avg)
    }

    fn q2_regrid(&self, range: &QueryRange, k: usize) -> (usize, f64) {
        let sub = self.arr.subarray(&range.lo, &range.hi);
        let groups = sub
            .aggregate_by(move |c| ((c[0] / k) as u64, (c[1] / k) as u64), Avg)
            .expect("q2 failed");
        let count = groups.len();
        let sum = groups.iter().map(|(_, m)| m).sum();
        (count, sum)
    }

    fn q3_cond_avg(&self, range: &QueryRange, threshold: f64) -> Option<f64> {
        self.arr
            .subarray(&range.lo, &range.hi)
            .filter(move |v| v > threshold)
            .aggregate(Avg)
    }

    fn q4_filter_count(&self, range: &QueryRange, vlo: f64, vhi: f64) -> usize {
        self.arr
            .subarray(&range.lo, &range.hi)
            .filter(move |v| v >= vlo && v < vhi)
            .count_valid()
            .expect("q4 failed")
    }

    fn q5_density(&self, range: &QueryRange, cell: usize, min_count: usize) -> usize {
        self.arr
            .subarray(&range.lo, &range.hi)
            .aggregate_by(move |c| ((c[0] / cell) as u64, (c[1] / cell) as u64), Count)
            .expect("q5 failed")
            .into_iter()
            .filter(|(_, n)| *n > min_count)
            .count()
    }

    fn mem_bytes(&self) -> usize {
        self.arr.mem_bytes().expect("size probe failed")
    }
}

// --------------------------------------------------------------------
// SciSpark-like dense engine
// --------------------------------------------------------------------

/// SciSpark-like comparator: loads everything dense ("SciSpark manages
/// data as dense, which requires more memory") and answers every query by
/// a full scan with per-cell range tests — it has no chunk-ID pruning.
pub struct DenseRaster {
    arr: ArrayRdd<f64>,
}

impl DenseRaster {
    /// Ingests `f` with the always-dense policy.
    pub fn ingest(
        ctx: &SpangleContext,
        meta: ArrayMeta,
        f: impl Fn(&[usize]) -> Option<f64> + Send + Sync + 'static,
    ) -> Self {
        let arr = ArrayBuilder::new(ctx, meta)
            .policy(ChunkPolicy::always_dense())
            .ingest(f)
            .build();
        arr.persist();
        arr.num_chunks().expect("ingest failed");
        DenseRaster { arr }
    }

    /// Full scan folding every valid in-range cell.
    fn scan<A: Clone + Send + Sync + 'static>(
        &self,
        range: &QueryRange,
        zero: A,
        fold: impl Fn(&mut A, &[usize], f64) + Send + Sync + 'static,
        merge: impl Fn(A, A) -> A,
    ) -> A {
        let meta = self.arr.meta_arc();
        let lo = range.lo.clone();
        let hi = range.hi.clone();
        let zero_task = zero.clone();
        let partials = self
            .arr
            .rdd()
            .run_partitions(move |_, chunks| {
                let mapper = meta.mapper();
                let mut acc = zero_task.clone();
                let mut coords = vec![0usize; lo.len()];
                for (id, chunk) in chunks {
                    // One poll per chunk: a cancelled scan stops at the
                    // next chunk boundary instead of finishing the sweep.
                    cancellation_point();
                    let origin = mapper.chunk_origin(*id);
                    let extent = mapper.chunk_extent(*id);
                    for (local, v) in chunk.iter_valid() {
                        Mapper::unravel(&origin, &extent, local, &mut coords);
                        if Mapper::in_range(&coords, &lo, &hi) {
                            fold(&mut acc, &coords, v);
                        }
                    }
                }
                acc
            })
            .expect("dense scan failed");
        partials.into_iter().fold(zero, merge)
    }
}

impl RasterSystem for DenseRaster {
    fn name(&self) -> &'static str {
        "scispark-dense"
    }

    fn q1_avg(&self, range: &QueryRange) -> Option<f64> {
        let (sum, n) = self.scan(
            range,
            (0.0f64, 0usize),
            |acc, _, v| {
                acc.0 += v;
                acc.1 += 1;
            },
            |a, b| (a.0 + b.0, a.1 + b.1),
        );
        (n > 0).then(|| sum / n as f64)
    }

    fn q2_regrid(&self, range: &QueryRange, k: usize) -> (usize, f64) {
        let groups = self.scan(
            range,
            std::collections::HashMap::<(u64, u64), (f64, usize)>::new(),
            move |acc, coords, v| {
                let key = ((coords[0] / k) as u64, (coords[1] / k) as u64);
                let e = acc.entry(key).or_insert((0.0, 0));
                e.0 += v;
                e.1 += 1;
            },
            |mut a, b| {
                for (k, (s, n)) in b {
                    let e = a.entry(k).or_insert((0.0, 0));
                    e.0 += s;
                    e.1 += n;
                }
                a
            },
        );
        let count = groups.len();
        let sum = groups.values().map(|(s, n)| s / *n as f64).sum();
        (count, sum)
    }

    fn q3_cond_avg(&self, range: &QueryRange, threshold: f64) -> Option<f64> {
        let (sum, n) = self.scan(
            range,
            (0.0f64, 0usize),
            move |acc, _, v| {
                if v > threshold {
                    acc.0 += v;
                    acc.1 += 1;
                }
            },
            |a, b| (a.0 + b.0, a.1 + b.1),
        );
        (n > 0).then(|| sum / n as f64)
    }

    fn q4_filter_count(&self, range: &QueryRange, vlo: f64, vhi: f64) -> usize {
        self.scan(
            range,
            0usize,
            move |acc, _, v| {
                if v >= vlo && v < vhi {
                    *acc += 1;
                }
            },
            |a, b| a + b,
        )
    }

    fn q5_density(&self, range: &QueryRange, cell: usize, min_count: usize) -> usize {
        let groups = self.scan(
            range,
            std::collections::HashMap::<(u64, u64), usize>::new(),
            move |acc, coords, _| {
                *acc.entry(((coords[0] / cell) as u64, (coords[1] / cell) as u64))
                    .or_insert(0) += 1;
            },
            |mut a, b| {
                for (k, n) in b {
                    *a.entry(k).or_insert(0) += n;
                }
                a
            },
        );
        groups.values().filter(|n| **n > min_count).count()
    }

    fn mem_bytes(&self) -> usize {
        self.arr.mem_bytes().expect("size probe failed")
    }
}

// --------------------------------------------------------------------
// RasterFrames-like tile store
// --------------------------------------------------------------------

/// One dense 2-D tile of a single z-slice (image/time step).
#[derive(Clone, Debug)]
pub struct Tile {
    /// Global origin `[x, y, z]`.
    pub origin: Vec<usize>,
    /// Extent `[w, h]` (z extent is always 1).
    pub extent: Vec<usize>,
    /// Dense values, x-fastest; `None` encoded as NaN (RasterFrames'
    /// nodata convention).
    pub data: Vec<f64>,
}

impl MemSize for Tile {
    fn mem_size(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.data.len() * 8
            + (self.origin.len() + self.extent.len()) * std::mem::size_of::<usize>()
    }

    fn spillable() -> bool {
        true
    }

    fn spill_encode(&self, out: &mut Vec<u8>) {
        self.origin.spill_encode(out);
        self.extent.spill_encode(out);
        self.data.spill_encode(out);
    }

    fn spill_decode(input: &mut spangle_dataflow::SpillCursor<'_>) -> Option<Self> {
        Some(Tile {
            origin: Vec::spill_decode(input)?,
            extent: Vec::spill_decode(input)?,
            data: Vec::spill_decode(input)?,
        })
    }
}

/// RasterFrames-like comparator: dense tiles with nodata sentinels, built
/// on the driver ("it reads them in the master node and spread them to
/// workers") and pruned by bounding box.
pub struct TileRaster {
    meta: ArrayMeta,
    tiles: Rdd<(u64, Tile)>,
}

impl TileRaster {
    /// The ingested geometry.
    pub fn meta(&self) -> &ArrayMeta {
        &self.meta
    }
}

impl TileRaster {
    /// Ingests `f` on the driver into `tile × tile` tiles per z-slice,
    /// then parallelises.
    pub fn ingest(
        ctx: &SpangleContext,
        meta: ArrayMeta,
        tile: usize,
        f: impl Fn(&[usize]) -> Option<f64>,
    ) -> Self {
        assert_eq!(meta.rank(), 3, "tile stores hold [x, y, z] rasters");
        let dims = meta.dims();
        let mut tiles = Vec::new();
        let mut id = 0u64;
        for z in 0..dims[2] {
            for ty in (0..dims[1]).step_by(tile) {
                for tx in (0..dims[0]).step_by(tile) {
                    let w = tile.min(dims[0] - tx);
                    let h = tile.min(dims[1] - ty);
                    let mut data = vec![f64::NAN; w * h];
                    for dy in 0..h {
                        for dx in 0..w {
                            if let Some(v) = f(&[tx + dx, ty + dy, z]) {
                                data[dx + dy * w] = v;
                            }
                        }
                    }
                    tiles.push((
                        id,
                        Tile {
                            origin: vec![tx, ty, z],
                            extent: vec![w, h],
                            data,
                        },
                    ));
                    id += 1;
                }
            }
        }
        let tiles = ctx.parallelize(tiles, ctx.num_executors() * 2);
        tiles.persist();
        tiles.count().expect("tile ingest failed");
        TileRaster { meta, tiles }
    }

    fn scan<A: Clone + Send + Sync + 'static>(
        &self,
        range: &QueryRange,
        zero: A,
        fold: impl Fn(&mut A, &[usize], f64) + Send + Sync + 'static,
        merge: impl Fn(A, A) -> A,
    ) -> A {
        let lo = range.lo.clone();
        let hi = range.hi.clone();
        let zero_task = zero.clone();
        let partials = self
            .tiles
            .run_partitions(move |_, tiles| {
                let mut acc = zero_task.clone();
                for (_, t) in tiles {
                    cancellation_point();
                    // Bounding-box pruning.
                    let z = t.origin[2];
                    if z < lo[2]
                        || z >= hi[2]
                        || t.origin[0] + t.extent[0] <= lo[0]
                        || t.origin[0] >= hi[0]
                        || t.origin[1] + t.extent[1] <= lo[1]
                        || t.origin[1] >= hi[1]
                    {
                        continue;
                    }
                    let (w, h) = (t.extent[0], t.extent[1]);
                    for dy in 0..h {
                        let y = t.origin[1] + dy;
                        if y < lo[1] || y >= hi[1] {
                            continue;
                        }
                        for dx in 0..w {
                            let x = t.origin[0] + dx;
                            if x < lo[0] || x >= hi[0] {
                                continue;
                            }
                            let v = t.data[dx + dy * w];
                            if !v.is_nan() {
                                fold(&mut acc, &[x, y, z], v);
                            }
                        }
                    }
                }
                acc
            })
            .expect("tile scan failed");
        partials.into_iter().fold(zero, merge)
    }
}

impl RasterSystem for TileRaster {
    fn name(&self) -> &'static str {
        "rasterframes-tiles"
    }

    fn q1_avg(&self, range: &QueryRange) -> Option<f64> {
        let (sum, n) = self.scan(
            range,
            (0.0f64, 0usize),
            |acc, _, v| {
                acc.0 += v;
                acc.1 += 1;
            },
            |a, b| (a.0 + b.0, a.1 + b.1),
        );
        (n > 0).then(|| sum / n as f64)
    }

    fn q2_regrid(&self, range: &QueryRange, k: usize) -> (usize, f64) {
        let groups = self.scan(
            range,
            std::collections::HashMap::<(u64, u64), (f64, usize)>::new(),
            move |acc, coords, v| {
                let e = acc
                    .entry(((coords[0] / k) as u64, (coords[1] / k) as u64))
                    .or_insert((0.0, 0));
                e.0 += v;
                e.1 += 1;
            },
            |mut a, b| {
                for (k, (s, n)) in b {
                    let e = a.entry(k).or_insert((0.0, 0));
                    e.0 += s;
                    e.1 += n;
                }
                a
            },
        );
        (
            groups.len(),
            groups.values().map(|(s, n)| s / *n as f64).sum(),
        )
    }

    fn q3_cond_avg(&self, range: &QueryRange, threshold: f64) -> Option<f64> {
        let (sum, n) = self.scan(
            range,
            (0.0f64, 0usize),
            move |acc, _, v| {
                if v > threshold {
                    acc.0 += v;
                    acc.1 += 1;
                }
            },
            |a, b| (a.0 + b.0, a.1 + b.1),
        );
        (n > 0).then(|| sum / n as f64)
    }

    fn q4_filter_count(&self, range: &QueryRange, vlo: f64, vhi: f64) -> usize {
        self.scan(
            range,
            0usize,
            move |acc, _, v| {
                if v >= vlo && v < vhi {
                    *acc += 1;
                }
            },
            |a, b| a + b,
        )
    }

    fn q5_density(&self, range: &QueryRange, cell: usize, min_count: usize) -> usize {
        let groups = self.scan(
            range,
            std::collections::HashMap::<(u64, u64), usize>::new(),
            move |acc, coords, _| {
                *acc.entry(((coords[0] / cell) as u64, (coords[1] / cell) as u64))
                    .or_insert(0) += 1;
            },
            |mut a, b| {
                for (k, n) in b {
                    *a.entry(k).or_insert(0) += n;
                }
                a
            },
        );
        groups.values().filter(|n| **n > min_count).count()
    }

    fn mem_bytes(&self) -> usize {
        self.tiles
            .aggregate(0usize, |acc, (_, t)| acc + t.mem_size(), |a, b| a + b)
            .expect("size probe failed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{ChlConfig, SdssConfig};
    use spangle_core::ArrayMeta;

    fn small_chl() -> ChlConfig {
        ChlConfig {
            lon: 96,
            lat: 64,
            time: 3,
            land_cell: 16,
            ..ChlConfig::default()
        }
    }

    fn systems(ctx: &SpangleContext, cfg: ChlConfig) -> (SpangleRaster, DenseRaster, TileRaster) {
        let meta = ArrayMeta::new(cfg.dims(), vec![32, 32, 1]);
        let spangle = SpangleRaster::ingest(ctx, meta.clone(), cfg.value_fn());
        let dense = DenseRaster::ingest(ctx, meta.clone(), cfg.value_fn());
        let tiles = TileRaster::ingest(ctx, meta, 32, cfg.value_fn());
        (spangle, dense, tiles)
    }

    #[test]
    fn all_systems_agree_on_every_query() {
        let ctx = SpangleContext::new(4);
        let cfg = small_chl();
        let (spangle, dense, tiles) = systems(&ctx, cfg);
        let all: Vec<&dyn RasterSystem> = vec![&spangle, &dense, &tiles];
        let range = QueryRange {
            lo: vec![8, 8, 0],
            hi: vec![80, 56, 2],
        };
        let q1: Vec<Option<f64>> = all.iter().map(|s| s.q1_avg(&range)).collect();
        let q2: Vec<(usize, f64)> = all.iter().map(|s| s.q2_regrid(&range, 8)).collect();
        let q3: Vec<Option<f64>> = all.iter().map(|s| s.q3_cond_avg(&range, 0.3)).collect();
        let q4: Vec<usize> = all
            .iter()
            .map(|s| s.q4_filter_count(&range, 0.1, 0.6))
            .collect();
        let q5: Vec<usize> = all.iter().map(|s| s.q5_density(&range, 16, 180)).collect();

        for i in 1..all.len() {
            let name = all[i].name();
            assert!(
                (q1[i].unwrap() - q1[0].unwrap()).abs() < 1e-9,
                "q1 {name}: {:?} vs {:?}",
                q1[i],
                q1[0]
            );
            assert_eq!(q2[i].0, q2[0].0, "q2 count {name}");
            assert!((q2[i].1 - q2[0].1).abs() < 1e-6, "q2 sum {name}");
            assert!((q3[i].unwrap() - q3[0].unwrap()).abs() < 1e-9, "q3 {name}");
            assert_eq!(q4[i], q4[0], "q4 {name}");
            assert_eq!(q5[i], q5[0], "q5 {name}");
        }
        // Sanity: queries returned something non-trivial.
        assert!(q4[0] > 0, "q4 found cells");
        assert!(q5[0] > 0, "q5 found dense groups");
    }

    #[test]
    fn sparse_spangle_uses_less_memory_than_dense_systems() {
        let ctx = SpangleContext::new(4);
        let cfg = SdssConfig {
            width: 128,
            height: 128,
            images: 4,
            ..SdssConfig::default()
        };
        let meta = ArrayMeta::new(cfg.dims(), vec![32, 32, 1]);
        let spangle = SpangleRaster::ingest(&ctx, meta.clone(), cfg.band_fn(2));
        let dense = DenseRaster::ingest(&ctx, meta.clone(), cfg.band_fn(2));
        let tiles = TileRaster::ingest(&ctx, meta, 32, cfg.band_fn(2));
        let (s, d, t) = (spangle.mem_bytes(), dense.mem_bytes(), tiles.mem_bytes());
        assert!(s * 2 < d, "sparse chunks beat dense chunks: {s} vs {d}");
        assert!(s * 2 < t, "sparse chunks beat dense tiles: {s} vs {t}");
    }

    #[test]
    fn subarray_pruning_reads_fewer_chunks_than_full_scans() {
        let ctx = SpangleContext::new(4);
        let cfg = small_chl();
        let meta = ArrayMeta::new(cfg.dims(), vec![32, 32, 1]);
        let spangle = SpangleRaster::ingest(&ctx, meta.clone(), cfg.value_fn());
        let dense = DenseRaster::ingest(&ctx, meta, cfg.value_fn());
        let range = QueryRange {
            lo: vec![0, 0, 0],
            hi: vec![32, 32, 1],
        };
        // Spangle prunes to 1 chunk; the dense engine still iterates all
        // its chunks' cells. The observable proxy: both give the same
        // answer but Spangle's subarray materialises a single chunk.
        let sub = spangle.array().subarray(&range.lo, &range.hi);
        assert_eq!(sub.num_chunks().unwrap(), 1);
        assert!((spangle.q1_avg(&range).unwrap() - dense.q1_avg(&range).unwrap()).abs() < 1e-9);
    }
}
