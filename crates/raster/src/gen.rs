//! Deterministic synthetic raster generators (stand-ins for SDSS and
//! SeaWiFS CHL, see DESIGN.md §1).
//!
//! Both generators are *pure functions of coordinates*: `f(coords) ->
//! Option<f64>`. That makes them usable as ArrayRDD ingest lineage, lets
//! every comparison system hold bit-identical data, and keeps failure
//! recovery deterministic.

/// Split-mix hash used by all generators.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[inline]
fn unit(h: u64) -> f64 {
    (h % (1 << 24)) as f64 / (1 << 24) as f64
}

/// SDSS-like astronomy frames: mostly-null images with clustered point
/// sources (stars/galaxies), five bands (*u g r i z*) per frame.
///
/// The array geometry is `[width, height, images]` per band. A source
/// lives in a `cell × cell` neighbourhood with a hashed centre and radius;
/// pixel values follow a Gaussian falloff from the centre, scaled by a
/// per-band gain so bands are correlated but distinct.
#[derive(Clone, Copy, Debug)]
pub struct SdssConfig {
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Number of frames (the time/image dimension).
    pub images: usize,
    /// Source-neighbourhood size in pixels.
    pub cell: usize,
    /// Per-mille probability that a neighbourhood contains a source.
    pub source_per_mille: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SdssConfig {
    fn default() -> Self {
        SdssConfig {
            width: 512,
            height: 384,
            images: 16,
            cell: 16,
            source_per_mille: 400,
            seed: 0x5D55,
        }
    }
}

impl SdssConfig {
    /// Array dimensions `[width, height, images]`.
    pub fn dims(&self) -> Vec<usize> {
        vec![self.width, self.height, self.images]
    }

    /// Pixel value of `band` at `(x, y)` of frame `img`, or `None` for
    /// background (null).
    pub fn value(&self, band: usize, x: usize, y: usize, img: usize) -> Option<f64> {
        let (cx, cy) = (x / self.cell, y / self.cell);
        let h = mix(self.seed ^ mix((img as u64) << 40 ^ (cx as u64) << 20 ^ cy as u64));
        if h % 1000 >= self.source_per_mille {
            return None;
        }
        // Source centre and radius within the neighbourhood.
        let sx = (cx * self.cell) as f64 + unit(mix(h ^ 1)) * self.cell as f64;
        let sy = (cy * self.cell) as f64 + unit(mix(h ^ 2)) * self.cell as f64;
        let radius = 1.5 + unit(mix(h ^ 3)) * (self.cell as f64 / 3.0);
        let d2 = (x as f64 - sx).powi(2) + (y as f64 - sy).powi(2);
        if d2 > radius * radius {
            return None;
        }
        let amplitude = 50.0 + unit(mix(h ^ 4)) * 5000.0;
        let band_gain = 0.6 + 0.2 * band as f64;
        let sigma2 = (radius / 2.0).powi(2).max(0.5);
        Some(amplitude * band_gain * (-d2 / (2.0 * sigma2)).exp())
    }

    /// The ingest closure for `band`, over `[x, y, img]` coordinates.
    pub fn band_fn(
        &self,
        band: usize,
    ) -> impl Fn(&[usize]) -> Option<f64> + Send + Sync + Clone + 'static {
        let cfg = *self;
        move |c: &[usize]| cfg.value(band, c[0], c[1], c[2])
    }
}

/// SeaWiFS-CHL-like chlorophyll grid: `[longitude, latitude, time]`, one
/// attribute. Land and per-timestep cloud patches are null; ocean values
/// are lognormal-ish with a latitude trend.
#[derive(Clone, Copy, Debug)]
pub struct ChlConfig {
    /// Longitude cells.
    pub lon: usize,
    /// Latitude cells.
    pub lat: usize,
    /// Time steps (8-day composites in the real data).
    pub time: usize,
    /// Coarse landmass cell size.
    pub land_cell: usize,
    /// Per-mille probability that a coarse cell is land.
    pub land_per_mille: u64,
    /// Per-mille probability that a coarse cell is cloud-covered in a
    /// given time step.
    pub cloud_per_mille: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChlConfig {
    fn default() -> Self {
        ChlConfig {
            lon: 1024,
            lat: 512,
            time: 8,
            land_cell: 32,
            land_per_mille: 300,
            cloud_per_mille: 150,
            seed: 0xC417,
        }
    }
}

impl ChlConfig {
    /// Array dimensions `[lon, lat, time]`.
    pub fn dims(&self) -> Vec<usize> {
        vec![self.lon, self.lat, self.time]
    }

    /// Chlorophyll at `(lon, lat, t)`, or `None` over land/cloud.
    pub fn value(&self, lon: usize, lat: usize, t: usize) -> Option<f64> {
        let (cx, cy) = (lon / self.land_cell, lat / self.land_cell);
        let land = mix(self.seed ^ mix(((cx as u64) << 24) ^ cy as u64));
        if land % 1000 < self.land_per_mille {
            return None; // land
        }
        let cloud = mix(self.seed ^ mix(((cx as u64) << 40) ^ ((cy as u64) << 16) ^ t as u64));
        if cloud % 1000 < self.cloud_per_mille {
            return None; // cloud cover this composite
        }
        // Chlorophyll is higher near the coasts and poles; approximate
        // with a latitude trend plus hashed lognormal noise.
        let lat_frac = lat as f64 / self.lat as f64;
        let trend = 0.05 + 0.8 * (lat_frac - 0.5).abs();
        let noise = unit(mix(self.seed
            ^ ((lon as u64) << 32)
            ^ ((lat as u64) << 8)
            ^ t as u64));
        Some(trend * (0.2 + 3.0 * noise * noise))
    }

    /// The ingest closure over `[lon, lat, t]` coordinates.
    pub fn value_fn(&self) -> impl Fn(&[usize]) -> Option<f64> + Send + Sync + Clone + 'static {
        let cfg = *self;
        move |c: &[usize]| cfg.value(c[0], c[1], c[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sdss_is_deterministic_and_sparse() {
        let cfg = SdssConfig::default();
        let mut valid = 0usize;
        let total = 200 * 200;
        for x in 0..200 {
            for y in 0..200 {
                let a = cfg.value(2, x, y, 0);
                assert_eq!(a, cfg.value(2, x, y, 0), "deterministic");
                if a.is_some() {
                    valid += 1;
                }
            }
        }
        let density = valid as f64 / total as f64;
        assert!(
            (0.001..0.4).contains(&density),
            "astronomy frames are sparse: density {density}"
        );
    }

    #[test]
    fn sdss_bands_are_correlated_but_distinct() {
        let cfg = SdssConfig::default();
        let mut same_support = true;
        let mut identical_values = true;
        for x in 0..100 {
            for y in 0..100 {
                let u = cfg.value(0, x, y, 1);
                let g = cfg.value(1, x, y, 1);
                if u.is_some() != g.is_some() {
                    same_support = false;
                }
                if let (Some(a), Some(b)) = (u, g) {
                    if (a - b).abs() > 1e-12 {
                        identical_values = false;
                    }
                }
            }
        }
        assert!(same_support, "bands observe the same sources");
        assert!(!identical_values, "bands have distinct gains");
    }

    #[test]
    fn chl_has_persistent_land_and_transient_clouds() {
        let cfg = ChlConfig::default();
        let mut land_cells = 0;
        let mut checked = 0;
        for lon in (0..cfg.lon).step_by(64) {
            for lat in (0..cfg.lat).step_by(64) {
                checked += 1;
                // Land is invalid at every time step; clouds move.
                let all_null = (0..cfg.time).all(|t| cfg.value(lon, lat, t).is_none());
                if all_null {
                    land_cells += 1;
                }
            }
        }
        assert!(land_cells > 0, "some land exists");
        assert!(land_cells < checked, "some ocean exists");
    }

    #[test]
    fn chl_values_are_positive() {
        let cfg = ChlConfig::default();
        for lon in (0..cfg.lon).step_by(37) {
            for lat in (0..cfg.lat).step_by(23) {
                if let Some(v) = cfg.value(lon, lat, 3) {
                    assert!(v > 0.0, "chlorophyll concentrations are positive");
                }
            }
        }
    }
}
