#![warn(missing_docs)]

//! Synthetic raster datasets and the SS-DB-derived benchmark queries of
//! Table I (paper §VII-B).
//!
//! * [`gen`] — deterministic cell-value functions mimicking the paper's
//!   two datasets: SDSS-like multi-band astronomy frames (sparse point
//!   sources over a null background) and SeaWiFS-CHL-like chlorophyll
//!   grids (land/cloud null regions, lognormal values). Every system under
//!   comparison ingests the *same function*, so all hold identical data.
//! * [`systems`] — the [`systems::RasterSystem`] trait (the five queries
//!   of Table I) and its implementations: Spangle (sparse chunks, chunk
//!   pruning, overlap), a SciSpark-like dense engine (dense chunks, full
//!   scans), and a RasterFrames-like tile store (driver-side ingest, dense
//!   tiles with bounding-box pruning).

pub mod gen;
pub mod ingest;
pub mod systems;

pub use gen::{ChlConfig, SdssConfig};
pub use ingest::{array_from_text, parse_cells, ParseError};
pub use systems::{DenseRaster, QueryRange, RasterSystem, SpangleRaster, TileRaster};
