//! Cross-format equivalence: all block formats and the Spangle matrix
//! compute the same linear algebra on random inputs.

use spangle_baselines::{BlockMatrix, CooBlock, CscBlock, DenseBlock};
use spangle_core::ChunkPolicy;
use spangle_dataflow::SpangleContext;
use spangle_linalg::{DenseVector, DistMatrix};

fn entry(seed: u64) -> impl Fn(usize, usize) -> Option<f64> + Send + Sync + Clone + 'static {
    move |r, c| {
        let h = (r as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((c as u64).wrapping_mul(0xD1B54A32D192ED03))
            .wrapping_add(seed.wrapping_mul(0x2545F4914F6CDD1D))
            >> 31;
        h.is_multiple_of(4).then_some((h % 19) as f64 - 9.0)
    }
}

#[test]
fn every_format_computes_the_same_matvec() {
    spangle_testkit::run_cases(0xBA5E_0001, 10, |rng| {
        let rows = rng.usize_in(1..40);
        let cols = rng.usize_in(1..40);
        let seed = rng.u64_in(0..100);
        let ctx = SpangleContext::new(2);
        let f = entry(seed);
        let x: Vec<f64> = (0..cols).map(|i| (i % 7) as f64 - 3.0).collect();

        let spangle =
            DistMatrix::generate(&ctx, rows, cols, (8, 8), ChunkPolicy::default(), f.clone());
        let reference = spangle.matvec(&DenseVector::column(x.clone())).unwrap();

        let coo = BlockMatrix::<CooBlock>::generate(&ctx, rows, cols, (8, 8), f.clone());
        let csc = BlockMatrix::<CscBlock>::generate(&ctx, rows, cols, (8, 8), f.clone());
        let dense = BlockMatrix::<DenseBlock>::generate(&ctx, rows, cols, (8, 8), f.clone());
        for (name, got) in [
            ("coo", coo.matvec(&x).unwrap()),
            ("csc", csc.matvec(&x).unwrap()),
            ("dense", dense.matvec(&x).unwrap()),
        ] {
            for (i, (a, b)) in got.iter().zip(reference.as_slice()).enumerate() {
                assert!((a - b).abs() < 1e-9, "{} row {}: {} vs {}", name, i, a, b);
            }
        }
    });
}

#[test]
fn every_format_computes_the_same_gram() {
    spangle_testkit::run_cases(0xBA5E_0002, 10, |rng| {
        let rows = rng.usize_in(1..24);
        let cols = rng.usize_in(1..16);
        let seed = rng.u64_in(0..100);
        let ctx = SpangleContext::new(2);
        let f = entry(seed);
        let spangle =
            DistMatrix::generate(&ctx, rows, cols, (4, 4), ChunkPolicy::default(), f.clone());
        let reference = spangle.gram().to_local().unwrap();

        let coo = BlockMatrix::<CooBlock>::generate(&ctx, rows, cols, (4, 4), f.clone());
        let csc = BlockMatrix::<CscBlock>::generate(&ctx, rows, cols, (4, 4), f.clone());
        for (name, got) in [
            ("coo", coo.gram().to_local().unwrap()),
            ("csc", csc.gram().to_local().unwrap()),
        ] {
            assert_eq!(got.len(), reference.len());
            for (i, (a, b)) in got.iter().zip(&reference).enumerate() {
                assert!((a - b).abs() < 1e-9, "{} index {}: {} vs {}", name, i, a, b);
            }
        }
    });
}
