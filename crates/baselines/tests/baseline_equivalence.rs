//! Cross-format equivalence: all block formats and the Spangle matrix
//! compute the same linear algebra on random inputs.

use proptest::prelude::*;
use spangle_baselines::{BlockMatrix, CooBlock, CscBlock, DenseBlock};
use spangle_core::ChunkPolicy;
use spangle_dataflow::SpangleContext;
use spangle_linalg::{DenseVector, DistMatrix};

fn entry(seed: u64) -> impl Fn(usize, usize) -> Option<f64> + Send + Sync + Clone + 'static {
    move |r, c| {
        let h = (r as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((c as u64).wrapping_mul(0xD1B54A32D192ED03))
            .wrapping_add(seed.wrapping_mul(0x2545F4914F6CDD1D))
            >> 31;
        (h % 4 == 0).then(|| (h % 19) as f64 - 9.0)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn every_format_computes_the_same_matvec(
        rows in 1usize..40,
        cols in 1usize..40,
        seed in 0u64..100,
    ) {
        let ctx = SpangleContext::new(2);
        let f = entry(seed);
        let x: Vec<f64> = (0..cols).map(|i| (i % 7) as f64 - 3.0).collect();

        let spangle = DistMatrix::generate(&ctx, rows, cols, (8, 8), ChunkPolicy::default(), f.clone());
        let reference = spangle.matvec(&DenseVector::column(x.clone())).unwrap();

        let coo = BlockMatrix::<CooBlock>::generate(&ctx, rows, cols, (8, 8), f.clone());
        let csc = BlockMatrix::<CscBlock>::generate(&ctx, rows, cols, (8, 8), f.clone());
        let dense = BlockMatrix::<DenseBlock>::generate(&ctx, rows, cols, (8, 8), f.clone());
        for (name, got) in [
            ("coo", coo.matvec(&x).unwrap()),
            ("csc", csc.matvec(&x).unwrap()),
            ("dense", dense.matvec(&x).unwrap()),
        ] {
            for (i, (a, b)) in got.iter().zip(reference.as_slice()).enumerate() {
                prop_assert!((a - b).abs() < 1e-9, "{} row {}: {} vs {}", name, i, a, b);
            }
        }
    }

    #[test]
    fn every_format_computes_the_same_gram(
        rows in 1usize..24,
        cols in 1usize..16,
        seed in 0u64..100,
    ) {
        let ctx = SpangleContext::new(2);
        let f = entry(seed);
        let spangle = DistMatrix::generate(&ctx, rows, cols, (4, 4), ChunkPolicy::default(), f.clone());
        let reference = spangle.gram().to_local().unwrap();

        let coo = BlockMatrix::<CooBlock>::generate(&ctx, rows, cols, (4, 4), f.clone());
        let csc = BlockMatrix::<CscBlock>::generate(&ctx, rows, cols, (4, 4), f.clone());
        for (name, got) in [
            ("coo", coo.gram().to_local().unwrap()),
            ("csc", csc.gram().to_local().unwrap()),
        ] {
            prop_assert_eq!(got.len(), reference.len());
            for (i, (a, b)) in got.iter().zip(&reference).enumerate() {
                prop_assert!((a - b).abs() < 1e-9, "{} index {}: {} vs {}", name, i, a, b);
            }
        }
    }
}
