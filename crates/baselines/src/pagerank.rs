//! PageRank comparators: the edge-list implementation of *Learning Spark*
//! ("Spark" in Fig. 11) and a co-partitioned vertex/edge variant
//! ("GraphX-like").
//!
//! Both compute the same ranks as the Spangle version (duplicate edges
//! collapsed); they differ in how much data every iteration shuffles —
//! which is exactly the axis Fig. 11 plots.

use spangle_dataflow::{HashPartitioner, JobError, PairRdd, Rdd};
use spangle_ml::Graph;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-run timing mirror of [`spangle_ml::PageRankResult`].
pub struct BaselineRanks {
    /// Final ranks, indexed by vertex.
    pub ranks: Vec<f64>,
    /// Wall time per iteration.
    pub iteration_times: Vec<Duration>,
    /// Time to build the iteration-invariant structures.
    pub build_time: Duration,
}

/// The classic Spark edge-list PageRank: `links` (src → distinct
/// neighbour list) cached; every iteration joins `links` with `ranks`,
/// flat-maps contributions and reduces by destination.
pub fn pagerank_edge_list(
    graph: &Graph,
    alpha: f64,
    iterations: usize,
    num_partitions: usize,
) -> Result<BaselineRanks, JobError> {
    let n = graph.num_vertices();
    let t0 = Instant::now();
    let partitioner: Arc<HashPartitioner> = Arc::new(HashPartitioner::new(num_partitions));
    let links: Rdd<(u64, Vec<u64>)> = graph
        .edges()
        .map(|(s, d)| (s, d))
        .group_by_key(partitioner.clone())
        .map_values(|mut dsts| {
            dsts.sort_unstable();
            dsts.dedup();
            dsts
        });
    links.persist();
    let mut ranks: Rdd<(u64, f64)> = links.map_values(move |_| 1.0 / n as f64);
    links.count()?; // materialise the cached links
    let build_time = t0.elapsed();

    let teleport = (1.0 - alpha) / n as f64;
    let mut iteration_times = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        let t = Instant::now();
        let contribs = links
            .join(&ranks, partitioner.clone())
            .flat_map(|(_, (dsts, rank))| {
                let share = rank / dsts.len() as f64;
                dsts.iter().map(|&d| (d, share)).collect()
            });
        ranks = contribs
            .reduce_by_key(partitioner.clone(), |a, b| a + b)
            .map_values(move |v| alpha * v + teleport);
        ranks.persist();
        ranks.count()?; // force the iteration, as the paper's timing does
        iteration_times.push(t.elapsed());
    }

    let mut out = vec![teleport; n]; // vertices with no in-links keep the teleport mass
    for (v, r) in ranks.collect()? {
        out[v as usize] = r;
    }
    Ok(BaselineRanks {
        ranks: out,
        iteration_times,
        build_time,
    })
}

/// GraphX-like PageRank: vertex ranks and grouped edges share one
/// partitioner (vertex-cut-ish), messages aggregate per destination, and
/// the vertex state is rebuilt by a join per superstep — reproducing the
/// triplet-join structure whose per-iteration cost Fig. 11 shows growing.
pub fn pagerank_pregel_like(
    graph: &Graph,
    alpha: f64,
    iterations: usize,
    num_partitions: usize,
) -> Result<BaselineRanks, JobError> {
    let n = graph.num_vertices();
    let t0 = Instant::now();
    let partitioner: Arc<HashPartitioner> = Arc::new(HashPartitioner::new(num_partitions));
    // Edge partitions co-partitioned with the vertices by source id.
    let edges: Rdd<(u64, Vec<u64>)> = graph
        .edges()
        .map(|(s, d)| (s, d))
        .group_by_key(partitioner.clone())
        .map_values(|mut dsts| {
            dsts.sort_unstable();
            dsts.dedup();
            dsts
        });
    edges.persist();
    edges.count()?;
    // Every vertex exists in the vertex RDD (unlike the edge-list variant).
    let ctx = graph.edges().context().clone();
    let all_vertices: Vec<(u64, f64)> = (0..n as u64).map(|v| (v, 1.0 / n as f64)).collect();
    let mut vertices = ctx
        .parallelize(all_vertices, num_partitions)
        .partition_by(partitioner.clone());
    vertices.persist();
    vertices.count()?;
    let build_time = t0.elapsed();

    let teleport = (1.0 - alpha) / n as f64;
    let mut iteration_times = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        let t = Instant::now();
        // Triplets: edge partitions pull their source vertex's rank
        // (co-partitioned join → local), emit messages to destinations.
        let messages = edges
            .join(&vertices, partitioner.clone())
            .flat_map(|(_, (dsts, rank))| {
                let share = rank / dsts.len() as f64;
                dsts.iter().map(|&d| (d, share)).collect()
            })
            .reduce_by_key(partitioner.clone(), |a, b| a + b);
        // Vertex program: fold the message into the vertex value; vertices
        // without messages keep only teleport mass.
        let updated =
            vertices
                .cogroup(&messages, partitioner.clone())
                .flat_map(move |(v, (old, msg))| {
                    if old.is_empty() {
                        return Vec::new();
                    }
                    let m = msg.into_iter().next().unwrap_or(0.0);
                    vec![(v, alpha * m + teleport)]
                });
        vertices = updated;
        vertices.persist();
        vertices.count()?;
        iteration_times.push(t.elapsed());
    }

    let mut out = vec![0.0; n];
    for (v, r) in vertices.collect()? {
        out[v as usize] = r;
    }
    Ok(BaselineRanks {
        ranks: out,
        iteration_times,
        build_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spangle_dataflow::SpangleContext;
    use spangle_ml::pagerank::pagerank_reference;

    /// A graph where every vertex has at least one in-edge (so the
    /// edge-list variant's dropped-vertex quirk does not bite).
    fn ring_plus_chords(ctx: &SpangleContext, n: usize) -> (Graph, Vec<(u64, u64)>) {
        let mut edges = Vec::new();
        for v in 0..n as u64 {
            edges.push((v, (v + 1) % n as u64));
            if v % 3 == 0 {
                edges.push((v, (v + 7) % n as u64));
            }
        }
        (Graph::from_edges(ctx, n, edges.clone(), 3), edges)
    }

    #[test]
    fn edge_list_matches_reference() {
        let ctx = SpangleContext::new(3);
        let (g, edges) = ring_plus_chords(&ctx, 60);
        let got = pagerank_edge_list(&g, 0.85, 12, 3).unwrap();
        let expected = pagerank_reference(60, &edges, 0.85, 12);
        for (v, &want) in expected.iter().enumerate().take(60) {
            assert!(
                (got.ranks[v] - want).abs() < 1e-10,
                "vertex {v}: {} vs {}",
                got.ranks[v],
                want
            );
        }
        assert_eq!(got.iteration_times.len(), 12);
    }

    #[test]
    fn pregel_like_matches_reference() {
        let ctx = SpangleContext::new(3);
        let (g, edges) = ring_plus_chords(&ctx, 60);
        let got = pagerank_pregel_like(&g, 0.85, 12, 3).unwrap();
        let expected = pagerank_reference(60, &edges, 0.85, 12);
        for (v, &want) in expected.iter().enumerate().take(60) {
            assert!(
                (got.ranks[v] - want).abs() < 1e-10,
                "vertex {v}: {} vs {}",
                got.ranks[v],
                want
            );
        }
    }

    #[test]
    fn all_three_systems_agree_on_a_power_law_graph() {
        let ctx = SpangleContext::new(4);
        let g = Graph::power_law(&ctx, 200, 2400, 21, 4);
        // Give every vertex an in-edge so all variants are comparable.
        let extra: Vec<(u64, u64)> = (0..200u64).map(|v| ((v + 1) % 200, v)).collect();
        let edges_rdd = g.edges().union(&ctx.parallelize(extra, 2));
        let g = Graph::new(200, edges_rdd);
        let edges = g.edges().collect().unwrap();

        let spangle = spangle_ml::pagerank(&g, 64, false, 0.85, 8).unwrap();
        let spark = pagerank_edge_list(&g, 0.85, 8, 4).unwrap();
        let graphx = pagerank_pregel_like(&g, 0.85, 8, 4).unwrap();
        let expected = pagerank_reference(200, &edges, 0.85, 8);
        for (v, &want) in expected.iter().enumerate().take(200) {
            assert!(
                (spangle.ranks.as_slice()[v] - want).abs() < 1e-10,
                "spangle {v}"
            );
            assert!((spark.ranks[v] - want).abs() < 1e-10, "spark {v}");
            assert!((graphx.ranks[v] - want).abs() < 1e-10, "graphx {v}");
        }
    }
}
