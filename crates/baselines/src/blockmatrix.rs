//! Distributed block matrices over pluggable block formats.
//!
//! [`BlockMatrix<B>`] reimplements the distributed algorithms of
//! [`spangle_linalg::DistMatrix`] generically so the comparison systems of
//! Fig. 10 differ from Spangle in exactly one dimension — the physical
//! block format:
//!
//! * [`CooBlock`] — coordinate triplets, the "Spark (COO)" comparator;
//! * [`CscBlock`] — compressed sparse columns, the "MLlib (CSC)"
//!   comparator;
//! * [`DenseBlock`] — a full `rows × cols` buffer, the "SciSpark"
//!   comparator. True to SciSpark's dense NetCDF handling it materialises
//!   *every* block of the grid, empty or not.

use spangle_core::{ArrayMeta, ChunkId};
use spangle_dataflow::rdd::sources::GeneratedRdd;
use spangle_dataflow::{
    HashPartitioner, JobError, MemSize, PairRdd, Partitioner, Rdd, SpangleContext, SpillCursor,
};
use std::sync::Arc;

/// A physical matrix block format.
pub trait MatrixBlock: Clone + Send + Sync + MemSize + 'static {
    /// Whether all-zero blocks are still materialised (dense formats).
    const MATERIALIZE_EMPTY: bool;

    /// Builds a block of extent `rows × cols` from `(row, col, value)`
    /// triplets; `None` when empty *and* the format elides empty blocks.
    fn from_triplets(rows: usize, cols: usize, triplets: &[(u32, u32, f64)]) -> Option<Self>
    where
        Self: Sized;

    /// Stored non-zero count.
    fn nnz(&self) -> usize;

    /// Deep size in bytes.
    fn mem_bytes(&self) -> usize;

    /// `acc[r] += Σ_c block[r,c] * q[c]`.
    fn matvec_into(&self, q: &[f64], acc: &mut [f64]);

    /// `acc[c] += Σ_r x[r] * block[r,c]`.
    fn vecmat_into(&self, x: &[f64], acc: &mut [f64]);

    /// `acc[r + c*self.rows] += self · other` (column-last accumulator).
    fn multiply_into(&self, other: &Self, acc: &mut [f64]);

    /// The transposed block.
    fn transpose(&self) -> Self;

    /// Extent.
    fn extent(&self) -> (usize, usize);
}

/// Coordinate-list block ("Spark (COO)").
#[derive(Clone, Debug)]
pub struct CooBlock {
    rows: usize,
    cols: usize,
    r: Vec<u32>,
    c: Vec<u32>,
    v: Vec<f64>,
}

impl MemSize for CooBlock {
    fn mem_size(&self) -> usize {
        self.mem_bytes()
    }

    fn spillable() -> bool {
        true
    }

    fn spill_encode(&self, out: &mut Vec<u8>) {
        self.rows.spill_encode(out);
        self.cols.spill_encode(out);
        self.r.spill_encode(out);
        self.c.spill_encode(out);
        self.v.spill_encode(out);
    }

    fn spill_decode(input: &mut SpillCursor<'_>) -> Option<Self> {
        Some(CooBlock {
            rows: usize::spill_decode(input)?,
            cols: usize::spill_decode(input)?,
            r: Vec::spill_decode(input)?,
            c: Vec::spill_decode(input)?,
            v: Vec::spill_decode(input)?,
        })
    }
}

impl MatrixBlock for CooBlock {
    const MATERIALIZE_EMPTY: bool = false;

    fn from_triplets(rows: usize, cols: usize, triplets: &[(u32, u32, f64)]) -> Option<Self> {
        if triplets.is_empty() {
            return None;
        }
        let mut sorted = triplets.to_vec();
        // Column-major order so products stream reasonably.
        sorted.sort_unstable_by_key(|&(r, c, _)| (c, r));
        Some(CooBlock {
            rows,
            cols,
            r: sorted.iter().map(|t| t.0).collect(),
            c: sorted.iter().map(|t| t.1).collect(),
            v: sorted.iter().map(|t| t.2).collect(),
        })
    }

    fn nnz(&self) -> usize {
        self.v.len()
    }

    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.v.len() * (4 + 4 + 8)
    }

    fn matvec_into(&self, q: &[f64], acc: &mut [f64]) {
        for i in 0..self.v.len() {
            acc[self.r[i] as usize] += self.v[i] * q[self.c[i] as usize];
        }
    }

    fn vecmat_into(&self, x: &[f64], acc: &mut [f64]) {
        for i in 0..self.v.len() {
            acc[self.c[i] as usize] += x[self.r[i] as usize] * self.v[i];
        }
    }

    fn multiply_into(&self, other: &Self, acc: &mut [f64]) {
        debug_assert_eq!(self.cols, other.rows);
        // Index other by row.
        let mut by_row: Vec<Vec<(u32, f64)>> = vec![Vec::new(); other.rows];
        for i in 0..other.v.len() {
            by_row[other.r[i] as usize].push((other.c[i], other.v[i]));
        }
        for i in 0..self.v.len() {
            let (r, k, va) = (self.r[i] as usize, self.c[i] as usize, self.v[i]);
            for &(c, vb) in &by_row[k] {
                acc[r + c as usize * self.rows] += va * vb;
            }
        }
    }

    fn transpose(&self) -> Self {
        let triplets: Vec<(u32, u32, f64)> = (0..self.v.len())
            .map(|i| (self.c[i], self.r[i], self.v[i]))
            .collect();
        CooBlock::from_triplets(self.cols, self.rows, &triplets)
            .expect("transpose of a non-empty block is non-empty")
    }

    fn extent(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }
}

/// Compressed-sparse-column block ("MLlib (CSC)").
#[derive(Clone, Debug)]
pub struct CscBlock {
    rows: usize,
    cols: usize,
    col_ptr: Vec<u32>,
    row_idx: Vec<u32>,
    vals: Vec<f64>,
}

impl MemSize for CscBlock {
    fn mem_size(&self) -> usize {
        self.mem_bytes()
    }

    fn spillable() -> bool {
        true
    }

    fn spill_encode(&self, out: &mut Vec<u8>) {
        self.rows.spill_encode(out);
        self.cols.spill_encode(out);
        self.col_ptr.spill_encode(out);
        self.row_idx.spill_encode(out);
        self.vals.spill_encode(out);
    }

    fn spill_decode(input: &mut SpillCursor<'_>) -> Option<Self> {
        Some(CscBlock {
            rows: usize::spill_decode(input)?,
            cols: usize::spill_decode(input)?,
            col_ptr: Vec::spill_decode(input)?,
            row_idx: Vec::spill_decode(input)?,
            vals: Vec::spill_decode(input)?,
        })
    }
}

impl MatrixBlock for CscBlock {
    const MATERIALIZE_EMPTY: bool = false;

    fn from_triplets(rows: usize, cols: usize, triplets: &[(u32, u32, f64)]) -> Option<Self> {
        if triplets.is_empty() {
            return None;
        }
        let mut sorted = triplets.to_vec();
        sorted.sort_unstable_by_key(|&(r, c, _)| (c, r));
        let mut col_ptr = vec![0u32; cols + 1];
        for &(_, c, _) in &sorted {
            col_ptr[c as usize + 1] += 1;
        }
        for c in 0..cols {
            col_ptr[c + 1] += col_ptr[c];
        }
        Some(CscBlock {
            rows,
            cols,
            col_ptr,
            row_idx: sorted.iter().map(|t| t.0).collect(),
            vals: sorted.iter().map(|t| t.2).collect(),
        })
    }

    fn nnz(&self) -> usize {
        self.vals.len()
    }

    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.col_ptr.len() * 4
            + self.row_idx.len() * 4
            + self.vals.len() * 8
    }

    fn matvec_into(&self, q: &[f64], acc: &mut [f64]) {
        for (c, &qc) in q.iter().enumerate().take(self.cols) {
            if qc == 0.0 {
                continue;
            }
            for i in self.col_ptr[c] as usize..self.col_ptr[c + 1] as usize {
                acc[self.row_idx[i] as usize] += self.vals[i] * qc;
            }
        }
    }

    fn vecmat_into(&self, x: &[f64], acc: &mut [f64]) {
        for (c, slot) in acc.iter_mut().enumerate().take(self.cols) {
            let mut sum = 0.0;
            for i in self.col_ptr[c] as usize..self.col_ptr[c + 1] as usize {
                sum += x[self.row_idx[i] as usize] * self.vals[i];
            }
            *slot += sum;
        }
    }

    fn multiply_into(&self, other: &Self, acc: &mut [f64]) {
        debug_assert_eq!(self.cols, other.rows);
        // For each column c of other, scatter through self's columns.
        for c in 0..other.cols {
            for i in other.col_ptr[c] as usize..other.col_ptr[c + 1] as usize {
                let k = other.row_idx[i] as usize;
                let vb = other.vals[i];
                for j in self.col_ptr[k] as usize..self.col_ptr[k + 1] as usize {
                    acc[self.row_idx[j] as usize + c * self.rows] += self.vals[j] * vb;
                }
            }
        }
    }

    fn transpose(&self) -> Self {
        let mut triplets = Vec::with_capacity(self.vals.len());
        for c in 0..self.cols {
            for i in self.col_ptr[c] as usize..self.col_ptr[c + 1] as usize {
                triplets.push((c as u32, self.row_idx[i], self.vals[i]));
            }
        }
        CscBlock::from_triplets(self.cols, self.rows, &triplets)
            .expect("transpose of a non-empty block is non-empty")
    }

    fn extent(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }
}

/// Fully materialised block ("SciSpark": dense, empties included).
#[derive(Clone, Debug)]
pub struct DenseBlock {
    rows: usize,
    cols: usize,
    /// Column-last buffer of every slot, zeros included.
    data: Vec<f64>,
}

impl MemSize for DenseBlock {
    fn mem_size(&self) -> usize {
        self.mem_bytes()
    }

    fn spillable() -> bool {
        true
    }

    fn spill_encode(&self, out: &mut Vec<u8>) {
        self.rows.spill_encode(out);
        self.cols.spill_encode(out);
        self.data.spill_encode(out);
    }

    fn spill_decode(input: &mut SpillCursor<'_>) -> Option<Self> {
        Some(DenseBlock {
            rows: usize::spill_decode(input)?,
            cols: usize::spill_decode(input)?,
            data: Vec::spill_decode(input)?,
        })
    }
}

impl MatrixBlock for DenseBlock {
    const MATERIALIZE_EMPTY: bool = true;

    fn from_triplets(rows: usize, cols: usize, triplets: &[(u32, u32, f64)]) -> Option<Self> {
        let mut data = vec![0.0; rows * cols];
        for &(r, c, v) in triplets {
            data[r as usize + c as usize * rows] = v;
        }
        Some(DenseBlock { rows, cols, data })
    }

    fn nnz(&self) -> usize {
        self.data.iter().filter(|v| **v != 0.0).count()
    }

    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.data.len() * 8
    }

    fn matvec_into(&self, q: &[f64], acc: &mut [f64]) {
        for (c, &qc) in q.iter().enumerate().take(self.cols) {
            let col = &self.data[c * self.rows..(c + 1) * self.rows];
            for (slot, &v) in acc.iter_mut().zip(col) {
                *slot += v * qc;
            }
        }
    }

    fn vecmat_into(&self, x: &[f64], acc: &mut [f64]) {
        for (c, slot) in acc.iter_mut().enumerate().take(self.cols) {
            let col = &self.data[c * self.rows..(c + 1) * self.rows];
            let sum: f64 = x.iter().zip(col).map(|(&xv, &cv)| xv * cv).sum();
            *slot += sum;
        }
    }

    fn multiply_into(&self, other: &Self, acc: &mut [f64]) {
        debug_assert_eq!(self.cols, other.rows);
        for c in 0..other.cols {
            for k in 0..self.cols {
                let vb = other.data[k + c * other.rows];
                if vb == 0.0 {
                    continue;
                }
                let a_col = &self.data[k * self.rows..(k + 1) * self.rows];
                let out_col = &mut acc[c * self.rows..(c + 1) * self.rows];
                for r in 0..self.rows {
                    out_col[r] += a_col[r] * vb;
                }
            }
        }
    }

    fn transpose(&self) -> Self {
        let mut data = vec![0.0; self.data.len()];
        for c in 0..self.cols {
            for r in 0..self.rows {
                data[c + r * self.cols] = self.data[r + c * self.rows];
            }
        }
        DenseBlock {
            rows: self.cols,
            cols: self.rows,
            data,
        }
    }

    fn extent(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }
}

/// A distributed block matrix over block format `B`.
pub struct BlockMatrix<B: MatrixBlock> {
    ctx: SpangleContext,
    meta: Arc<ArrayMeta>,
    rdd: Rdd<(ChunkId, B)>,
}

impl<B: MatrixBlock> Clone for BlockMatrix<B> {
    fn clone(&self) -> Self {
        BlockMatrix {
            ctx: self.ctx.clone(),
            meta: self.meta.clone(),
            rdd: self.rdd.clone(),
        }
    }
}

impl<B: MatrixBlock> BlockMatrix<B> {
    /// Generates a matrix from an entry function, block by block on the
    /// executors (same grid/ID conventions as Spangle's matrices).
    pub fn generate(
        ctx: &SpangleContext,
        rows: usize,
        cols: usize,
        block_shape: (usize, usize),
        f: impl Fn(usize, usize) -> Option<f64> + Send + Sync + 'static,
    ) -> Self {
        let meta = Arc::new(ArrayMeta::new(
            vec![rows, cols],
            vec![block_shape.0, block_shape.1],
        ));
        let num_partitions = ctx.num_executors() * 2;
        let gen_meta = meta.clone();
        let rdd = GeneratedRdd::create(ctx, num_partitions, move |p| {
            let partitioner = HashPartitioner::new(num_partitions);
            let mapper = gen_meta.mapper();
            let mut out = Vec::new();
            for chunk_id in 0..mapper.num_chunks() as u64 {
                if partitioner.partition(&chunk_id) != p {
                    continue;
                }
                let origin = mapper.chunk_origin(chunk_id);
                let extent = mapper.chunk_extent(chunk_id);
                let mut triplets = Vec::new();
                for c in 0..extent[1] {
                    for r in 0..extent[0] {
                        if let Some(v) = f(origin[0] + r, origin[1] + c) {
                            if v != 0.0 {
                                triplets.push((r as u32, c as u32, v));
                            }
                        }
                    }
                }
                if let Some(block) = B::from_triplets(extent[0], extent[1], &triplets) {
                    out.push((chunk_id, block));
                }
            }
            out
        });
        let sig = Partitioner::<u64>::sig(&HashPartitioner::new(num_partitions));
        BlockMatrix {
            ctx: ctx.clone(),
            meta,
            rdd: rdd.assert_partitioned(sig),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.meta.dims()[0]
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.meta.dims()[1]
    }

    fn grid_rows(&self) -> usize {
        self.meta.grid_dims()[0]
    }

    /// The block RDD.
    pub fn rdd(&self) -> &Rdd<(ChunkId, B)> {
        &self.rdd
    }

    /// Marks blocks for caching.
    pub fn persist(&self) -> &Self {
        self.rdd.persist();
        self
    }

    /// Stored non-zeros.
    pub fn nnz(&self) -> Result<usize, JobError> {
        self.rdd
            .aggregate(0usize, |acc, (_, b)| acc + b.nnz(), |a, b| a + b)
    }

    /// Deep memory footprint of all blocks.
    pub fn mem_bytes(&self) -> Result<usize, JobError> {
        self.rdd
            .aggregate(0usize, |acc, (_, b)| acc + b.mem_bytes(), |a, b| a + b)
    }

    /// `y = M·x` with a broadcast vector.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, JobError> {
        assert_eq!(x.len(), self.cols(), "dimension mismatch in M·x");
        let bc = self.ctx.broadcast(x.to_vec());
        let meta = self.meta.clone();
        let grid_rows = self.grid_rows() as u64;
        let partials = self.rdd.map(move |(id, block)| {
            let mapper = meta.mapper();
            let origin = mapper.chunk_origin(id);
            let (rows, cols) = block.extent();
            let q = &bc.value()[origin[1]..origin[1] + cols];
            let mut acc = vec![0.0; rows];
            block.matvec_into(q, &mut acc);
            (id % grid_rows, acc)
        });
        let n = self.rdd.num_partitions();
        let reduced = partials.reduce_by_key(Arc::new(HashPartitioner::new(n)), |mut a, b| {
            for (x, y) in a.iter_mut().zip(&b) {
                *x += y;
            }
            a
        });
        let mut out = vec![0.0; self.rows()];
        let br = self.meta.chunk_shape()[0];
        for (gr, seg) in reduced.collect()? {
            let base = gr as usize * br;
            out[base..base + seg.len()].copy_from_slice(&seg);
        }
        Ok(out)
    }

    /// `yᵀ = xᵀ·M` with a broadcast vector.
    pub fn vecmat(&self, x: &[f64]) -> Result<Vec<f64>, JobError> {
        assert_eq!(x.len(), self.rows(), "dimension mismatch in xᵀ·M");
        let bc = self.ctx.broadcast(x.to_vec());
        let meta = self.meta.clone();
        let grid_rows = self.grid_rows() as u64;
        let partials = self.rdd.map(move |(id, block)| {
            let mapper = meta.mapper();
            let origin = mapper.chunk_origin(id);
            let (rows, cols) = block.extent();
            let xs = &bc.value()[origin[0]..origin[0] + rows];
            let mut acc = vec![0.0; cols];
            block.vecmat_into(xs, &mut acc);
            (id / grid_rows, acc)
        });
        let n = self.rdd.num_partitions();
        let reduced = partials.reduce_by_key(Arc::new(HashPartitioner::new(n)), |mut a, b| {
            for (x, y) in a.iter_mut().zip(&b) {
                *x += y;
            }
            a
        });
        let mut out = vec![0.0; self.cols()];
        let bcols = self.meta.chunk_shape()[1];
        for (gc, seg) in reduced.collect()? {
            let base = gc as usize * bcols;
            out[base..base + seg.len()].copy_from_slice(&seg);
        }
        Ok(out)
    }

    /// Shuffle-plan matrix multiplication (join on the contraction index,
    /// reduce partial blocks).
    pub fn multiply(&self, other: &BlockMatrix<B>) -> BlockMatrix<B> {
        assert_eq!(self.cols(), other.rows(), "inner dimensions must agree");
        assert_eq!(
            self.meta.chunk_shape()[1],
            other.meta.chunk_shape()[0],
            "inner block sizes must agree"
        );
        let out_meta = Arc::new(ArrayMeta::new(
            vec![self.rows(), other.cols()],
            vec![self.meta.chunk_shape()[0], other.meta.chunk_shape()[1]],
        ));
        let a_grid_rows = self.grid_rows() as u64;
        let b_grid_rows = other.grid_rows() as u64;
        let out_grid_rows = out_meta.grid_dims()[0] as u64;
        let a = self
            .rdd
            .map(move |(id, b)| (id / a_grid_rows, (id % a_grid_rows, b)));
        let b = other
            .rdd
            .map(move |(id, blk)| (id % b_grid_rows, (id / b_grid_rows, blk)));
        let n = self.rdd.num_partitions();
        let partials = a.cogroup(&b, Arc::new(HashPartitioner::new(n))).flat_map(
            move |(_, (links, rights))| {
                let mut out = Vec::with_capacity(links.len() * rights.len());
                for (gr, ab) in &links {
                    for (gc, bb) in &rights {
                        let (ar, _) = ab.extent();
                        let (_, bc) = bb.extent();
                        let mut acc = vec![0.0; ar * bc];
                        ab.multiply_into(bb, &mut acc);
                        out.push(((gr + gc * out_grid_rows), (ar, acc)));
                    }
                }
                out
            },
        );
        let reduced =
            partials.reduce_by_key(Arc::new(HashPartitioner::new(n)), |(r, mut a), (_, b)| {
                for (x, y) in a.iter_mut().zip(&b) {
                    *x += y;
                }
                (r, a)
            });
        let rdd = reduced.flat_map(|(id, (rows, acc))| {
            let cols = acc.len() / rows;
            let triplets: Vec<(u32, u32, f64)> = acc
                .iter()
                .enumerate()
                .filter(|(_, v)| **v != 0.0)
                .map(|(i, &v)| ((i % rows) as u32, (i / rows) as u32, v))
                .collect();
            if triplets.is_empty() && !B::MATERIALIZE_EMPTY {
                return Vec::new();
            }
            B::from_triplets(rows, cols, &triplets)
                .map(|b| (id, b))
                .into_iter()
                .collect::<Vec<_>>()
        });
        BlockMatrix {
            ctx: self.ctx.clone(),
            meta: out_meta,
            rdd,
        }
    }

    /// Physical transpose.
    pub fn transpose(&self) -> BlockMatrix<B> {
        let grid_rows = self.grid_rows() as u64;
        let grid_cols = self.meta.grid_dims()[1] as u64;
        let out_meta = Arc::new(ArrayMeta::new(
            vec![self.cols(), self.rows()],
            vec![self.meta.chunk_shape()[1], self.meta.chunk_shape()[0]],
        ));
        let rdd = self.rdd.map(move |(id, block)| {
            let (gr, gc) = (id % grid_rows, id / grid_rows);
            (gc + gr * grid_cols, block.transpose())
        });
        let n = self.rdd.num_partitions();
        let rdd = rdd.partition_by(Arc::new(HashPartitioner::new(n)));
        BlockMatrix {
            ctx: self.ctx.clone(),
            meta: out_meta,
            rdd,
        }
    }

    /// `MᵀM`.
    pub fn gram(&self) -> BlockMatrix<B> {
        self.transpose().multiply(self)
    }

    /// Dense driver-side copy for tests.
    pub fn to_local(&self) -> Result<Vec<f64>, JobError> {
        let rows = self.rows();
        let meta = self.meta.clone();
        let cells = self.rdd.flat_map(move |(id, block)| {
            let mapper = meta.mapper();
            let origin = mapper.chunk_origin(id);
            let (brows, bcols) = block.extent();
            // Reconstruct the block by probing each column with a unit
            // vector — O(cols) kernel calls, fine for a test-only action.
            let mut buf = vec![0.0; brows * bcols];
            for c in 0..bcols {
                let mut q = vec![0.0; bcols];
                q[c] = 1.0;
                let mut col = vec![0.0; brows];
                block.matvec_into(&q, &mut col);
                for r in 0..brows {
                    buf[r + c * brows] = col[r];
                }
            }
            buf.into_iter()
                .enumerate()
                .filter(|(_, v)| *v != 0.0)
                .map(|(i, v)| {
                    let r = origin[0] + i % brows;
                    let c = origin[1] + i / brows;
                    (r as u64, c as u64, v)
                })
                .collect::<Vec<_>>()
        });
        let mut out = vec![0.0; rows * self.cols()];
        for (r, c, v) in cells.collect()? {
            out[r as usize + c as usize * rows] = v;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(r: usize, c: usize) -> Option<f64> {
        (r + 2 * c)
            .is_multiple_of(5)
            .then(|| (r * 7 + c + 1) as f64)
    }

    fn reference(rows: usize, cols: usize) -> Vec<f64> {
        let mut m = vec![0.0; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                if let Some(v) = entry(r, c) {
                    m[r + c * rows] = v;
                }
            }
        }
        m
    }

    fn check_format<B: MatrixBlock>() {
        let ctx = SpangleContext::new(2);
        let m = BlockMatrix::<B>::generate(&ctx, 18, 13, (5, 4), entry);
        let local = m.to_local().unwrap();
        assert_eq!(local, reference(18, 13));

        // matvec
        let x: Vec<f64> = (0..13).map(|i| (i as f64) - 6.0).collect();
        let y = m.matvec(&x).unwrap();
        for r in 0..18 {
            let expected: f64 = (0..13).map(|c| local[r + c * 18] * x[c]).sum();
            assert!((y[r] - expected).abs() < 1e-9, "row {r}");
        }

        // vecmat
        let x: Vec<f64> = (0..18).map(|i| ((i % 3) as f64) - 1.0).collect();
        let y = m.vecmat(&x).unwrap();
        for c in 0..13 {
            let expected: f64 = (0..18).map(|r| x[r] * local[r + c * 18]).sum();
            assert!((y[c] - expected).abs() < 1e-9, "col {c}");
        }

        // multiply (M * Mᵀ via generate of the transpose entries)
        let mt = BlockMatrix::<B>::generate(&ctx, 13, 18, (4, 5), |r, c| entry(c, r));
        let product = m.multiply(&mt).to_local().unwrap();
        for r in 0..18 {
            for c in 0..18 {
                let expected: f64 = (0..13).map(|k| local[r + k * 18] * local[c + k * 18]).sum();
                assert!((product[r + c * 18] - expected).abs() < 1e-9, "({r},{c})");
            }
        }

        // gram
        let gram = m.gram().to_local().unwrap();
        for a in 0..13 {
            for b in 0..13 {
                let expected: f64 = (0..18).map(|k| local[k + a * 18] * local[k + b * 18]).sum();
                assert!((gram[a + b * 13] - expected).abs() < 1e-9, "({a},{b})");
            }
        }
    }

    #[test]
    fn coo_format_matches_reference() {
        check_format::<CooBlock>();
    }

    #[test]
    fn csc_format_matches_reference() {
        check_format::<CscBlock>();
    }

    #[test]
    fn dense_format_matches_reference() {
        check_format::<DenseBlock>();
    }

    #[test]
    fn dense_format_materialises_empty_blocks() {
        let ctx = SpangleContext::new(2);
        // Only the top-left block is non-empty.
        let f = |r: usize, c: usize| (r < 4 && c < 4).then_some(1.0);
        let dense = BlockMatrix::<DenseBlock>::generate(&ctx, 16, 16, (4, 4), f);
        let coo = BlockMatrix::<CooBlock>::generate(&ctx, 16, 16, (4, 4), f);
        assert_eq!(dense.rdd().count().unwrap(), 16, "every grid slot exists");
        assert_eq!(
            coo.rdd().count().unwrap(),
            1,
            "sparse formats elide empties"
        );
        assert!(dense.mem_bytes().unwrap() > 4 * coo.mem_bytes().unwrap());
    }

    #[test]
    fn memory_ordering_matches_the_paper_for_sparse_data() {
        let ctx = SpangleContext::new(2);
        // ~2% density.
        let f = |r: usize, c: usize| (r * 53 + c * 19).is_multiple_of(50).then_some(1.0);
        let coo = BlockMatrix::<CooBlock>::generate(&ctx, 256, 256, (64, 64), f)
            .mem_bytes()
            .unwrap();
        let csc = BlockMatrix::<CscBlock>::generate(&ctx, 256, 256, (64, 64), f)
            .mem_bytes()
            .unwrap();
        let dense = BlockMatrix::<DenseBlock>::generate(&ctx, 256, 256, (64, 64), f)
            .mem_bytes()
            .unwrap();
        assert!(
            csc < dense && coo < dense,
            "sparse formats beat dense: coo={coo} csc={csc} dense={dense}"
        );
    }
}
