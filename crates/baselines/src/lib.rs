#![warn(missing_docs)]

//! The comparator systems of the paper's evaluation (§VII), rebuilt on the
//! same dataflow runtime so that the only variable is the one the paper
//! varies: the data representation and operator strategy.
//!
//! * [`blockmatrix`] — a generic distributed block matrix parameterised by
//!   block format: [`blockmatrix::CooBlock`] ("Spark (COO)"),
//!   [`blockmatrix::CscBlock`] ("MLlib (CSC)") and
//!   [`blockmatrix::DenseBlock`] ("SciSpark", which materialises even
//!   all-zero blocks);
//! * [`pagerank`] — the edge-list PageRank of *Learning Spark* ("Spark")
//!   and a co-partitioned vertex/edge variant ("GraphX-like");
//! * [`logreg`] — a row-oriented full-batch gradient-descent logistic
//!   regression ("MLlib"), including the simulated ingest memory budget
//!   that makes it fail on the two larger Table III datasets as in the
//!   paper;
//! * [`local_engine`] — a single-process, eagerly evaluated chunked array
//!   engine with an explicit disk-IO cost model, standing in for SciDB
//!   (see DESIGN.md for why this substitution is reported separately).

pub mod blockmatrix;
pub mod local_engine;
pub mod logreg;
pub mod pagerank;

pub use blockmatrix::{BlockMatrix, CooBlock, CscBlock, DenseBlock, MatrixBlock};
pub use local_engine::LocalArrayEngine;
pub use logreg::{RowLogReg, SimulatedOom};
pub use pagerank::{pagerank_edge_list, pagerank_pregel_like};
