//! Row-oriented logistic regression ("MLlib" in Table III).
//!
//! MLlib trains on an `RDD[LabeledPoint]` — one record per sample — and
//! computes a full-batch gradient per iteration (treeAggregate). Two
//! consequences the paper observes are reproduced here:
//!
//! * the per-row object layout is heavier than Spangle's chunked blocks,
//!   so ingest can exhaust the executor heap ("MLlib fails to ingest two
//!   larger datasets, incurring out of heap memory") — modelled by an
//!   explicit ingest budget;
//! * every iteration touches every sample, instead of Spangle's
//!   mini-batch chunk sampling.

use spangle_dataflow::{JobError, MemSize, Rdd, SpangleContext};
use spangle_linalg::DenseVector;
use spangle_ml::sgd::{SparseRow, TrainSet};
use std::time::{Duration, Instant};

/// The modelled out-of-memory failure: the row-format dataset would not
/// fit the configured executor heap.
#[derive(Clone, Debug)]
pub struct SimulatedOom {
    /// Bytes the row layout needs.
    pub required_bytes: usize,
    /// Configured budget.
    pub budget_bytes: usize,
}

impl std::fmt::Display for SimulatedOom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulated executor OOM: row-format dataset needs {} B, budget {} B",
            self.required_bytes, self.budget_bytes
        )
    }
}

impl std::error::Error for SimulatedOom {}

/// A row-oriented logistic-regression trainer.
pub struct RowLogReg {
    rows: Rdd<(f64, SparseRow)>,
    num_features: usize,
    num_rows: usize,
    ctx: SpangleContext,
}

impl RowLogReg {
    /// Ingests a training set into row format.
    ///
    /// `heap_budget` models the executor memory available for the row
    /// layout; `None` disables the check. The row layout is charged its
    /// real deep size *plus* a 2× JVM object overhead factor (boxed
    /// tuples, object headers), which is what makes it lose to the chunked
    /// layout at equal data volume.
    pub fn ingest(data: &TrainSet, heap_budget: Option<usize>) -> Result<Self, SimulatedOom> {
        let rows = data.to_row_rdd();
        if let Some(budget) = heap_budget {
            let data_bytes = rows
                .aggregate(0usize, |acc, r| acc + r.mem_size(), |a, b| a + b)
                .expect("size probe failed");
            let required = data_bytes * 2;
            if required > budget {
                return Err(SimulatedOom {
                    required_bytes: required,
                    budget_bytes: budget,
                });
            }
        }
        rows.persist();
        Ok(RowLogReg {
            num_features: data.num_features(),
            num_rows: data.num_rows(),
            ctx: data.rdd().context().clone(),
            rows,
        })
    }

    /// Full-batch gradient descent; stops on the same tolerance rule as
    /// the Spangle trainer.
    pub fn train(
        &self,
        step_size: f64,
        tolerance: f64,
        max_iters: usize,
    ) -> Result<(DenseVector, usize, Duration), JobError> {
        let f = self.num_features;
        let mut x = vec![0.0f64; f];
        let started = Instant::now();
        let mut iterations = 0;
        for _ in 0..max_iters {
            iterations += 1;
            let bc = self.ctx.broadcast(x.clone());
            let partials = self.rows.run_partitions(move |_, rows| {
                let x = bc.value();
                let mut grad = vec![0.0f64; x.len()];
                for (label, row) in rows {
                    let margin: f64 = row.iter().map(|&(j, v)| x[j as usize] * v).sum();
                    let err = 1.0 / (1.0 + (-margin).exp()) - label;
                    for &(j, v) in row {
                        grad[j as usize] += err * v;
                    }
                }
                grad
            })?;
            let mut grad = vec![0.0f64; f];
            for g in partials {
                for (a, b) in grad.iter_mut().zip(&g) {
                    *a += b;
                }
            }
            let scale = step_size / self.num_rows as f64;
            let mut norm2 = 0.0;
            for (xi, gi) in x.iter_mut().zip(&grad) {
                let delta = scale * gi;
                *xi -= delta;
                norm2 += delta * delta;
            }
            if norm2.sqrt() < tolerance {
                break;
            }
        }
        Ok((DenseVector::column(x), iterations, started.elapsed()))
    }

    /// Row-format memory footprint (the quantity the OOM model checks).
    pub fn mem_bytes(&self) -> Result<usize, JobError> {
        self.rows
            .aggregate(0usize, |acc, r| acc + r.mem_size(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spangle_ml::datasets;

    #[test]
    fn row_trainer_learns_the_same_concept_as_spangle() {
        let ctx = SpangleContext::new(4);
        let data = datasets::synthetic_logreg(&ctx, 4, 4, 64, 32, 5, 99);
        data.persist();
        let baseline = RowLogReg::ingest(&data, None).unwrap();
        let (weights, _, _) = baseline.train(0.6, 1e-4, 120).unwrap();
        let acc = data.accuracy(&weights).unwrap();
        assert!(acc > 0.9, "baseline accuracy {acc}");
    }

    #[test]
    fn ingest_fails_on_a_too_small_heap() {
        let ctx = SpangleContext::new(2);
        let data = datasets::synthetic_logreg(&ctx, 2, 2, 32, 64, 8, 3);
        let err = match RowLogReg::ingest(&data, Some(1024)) {
            Err(e) => e,
            Ok(_) => panic!("expected a simulated OOM"),
        };
        assert!(err.required_bytes > err.budget_bytes);
        // And succeeds with room.
        assert!(RowLogReg::ingest(&data, Some(64 << 20)).is_ok());
    }

    #[test]
    fn modelled_row_footprint_is_heavier_than_chunked_layout() {
        let ctx = SpangleContext::new(2);
        let data = datasets::synthetic_logreg(&ctx, 2, 4, 64, 128, 8, 5);
        let chunked: usize = data
            .rdd()
            .aggregate(0usize, |acc, (_, b)| acc + b.mem_size(), |a, b| a + b)
            .unwrap();
        let rows = RowLogReg::ingest(&data, None).unwrap().mem_bytes().unwrap();
        // Raw payload bytes are comparable; the 2× modelled JVM per-object
        // overhead (see `ingest`) is what pushes the row layout past the
        // chunked layout, as in the paper's OOM observation.
        assert!(rows * 2 > chunked, "rows={rows} chunked={chunked}");
        assert!(
            (rows * 2) as f64 > 1.5 * chunked as f64,
            "modelled footprint should clearly exceed the chunked layout"
        );
    }
}
