//! The SciDB stand-in: a single-process, eagerly evaluated chunked array
//! engine with an explicit disk-IO cost model.
//!
//! SciDB is a C++ array DBMS: no JVM overhead, but disk-resident — every
//! query pays to read its chunks. We cannot rebuild SciDB, so this engine
//! keeps the two properties that position SciDB in Fig. 7 and Fig. 10:
//! single-node C-speed compute (trivially true of in-process Rust) and
//! per-query IO charges, *modelled* as `bytes_touched / bandwidth` and
//! reported as a separate column in EXPERIMENTS.md rather than folded
//! silently into wall time.

use spangle_core::{ArrayMeta, Chunk, ChunkId, ChunkPolicy, Mapper};
use std::cell::Cell;
use std::time::Duration;

/// Disk model: a 7200-RPM HDD's ~150 MB/s sequential bandwidth, matching
/// the paper's testbed disks.
pub const DEFAULT_BANDWIDTH_BYTES_PER_SEC: f64 = 150.0e6;

/// A single-process chunked array with null support.
pub struct LocalArrayEngine {
    meta: ArrayMeta,
    mapper: Mapper,
    chunks: Vec<(ChunkId, Chunk<f64>)>,
    bandwidth: f64,
    io_bytes: Cell<u64>,
}

impl LocalArrayEngine {
    /// Materialises an array from a generator function (the same function
    /// the distributed systems ingest, so all systems hold identical
    /// data).
    pub fn ingest(meta: ArrayMeta, f: impl Fn(&[usize]) -> Option<f64>) -> Self {
        let mapper = meta.mapper();
        let policy = ChunkPolicy::default();
        let mut chunks = Vec::new();
        for chunk_id in 0..mapper.num_chunks() as u64 {
            let volume = mapper.chunk_volume(chunk_id);
            let origin = mapper.chunk_origin(chunk_id);
            let extent = mapper.chunk_extent(chunk_id);
            let mut coords = vec![0usize; origin.len()];
            let mut cells = Vec::new();
            for local in 0..volume {
                Mapper::unravel(&origin, &extent, local, &mut coords);
                if let Some(v) = f(&coords) {
                    cells.push((local, v));
                }
            }
            if let Some(chunk) = Chunk::from_cells(volume, cells, &policy) {
                chunks.push((chunk_id, chunk));
            }
        }
        LocalArrayEngine {
            meta,
            mapper,
            chunks,
            bandwidth: DEFAULT_BANDWIDTH_BYTES_PER_SEC,
            io_bytes: Cell::new(0),
        }
    }

    /// Overrides the modelled disk bandwidth.
    pub fn with_bandwidth(mut self, bytes_per_sec: f64) -> Self {
        self.bandwidth = bytes_per_sec;
        self
    }

    /// Array geometry.
    pub fn meta(&self) -> &ArrayMeta {
        &self.meta
    }

    /// Cumulative modelled IO volume.
    pub fn io_bytes(&self) -> u64 {
        self.io_bytes.get()
    }

    /// Cumulative modelled IO time (`io_bytes / bandwidth`).
    pub fn modeled_io_time(&self) -> Duration {
        Duration::from_secs_f64(self.io_bytes.get() as f64 / self.bandwidth)
    }

    /// Resets the IO counter (between queries).
    pub fn reset_io(&self) {
        self.io_bytes.set(0);
    }

    fn charge(&self, chunk: &Chunk<f64>) {
        self.io_bytes
            .set(self.io_bytes.get() + chunk.mem_bytes() as u64);
    }

    /// Visits every valid `(coords, value)` pair inside `[lo, hi)`,
    /// charging IO for each touched chunk. Chunks outside the box are
    /// pruned by ID, like Subarray.
    pub fn scan_range(&self, lo: &[usize], hi: &[usize], mut visit: impl FnMut(&[usize], f64)) {
        let selected: std::collections::HashSet<ChunkId> =
            self.mapper.chunks_in_range(lo, hi).into_iter().collect();
        for (id, chunk) in &self.chunks {
            if !selected.contains(id) {
                continue;
            }
            self.charge(chunk);
            let origin = self.mapper.chunk_origin(*id);
            let extent = self.mapper.chunk_extent(*id);
            let mut coords = vec![0usize; origin.len()];
            for (local, v) in chunk.iter_valid() {
                Mapper::unravel(&origin, &extent, local, &mut coords);
                if Mapper::in_range(&coords, lo, hi) {
                    visit(&coords, v);
                }
            }
        }
    }

    /// Average of valid cells in a range (Q1/Q3-style).
    pub fn range_avg(&self, lo: &[usize], hi: &[usize], pred: impl Fn(f64) -> bool) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        self.scan_range(lo, hi, |_, v| {
            if pred(v) {
                sum += v;
                n += 1;
            }
        });
        (n > 0).then(|| sum / n as f64)
    }

    /// Count of valid cells in a range matching a predicate (Q4-style).
    pub fn range_count(&self, lo: &[usize], hi: &[usize], pred: impl Fn(f64) -> bool) -> usize {
        let mut n = 0usize;
        self.scan_range(lo, hi, |_, v| {
            if pred(v) {
                n += 1;
            }
        });
        n
    }

    /// Spatial density (Q5-style): buckets valid cells in a range into
    /// `cell_size`-wide spatial groups over the first two dimensions and
    /// returns the groups holding more than `threshold` observations.
    pub fn range_density(
        &self,
        lo: &[usize],
        hi: &[usize],
        cell_size: usize,
        threshold: usize,
    ) -> Vec<((u64, u64), usize)> {
        let mut counts = std::collections::HashMap::<(u64, u64), usize>::new();
        self.scan_range(lo, hi, |coords, _| {
            let key = (
                (coords[0] / cell_size) as u64,
                (coords[1] / cell_size) as u64,
            );
            *counts.entry(key).or_insert(0) += 1;
        });
        let mut out: Vec<_> = counts.into_iter().filter(|(_, c)| *c > threshold).collect();
        out.sort_unstable();
        out
    }

    /// Block-mean regrid of a range (Q2-style): averages aligned `k × k`
    /// groups of the first two dimensions, returning `(block coords,
    /// mean)`.
    pub fn range_regrid(&self, lo: &[usize], hi: &[usize], k: usize) -> Vec<((u64, u64), f64)> {
        let mut acc = std::collections::HashMap::<(u64, u64), (f64, usize)>::new();
        self.scan_range(lo, hi, |coords, v| {
            let key = ((coords[0] / k) as u64, (coords[1] / k) as u64);
            let e = acc.entry(key).or_insert((0.0, 0));
            e.0 += v;
            e.1 += 1;
        });
        let mut out: Vec<_> = acc
            .into_iter()
            .map(|(k, (s, n))| (k, s / n as f64))
            .collect();
        out.sort_unstable_by_key(|e| e.0);
        out
    }

    /// `y = M·x` over a 2-D array interpreted as a matrix, charging IO for
    /// every block (Fig. 10's SciDB column).
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.meta.rank(), 2, "matvec needs a matrix");
        assert_eq!(x.len(), self.meta.dims()[1]);
        let mut out = vec![0.0; self.meta.dims()[0]];
        for (id, chunk) in &self.chunks {
            self.charge(chunk);
            let origin = self.mapper.chunk_origin(*id);
            let extent = self.mapper.chunk_extent(*id);
            for (local, v) in chunk.iter_valid() {
                let r = origin[0] + local % extent[0];
                let c = origin[1] + local / extent[0];
                out[r] += v * x[c];
            }
        }
        out
    }

    /// Total stored bytes.
    pub fn mem_bytes(&self) -> usize {
        self.chunks.iter().map(|(_, c)| c.mem_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> LocalArrayEngine {
        LocalArrayEngine::ingest(ArrayMeta::new(vec![40, 40], vec![16, 16]), |c| {
            c[0].is_multiple_of(2).then(|| (c[0] * 100 + c[1]) as f64)
        })
    }

    #[test]
    fn range_avg_matches_manual_computation() {
        let e = engine();
        let got = e.range_avg(&[10, 5], &[20, 15], |_| true).unwrap();
        let vals: Vec<f64> = (10..20)
            .filter(|x| x % 2 == 0)
            .flat_map(|x| (5..15).map(move |y| (x * 100 + y) as f64))
            .collect();
        let expected = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((got - expected).abs() < 1e-9);
    }

    #[test]
    fn io_is_charged_per_touched_chunk() {
        let e = engine();
        e.range_avg(&[0, 0], &[8, 8], |_| true);
        let one_chunk = e.io_bytes();
        assert!(one_chunk > 0);
        e.reset_io();
        e.range_avg(&[0, 0], &[40, 40], |_| true);
        assert!(e.io_bytes() > 3 * one_chunk, "full scan touches all chunks");
        assert!(e.modeled_io_time() > Duration::ZERO);
    }

    #[test]
    fn density_and_regrid_queries() {
        let e = LocalArrayEngine::ingest(ArrayMeta::new(vec![8, 8], vec![4, 4]), |c| {
            Some((c[0] + c[1]) as f64)
        });
        let dense_groups = e.range_density(&[0, 0], &[8, 8], 4, 10);
        assert_eq!(dense_groups.len(), 4, "each 4x4 group holds 16 > 10 cells");

        let regrid = e.range_regrid(&[0, 0], &[8, 8], 4);
        assert_eq!(regrid.len(), 4);
        let ((_, _), top_left) = regrid[0];
        // mean of (x+y) for x,y in 0..4 = 3.
        assert!((top_left - 3.0).abs() < 1e-9);
    }

    #[test]
    fn matvec_matches_reference() {
        let e = LocalArrayEngine::ingest(ArrayMeta::new(vec![6, 5], vec![4, 4]), |c| {
            Some((c[0] * 5 + c[1] + 1) as f64)
        });
        let x: Vec<f64> = (0..5).map(|i| i as f64).collect();
        let y = e.matvec(&x);
        for (r, &got) in y.iter().enumerate().take(6) {
            let expected: f64 = (0..5).map(|c| ((r * 5 + c + 1) * c) as f64).sum();
            assert!((got - expected).abs() < 1e-9, "row {r}");
        }
    }
}
