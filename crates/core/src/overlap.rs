//! Overlap (ghost cells) and window operators (paper §III-A1).
//!
//! Operators that combine a cell with its neighbours (blurring, regridding,
//! interpolation) would need data from adjacent chunks at every chunk
//! boundary — a shuffle per window operation. Spangle instead lets a chunk
//! carry `overlap` extra cells along each dimension at ingest time; window
//! operators then run entirely chunk-locally.

use crate::array::ArrayRdd;
use crate::chunk::{Chunk, ChunkPolicy};
use crate::element::Element;
use crate::meta::{ArrayMeta, ChunkId};
use spangle_bitmask::Bitmask;
use spangle_dataflow::rdd::sources::GeneratedRdd;
use spangle_dataflow::{HashPartitioner, MemSize, Partitioner, Rdd, SpangleContext};
use std::sync::Arc;

/// A chunk whose payload covers its core box *plus* a halo of neighbour
/// cells (clipped at the array boundary).
#[derive(Clone, Debug)]
pub struct OverlapChunk<E: Element> {
    /// Origin of the expanded (halo-included) box in global coordinates.
    pub expanded_origin: Vec<usize>,
    /// Extent of the expanded box.
    pub expanded_extent: Vec<usize>,
    /// Origin of the core box.
    pub core_origin: Vec<usize>,
    /// Extent of the core box.
    pub core_extent: Vec<usize>,
    /// Values over the expanded box, row-major by dimension 0.
    pub payload: Vec<E>,
    /// Validity over the expanded box.
    pub mask: Bitmask,
}

impl<E: Element> MemSize for OverlapChunk<E> {
    fn mem_size(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.payload.len() * std::mem::size_of::<E>()
            + self.mask.mem_size()
            + (self.expanded_origin.len() * 4) * std::mem::size_of::<usize>()
    }
}

impl<E: Element> OverlapChunk<E> {
    /// Value at *global* coordinates, or `None` if null or outside the
    /// expanded box.
    pub fn get_global(&self, pos: &[usize]) -> Option<E> {
        let mut idx = 0usize;
        let mut stride = 1usize;
        for (i, &p) in pos.iter().enumerate() {
            if p < self.expanded_origin[i] || p >= self.expanded_origin[i] + self.expanded_extent[i]
            {
                return None;
            }
            idx += (p - self.expanded_origin[i]) * stride;
            stride *= self.expanded_extent[i];
        }
        self.mask.get(idx).then(|| self.payload[idx])
    }
}

/// An array whose chunks carry halo cells, supporting shuffle-free window
/// operators.
pub struct OverlapArrayRdd<E: Element> {
    ctx: SpangleContext,
    meta: Arc<ArrayMeta>,
    halo: Vec<usize>,
    policy: ChunkPolicy,
    rdd: Rdd<(ChunkId, OverlapChunk<E>)>,
}

impl<E: Element> OverlapArrayRdd<E> {
    /// Ingests an array with `halo` overlap cells per dimension; `f` is the
    /// deterministic cell generator, exactly as in
    /// [`crate::array::ArrayBuilder::ingest`].
    pub fn ingest(
        ctx: &SpangleContext,
        meta: ArrayMeta,
        halo: Vec<usize>,
        policy: ChunkPolicy,
        f: impl Fn(&[usize]) -> Option<E> + Send + Sync + 'static,
    ) -> Self {
        assert_eq!(halo.len(), meta.rank(), "halo rank mismatch");
        let meta = Arc::new(meta);
        let num_partitions = ctx.num_executors() * 2;
        let gen_meta = meta.clone();
        let gen_halo = halo.clone();
        let f = Arc::new(f);
        let rdd = GeneratedRdd::create(ctx, num_partitions, move |p| {
            let partitioner = HashPartitioner::new(num_partitions);
            let mapper = gen_meta.mapper();
            let mut out = Vec::new();
            for chunk_id in 0..mapper.num_chunks() as u64 {
                if partitioner.partition(&chunk_id) != p {
                    continue;
                }
                let core_origin = mapper.chunk_origin(chunk_id);
                let core_extent = mapper.chunk_extent(chunk_id);
                let expanded_origin: Vec<usize> = core_origin
                    .iter()
                    .zip(&gen_halo)
                    .map(|(&o, &h)| o.saturating_sub(h))
                    .collect();
                let expanded_end: Vec<usize> = core_origin
                    .iter()
                    .zip(core_extent.iter().zip(gen_halo.iter().zip(gen_meta.dims())))
                    .map(|(&o, (&e, (&h, &d)))| (o + e + h).min(d))
                    .collect();
                let expanded_extent: Vec<usize> = expanded_origin
                    .iter()
                    .zip(&expanded_end)
                    .map(|(&o, &e)| e - o)
                    .collect();
                let volume: usize = expanded_extent.iter().product();
                let mut payload = vec![E::default(); volume];
                let mut mask = Bitmask::zeros(volume);
                let mut any_core_valid = false;
                let mut pos = vec![0usize; expanded_origin.len()];
                for (idx, slot) in payload.iter_mut().enumerate() {
                    crate::meta::Mapper::unravel(&expanded_origin, &expanded_extent, idx, &mut pos);
                    if let Some(v) = f(&pos) {
                        *slot = v;
                        mask.set(idx, true);
                        let in_core = pos
                            .iter()
                            .zip(core_origin.iter().zip(&core_extent))
                            .all(|(&p, (&o, &e))| p >= o && p < o + e);
                        any_core_valid |= in_core;
                    }
                }
                if any_core_valid {
                    out.push((
                        chunk_id,
                        OverlapChunk {
                            expanded_origin: expanded_origin.clone(),
                            expanded_extent,
                            core_origin,
                            core_extent,
                            payload,
                            mask,
                        },
                    ));
                }
            }
            out
        });
        let sig = Partitioner::<u64>::sig(&HashPartitioner::new(num_partitions));
        let rdd = rdd.assert_partitioned(sig);
        OverlapArrayRdd {
            ctx: ctx.clone(),
            meta,
            halo,
            policy,
            rdd,
        }
    }

    /// Array geometry.
    pub fn meta(&self) -> &ArrayMeta {
        &self.meta
    }

    /// Halo width per dimension.
    pub fn halo(&self) -> &[usize] {
        &self.halo
    }

    /// The underlying RDD.
    pub fn rdd(&self) -> &Rdd<(ChunkId, OverlapChunk<E>)> {
        &self.rdd
    }

    /// Drops the halo, yielding a plain [`ArrayRdd`].
    pub fn to_array(&self) -> ArrayRdd<E> {
        let meta = self.meta.clone();
        let policy = self.policy;
        let rdd = self.rdd.flat_map(move |(id, oc)| {
            let mapper = meta.mapper();
            let volume = mapper.chunk_volume(id);
            let mut cells = Vec::new();
            for local in 0..volume {
                let pos = mapper.global_coords_of(id, local);
                if let Some(v) = oc.get_global(&pos) {
                    cells.push((local, v));
                }
            }
            Chunk::from_cells(volume, cells, &policy)
                .map(|c| (id, c))
                .into_iter()
                .collect::<Vec<_>>()
        });
        ArrayRdd::from_parts(&self.ctx, self.meta.clone(), self.policy, rdd)
    }
}

impl OverlapArrayRdd<f64> {
    /// Box-window mean with per-dimension radii: each valid core cell
    /// becomes the mean of the valid cells in its `Π(2rᵢ+1)` neighbourhood
    /// (pass radius 0 for dimensions the window should not cross, e.g.
    /// time). Requires `halo[i] >= radii[i]`, which is what makes the
    /// operator shuffle-free.
    pub fn window_mean(&self, radii: &[usize]) -> ArrayRdd<f64> {
        assert_eq!(radii.len(), self.meta.rank(), "one radius per dimension");
        assert!(
            self.halo.iter().zip(radii).all(|(&h, &r)| h >= r),
            "window radii {radii:?} exceed the ingested halo {:?}",
            self.halo
        );
        let radii = radii.to_vec();
        let meta = self.meta.clone();
        let policy = self.policy;
        let rdd = self.rdd.flat_map(move |(id, oc)| {
            let mapper = meta.mapper();
            let volume = mapper.chunk_volume(id);
            let mut cells = Vec::new();
            for local in 0..volume {
                let pos = mapper.global_coords_of(id, local);
                if oc.get_global(&pos).is_none() {
                    continue; // output validity follows input validity
                }
                let mut sum = 0.0;
                let mut n = 0usize;
                // Enumerate the neighbourhood box clipped to the array.
                let lo: Vec<usize> = pos
                    .iter()
                    .zip(&radii)
                    .map(|(&p, &r)| p.saturating_sub(r))
                    .collect();
                let hi: Vec<usize> = pos
                    .iter()
                    .zip(meta.dims().iter().zip(&radii))
                    .map(|(&p, (&d, &r))| (p + r + 1).min(d))
                    .collect();
                let mut cursor = lo.clone();
                'outer: loop {
                    if let Some(v) = oc.get_global(&cursor) {
                        sum += v;
                        n += 1;
                    }
                    let mut d = 0;
                    loop {
                        cursor[d] += 1;
                        if cursor[d] < hi[d] {
                            break;
                        }
                        cursor[d] = lo[d];
                        d += 1;
                        if d == cursor.len() {
                            break 'outer;
                        }
                    }
                }
                if n > 0 {
                    cells.push((local, sum / n as f64));
                }
            }
            Chunk::from_cells(volume, cells, &policy)
                .map(|c| (id, c))
                .into_iter()
                .collect::<Vec<_>>()
        });
        ArrayRdd::from_parts(&self.ctx, self.meta.clone(), self.policy, rdd)
    }
}

impl<E: Element> ArrayRdd<E> {
    /// Regrids by block-averaging aligned blocks of per-dimension extents
    /// `factors` (the Q2 operation; pass `1` for dimensions that keep
    /// their resolution, e.g. time). Requires every chunk dimension and
    /// array dimension to be divisible by its factor, which keeps each
    /// output block inside one input chunk — the whole regrid is then
    /// chunk-local.
    pub fn regrid_mean(&self, factors: &[usize]) -> ArrayRdd<f64>
    where
        E: Into<f64>,
    {
        let meta = self.meta_arc();
        assert_eq!(factors.len(), meta.rank(), "one factor per dimension");
        assert!(factors.iter().all(|&k| k > 0), "factors must be positive");
        assert!(
            meta.dims().iter().zip(factors).all(|(d, k)| d % k == 0),
            "array dims {:?} not divisible by regrid factors {factors:?}",
            meta.dims()
        );
        assert!(
            meta.chunk_shape()
                .iter()
                .zip(factors)
                .all(|(c, k)| c % k == 0),
            "chunk shape {:?} not divisible by regrid factors {factors:?}",
            meta.chunk_shape()
        );
        let out_meta = Arc::new(ArrayMeta::new(
            meta.dims()
                .iter()
                .zip(factors)
                .map(|(d, k)| d / k)
                .collect(),
            meta.chunk_shape()
                .iter()
                .zip(factors)
                .map(|(c, k)| c / k)
                .collect(),
        ));
        let factors = factors.to_vec();
        let policy = self.policy();
        let in_meta = meta.clone();
        let gen_out_meta = out_meta.clone();
        let rdd = self.rdd().flat_map(move |(id, chunk)| {
            let in_mapper = in_meta.mapper();
            let out_mapper = gen_out_meta.mapper();
            // Input chunk id == output chunk id: the grids coincide.
            let out_volume = out_mapper.chunk_volume(id);
            let mut sums = vec![0.0f64; out_volume];
            let mut counts = vec![0usize; out_volume];
            for (local, v) in chunk.iter_valid() {
                let pos = in_mapper.global_coords_of(id, local);
                let out_pos: Vec<usize> = pos.iter().zip(&factors).map(|(&p, &k)| p / k).collect();
                let out_local = out_mapper.local_index_of(&out_pos);
                sums[out_local] += v.into();
                counts[out_local] += 1;
            }
            let cells: Vec<(usize, f64)> = sums
                .into_iter()
                .zip(counts)
                .enumerate()
                .filter(|(_, (_, n))| *n > 0)
                .map(|(i, (s, n))| (i, s / n as f64))
                .collect();
            Chunk::from_cells(out_volume, cells, &policy)
                .map(|c| (id, c))
                .into_iter()
                .collect::<Vec<_>>()
        });
        ArrayRdd::from_parts(self.context(), out_meta, policy, rdd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArrayBuilder;

    #[test]
    fn overlap_chunks_expose_neighbour_cells() {
        let ctx = SpangleContext::new(2);
        let ov = OverlapArrayRdd::ingest(
            &ctx,
            ArrayMeta::new(vec![16, 16], vec![8, 8]),
            vec![2, 2],
            ChunkPolicy::default(),
            |c| Some((c[0] * 100 + c[1]) as f64),
        );
        // Chunk 3 is at origin (8, 8); its expanded box starts at (6, 6).
        let chunks = ov.rdd().collect().unwrap();
        let (_, oc) = chunks.iter().find(|(id, _)| *id == 3).unwrap();
        assert_eq!(oc.expanded_origin, vec![6, 6]);
        assert_eq!(oc.expanded_extent, vec![10, 10]);
        assert_eq!(oc.get_global(&[6, 7]), Some(607.0));
        assert_eq!(oc.get_global(&[5, 7]), None, "outside the halo");
    }

    #[test]
    fn to_array_recovers_the_core_cells() {
        let ctx = SpangleContext::new(2);
        let f = |c: &[usize]| (!c[0].is_multiple_of(3)).then_some((c[0] + c[1]) as f64);
        let ov = OverlapArrayRdd::ingest(
            &ctx,
            ArrayMeta::new(vec![20, 10], vec![8, 8]),
            vec![1, 1],
            ChunkPolicy::default(),
            f,
        );
        let direct = ArrayBuilder::new(&ctx, ArrayMeta::new(vec![20, 10], vec![8, 8]))
            .ingest(f)
            .build();
        assert_eq!(
            ov.to_array().collect_cells().unwrap(),
            direct.collect_cells().unwrap()
        );
    }

    #[test]
    fn window_mean_matches_reference_and_is_shuffle_free() {
        let ctx = SpangleContext::new(2);
        let f = |c: &[usize]| Some((c[0] * 10 + c[1]) as f64);
        let ov = OverlapArrayRdd::ingest(
            &ctx,
            ArrayMeta::new(vec![12, 12], vec![4, 4]),
            vec![1, 1],
            ChunkPolicy::default(),
            f,
        );
        let before = ctx.metrics_snapshot();
        let blurred = ov.window_mean(&[1, 1]);
        let dense = blurred.to_dense().unwrap();
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(delta.shuffle_write_bytes, 0, "window op must stay local");

        let mapper = blurred.meta().mapper();
        for x in 0..12usize {
            for y in 0..12usize {
                let mut sum = 0.0;
                let mut n = 0;
                for dx in -1i64..=1 {
                    for dy in -1i64..=1 {
                        let (nx, ny) = (x as i64 + dx, y as i64 + dy);
                        if (0..12).contains(&nx) && (0..12).contains(&ny) {
                            sum += (nx * 10 + ny) as f64;
                            n += 1;
                        }
                    }
                }
                let got = dense[mapper.global_linear_index(&[x, y])].unwrap();
                assert!((got - sum / n as f64).abs() < 1e-9, "({x},{y})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceed the ingested halo")]
    fn window_radius_beyond_halo_is_rejected() {
        let ctx = SpangleContext::new(1);
        let ov = OverlapArrayRdd::ingest(
            &ctx,
            ArrayMeta::new(vec![8, 8], vec![4, 4]),
            vec![1, 1],
            ChunkPolicy::default(),
            |_| Some(1.0f64),
        );
        let _ = ov.window_mean(&[2, 2]);
    }

    #[test]
    fn regrid_mean_averages_aligned_blocks() {
        let ctx = SpangleContext::new(2);
        let arr = ArrayBuilder::new(&ctx, ArrayMeta::new(vec![8, 8], vec![4, 4]))
            .ingest(|c| Some((c[0] * 8 + c[1]) as f64))
            .build();
        let before = ctx.metrics_snapshot();
        let regridded = arr.regrid_mean(&[2, 2]);
        let dense = regridded.to_dense().unwrap();
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(delta.shuffle_write_bytes, 0, "aligned regrid stays local");
        assert_eq!(regridded.meta().dims(), &[4, 4]);
        let mapper = regridded.meta().mapper();
        for bx in 0..4usize {
            for by in 0..4usize {
                let mut sum = 0.0;
                for x in bx * 2..bx * 2 + 2 {
                    for y in by * 2..by * 2 + 2 {
                        sum += (x * 8 + y) as f64;
                    }
                }
                let got = dense[mapper.global_linear_index(&[bx, by])].unwrap();
                assert!((got - sum / 4.0).abs() < 1e-9, "block ({bx},{by})");
            }
        }
    }

    #[test]
    fn regrid_mean_ignores_null_cells() {
        let ctx = SpangleContext::new(2);
        let arr = ArrayBuilder::new(&ctx, ArrayMeta::new(vec![4, 4], vec![4, 4]))
            .ingest(|c| (c[0] == 0).then_some(10.0f64))
            .build();
        let regridded = arr.regrid_mean(&[2, 2]);
        let cells = regridded.collect_cells().unwrap();
        // Each 2x2 block in the x=0 column has two valid cells of 10.0.
        assert_eq!(cells, vec![(vec![0, 0], 10.0), (vec![0, 1], 10.0)]);
    }
}
