//! MaskRDD and multi-attribute arrays (paper §III-B1, Fig. 4).
//!
//! A [`SpangleArray`] manages several attributes of the same geometry in a
//! column-store layout: one [`ArrayRdd`] per attribute. Operators must keep
//! all attributes consistent — a cell filtered out of one attribute is
//! invalid in all of them. Doing that eagerly rewrites every attribute per
//! operator; the **MaskRDD** instead accumulates validity changes in a
//! single hidden mask RDD and applies them to an attribute only when it is
//! actually materialised ("every operation transforms only a MaskRDD, and
//! Spangle evaluates all ArrayRDDs on-demand"). Fig. 9b measures exactly
//! this lazy/eager contrast.

use crate::array::{range_mask, ArrayRdd};
use crate::element::Element;
use crate::meta::{ArrayMeta, ChunkId};
use spangle_bitmask::Bitmask;
use spangle_dataflow::{HashPartitioner, JobError, MemSize, PairRdd, Rdd};
use std::sync::Arc;

/// Newtype for bitmasks travelling through RDDs (gives them shuffle-size
/// accounting).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttrMask(pub Bitmask);

impl MemSize for AttrMask {
    fn mem_size(&self) -> usize {
        self.0.mem_size()
    }

    fn spillable() -> bool {
        true
    }

    fn spill_encode(&self, out: &mut Vec<u8>) {
        self.0.write_le(out);
    }

    fn spill_decode(input: &mut spangle_dataflow::SpillCursor<'_>) -> Option<Self> {
        let (mask, used) = Bitmask::read_le(input.rest())?;
        input.skip(used)?;
        Some(AttrMask(mask))
    }
}

/// The hidden validity attribute: per-chunk global masks.
#[derive(Clone)]
pub struct MaskRdd {
    rdd: Rdd<(ChunkId, AttrMask)>,
}

impl MaskRdd {
    /// Wraps a mask RDD.
    pub fn new(rdd: Rdd<(ChunkId, AttrMask)>) -> Self {
        MaskRdd { rdd }
    }

    /// Derives the initial mask RDD from an attribute's chunk validity.
    pub fn from_array<E: Element>(array: &ArrayRdd<E>) -> Self {
        let rdd = array.rdd().map(|(id, chunk)| (id, AttrMask(chunk.mask())));
        let rdd = match array.rdd().partitioner_sig() {
            Some(sig) => rdd.assert_partitioned(sig),
            None => rdd,
        };
        MaskRdd { rdd }
    }

    /// The underlying RDD.
    pub fn rdd(&self) -> &Rdd<(ChunkId, AttrMask)> {
        &self.rdd
    }

    /// Transforms every chunk mask (chunk IDs preserved); masks becoming
    /// all-zero are dropped, like empty chunks.
    pub fn transform(
        &self,
        f: impl Fn(ChunkId, &Bitmask) -> Bitmask + Send + Sync + 'static,
    ) -> MaskRdd {
        let rdd = self.rdd.flat_map(move |(id, m)| {
            let new = f(id, &m.0);
            if new.all_zero() {
                Vec::new()
            } else {
                vec![(id, AttrMask(new))]
            }
        });
        let rdd = match self.rdd.partitioner_sig() {
            Some(sig) => rdd.assert_partitioned(sig),
            None => rdd,
        };
        MaskRdd { rdd }
    }

    /// Combines two mask RDDs chunk-wise with AND or OR (Fig. 4c): the
    /// mask half of the Join operator.
    pub fn combine(&self, other: &MaskRdd, mode: JoinMode) -> MaskRdd {
        let n = self.rdd.num_partitions();
        let partitioner: Arc<HashPartitioner> = Arc::new(HashPartitioner::new(n));
        let rdd = self
            .rdd
            .cogroup(other.rdd(), partitioner)
            .flat_map(move |(id, (ls, rs))| {
                let l = ls.into_iter().next();
                let r = rs.into_iter().next();
                let out = match (l, r, mode) {
                    (Some(a), Some(b), JoinMode::And) => Some(a.0.and(&b.0)),
                    (Some(a), Some(b), JoinMode::Or) => Some(a.0.or(&b.0)),
                    // AND with a missing (all-empty) chunk is empty.
                    (_, _, JoinMode::And) => None,
                    (Some(a), None, JoinMode::Or) | (None, Some(a), JoinMode::Or) => Some(a.0),
                    (None, None, JoinMode::Or) => None,
                };
                out.filter(|m| !m.all_zero())
                    .map(|m| (id, AttrMask(m)))
                    .into_iter()
                    .collect::<Vec<_>>()
            });
        MaskRdd { rdd }
    }

    /// Marks the mask RDD for caching.
    pub fn persist(&self) -> &Self {
        self.rdd.persist();
        self
    }
}

/// AND-join vs OR-join (§V-A3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinMode {
    /// Valid iff valid in both inputs.
    And,
    /// Valid iff valid in either input.
    Or,
}

/// A multi-attribute array in column-store layout, optionally carrying a
/// lazy MaskRDD.
pub struct SpangleArray<E: Element> {
    meta: Arc<ArrayMeta>,
    attributes: Vec<(String, ArrayRdd<E>)>,
    /// Pending validity, applied on materialisation. `None` means the
    /// array runs in *eager* mode: operators rewrite every attribute.
    mask: Option<MaskRdd>,
}

impl<E: Element> Clone for SpangleArray<E> {
    fn clone(&self) -> Self {
        SpangleArray {
            meta: self.meta.clone(),
            attributes: self.attributes.clone(),
            mask: self.mask.clone(),
        }
    }
}

impl<E: Element> SpangleArray<E> {
    /// Bundles attributes of identical geometry. `lazy` selects MaskRDD
    /// mode; eager mode reproduces the "without MaskRDD" baseline of
    /// Fig. 9b.
    pub fn new(attributes: Vec<(String, ArrayRdd<E>)>, lazy: bool) -> Self {
        assert!(
            !attributes.is_empty(),
            "an array needs at least one attribute"
        );
        let meta = attributes[0].1.meta_arc();
        for (name, a) in &attributes[1..] {
            assert_eq!(*a.meta(), *meta, "attribute {name} has mismatched geometry");
        }
        let mask = lazy.then(|| {
            // The initial global mask is the OR of all attribute masks: a
            // cell is live when any attribute observed it.
            let mut m = MaskRdd::from_array(&attributes[0].1);
            for (_, a) in &attributes[1..] {
                m = m.combine(&MaskRdd::from_array(a), JoinMode::Or);
            }
            m
        });
        SpangleArray {
            meta,
            attributes,
            mask,
        }
    }

    /// Whether the array runs with a lazy MaskRDD.
    pub fn is_lazy(&self) -> bool {
        self.mask.is_some()
    }

    /// Array geometry.
    pub fn meta(&self) -> &ArrayMeta {
        &self.meta
    }

    /// Attribute names, in column order.
    pub fn attribute_names(&self) -> Vec<&str> {
        self.attributes.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Number of attributes.
    pub fn num_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// Subarray over all attributes. Lazy mode touches only the MaskRDD;
    /// eager mode rewrites every attribute.
    pub fn subarray(&self, lo: &[usize], hi: &[usize]) -> SpangleArray<E> {
        match &self.mask {
            Some(mask) => {
                let meta = self.meta.clone();
                let lo = lo.to_vec();
                let hi = hi.to_vec();
                let new_mask = mask.transform(move |id, m| {
                    let mapper = meta.mapper();
                    m.and(&range_mask(&mapper, id, m.len(), &lo, &hi))
                });
                SpangleArray {
                    meta: self.meta.clone(),
                    attributes: self.attributes.clone(),
                    mask: Some(new_mask),
                }
            }
            None => SpangleArray {
                meta: self.meta.clone(),
                attributes: self
                    .attributes
                    .iter()
                    .map(|(n, a)| (n.clone(), a.subarray(lo, hi)))
                    .collect(),
                mask: None,
            },
        }
    }

    /// Filter on one attribute's values; the invalidation propagates to
    /// every attribute (via the MaskRDD in lazy mode, eagerly otherwise).
    pub fn filter_attribute(
        &self,
        attr: &str,
        pred: impl Fn(E) -> bool + Send + Sync + Clone + 'static,
    ) -> SpangleArray<E> {
        let idx = self.attribute_index(attr);
        match &self.mask {
            Some(mask) => {
                // Compute the surviving-cell mask of the filtered attribute
                // and AND it into the global mask.
                let filtered = self.attributes[idx].1.filter(pred);
                let new_mask = mask.combine(&MaskRdd::from_array(&filtered), JoinMode::And);
                SpangleArray {
                    meta: self.meta.clone(),
                    attributes: self.attributes.clone(),
                    mask: Some(new_mask),
                }
            }
            None => {
                // Eager: restrict every attribute by the filter survivors.
                let filtered = self.attributes[idx].1.filter(pred);
                let survivor_mask = MaskRdd::from_array(&filtered);
                let attributes = self
                    .attributes
                    .iter()
                    .map(|(n, a)| (n.clone(), apply_mask(a, &survivor_mask)))
                    .collect();
                SpangleArray {
                    meta: self.meta.clone(),
                    attributes,
                    mask: None,
                }
            }
        }
    }

    /// Joins two arrays (§V-A3): the result carries both inputs'
    /// attributes, with validity combined by `mode`.
    pub fn join(&self, other: &SpangleArray<E>, mode: JoinMode) -> SpangleArray<E> {
        assert_eq!(*self.meta, *other.meta, "join requires identical geometry");
        let mut attributes = self.attributes.clone();
        attributes.extend(other.attributes.iter().cloned());
        match (&self.mask, &other.mask) {
            (Some(a), Some(b)) => SpangleArray {
                meta: self.meta.clone(),
                attributes,
                mask: Some(a.combine(b, mode)),
            },
            _ => {
                // Eager join: materialise a combined mask and apply to all.
                let a = self.global_mask();
                let b = other.global_mask();
                let combined = a.combine(&b, mode);
                let attributes = attributes
                    .into_iter()
                    .map(|(n, arr)| (n.clone(), apply_mask(&arr, &combined)))
                    .collect();
                SpangleArray {
                    meta: self.meta.clone(),
                    attributes,
                    mask: None,
                }
            }
        }
    }

    /// Materialises one attribute with every pending mask applied.
    pub fn materialize(&self, attr: &str) -> ArrayRdd<E> {
        let idx = self.attribute_index(attr);
        match &self.mask {
            Some(mask) => apply_mask(&self.attributes[idx].1, mask),
            None => self.attributes[idx].1.clone(),
        }
    }

    /// Number of valid cells of one attribute after pending masks.
    pub fn count_valid(&self, attr: &str) -> Result<usize, JobError> {
        self.materialize(attr).count_valid()
    }

    /// The current global validity as a mask RDD (lazy: the pending mask;
    /// eager: the OR of attribute masks).
    pub fn global_mask(&self) -> MaskRdd {
        match &self.mask {
            Some(m) => m.clone(),
            None => {
                let mut m = MaskRdd::from_array(&self.attributes[0].1);
                for (_, a) in &self.attributes[1..] {
                    m = m.combine(&MaskRdd::from_array(a), JoinMode::Or);
                }
                m
            }
        }
    }

    fn attribute_index(&self, attr: &str) -> usize {
        self.attributes
            .iter()
            .position(|(n, _)| n == attr)
            .unwrap_or_else(|| panic!("unknown attribute {attr:?}"))
    }
}

/// Restricts an attribute's chunks by a mask RDD (AND), dropping emptied
/// chunks. Local when co-partitioned.
fn apply_mask<E: Element>(array: &ArrayRdd<E>, mask: &MaskRdd) -> ArrayRdd<E> {
    let n = array.rdd().num_partitions();
    let partitioner: Arc<HashPartitioner> = Arc::new(HashPartitioner::new(n));
    let policy = array.policy();
    let rdd =
        array
            .rdd()
            .cogroup(mask.rdd(), partitioner)
            .flat_map(move |(id, (chunks, masks))| {
                let chunk = chunks.into_iter().next();
                let mask = masks.into_iter().next();
                match (chunk, mask) {
                    (Some(c), Some(m)) => c
                        .restrict(&m.0, &policy)
                        .map(|c| (id, c))
                        .into_iter()
                        .collect::<Vec<_>>(),
                    // No mask chunk: every cell of this chunk is invalid.
                    _ => Vec::new(),
                }
            });
    ArrayRdd::from_parts(array.context(), array.meta_arc(), policy, rdd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArrayBuilder;
    use crate::meta::ArrayMeta;
    use spangle_dataflow::SpangleContext;

    fn bands(ctx: &SpangleContext, lazy: bool) -> SpangleArray<f64> {
        let meta = ArrayMeta::new(vec![40, 40], vec![16, 16]);
        // Band u: valid on x<30, value x; band g: valid everywhere, value y.
        let u = ArrayBuilder::new(ctx, meta.clone())
            .ingest(|c| (c[0] < 30).then(|| c[0] as f64))
            .build();
        let g = ArrayBuilder::new(ctx, meta)
            .ingest(|c| Some(c[1] as f64))
            .build();
        SpangleArray::new(vec![("u".into(), u), ("g".into(), g)], lazy)
    }

    #[test]
    fn lazy_and_eager_agree_on_subarray() {
        let ctx = SpangleContext::new(4);
        for lazy in [true, false] {
            let arr = bands(&ctx, lazy).subarray(&[5, 5], &[25, 20]);
            assert_eq!(arr.count_valid("u").unwrap(), 20 * 15, "lazy={lazy}");
            assert_eq!(arr.count_valid("g").unwrap(), 20 * 15, "lazy={lazy}");
        }
    }

    #[test]
    fn filter_on_one_attribute_restricts_all() {
        let ctx = SpangleContext::new(4);
        for lazy in [true, false] {
            // Keep cells with u >= 10: x in 10..30.
            let arr = bands(&ctx, lazy).filter_attribute("u", |v| v >= 10.0);
            assert_eq!(arr.count_valid("u").unwrap(), 20 * 40, "lazy={lazy}");
            assert_eq!(
                arr.count_valid("g").unwrap(),
                20 * 40,
                "filter must propagate to g (lazy={lazy})"
            );
        }
    }

    #[test]
    fn chained_operators_compose_on_the_mask() {
        let ctx = SpangleContext::new(4);
        for lazy in [true, false] {
            let arr = bands(&ctx, lazy)
                .subarray(&[0, 0], &[40, 20])
                .filter_attribute("u", |v| v >= 10.0)
                .subarray(&[0, 5], &[40, 40]);
            // x in 10..30, y in 5..20.
            assert_eq!(arr.count_valid("g").unwrap(), 20 * 15, "lazy={lazy}");
        }
    }

    #[test]
    fn materialized_values_match_source() {
        let ctx = SpangleContext::new(4);
        let arr = bands(&ctx, true).filter_attribute("u", |v| v >= 10.0);
        let g = arr.materialize("g");
        assert_eq!(g.get(&[15, 7]).unwrap(), Some(7.0));
        assert_eq!(g.get(&[5, 7]).unwrap(), None, "masked out by the u filter");
    }

    #[test]
    fn or_join_unions_validity_and_attributes() {
        let ctx = SpangleContext::new(4);
        let meta = ArrayMeta::new(vec![20, 20], vec![8, 8]);
        let left = ArrayBuilder::new(&ctx, meta.clone())
            .ingest(|c| (c[0] < 10).then_some(1.0f64))
            .build();
        let right = ArrayBuilder::new(&ctx, meta)
            .ingest(|c| (c[0] >= 15).then_some(2.0f64))
            .build();
        let a = SpangleArray::new(vec![("a".into(), left)], true);
        let b = SpangleArray::new(vec![("b".into(), right)], true);

        let and = a.join(&b, JoinMode::And);
        assert_eq!(and.num_attributes(), 2);
        assert_eq!(and.count_valid("a").unwrap(), 0, "disjoint AND is empty");

        let or = a.join(&b, JoinMode::Or);
        // a has values only where it was valid, even though the OR mask is
        // wider.
        assert_eq!(or.count_valid("a").unwrap(), 10 * 20);
        assert_eq!(or.count_valid("b").unwrap(), 5 * 20);
    }

    #[test]
    fn lazy_mode_defers_attribute_work() {
        let ctx = SpangleContext::new(4);
        let lazy = bands(&ctx, true);
        let before = ctx.metrics_snapshot();
        // Chain three operators without materialising.
        let chained = lazy
            .subarray(&[0, 0], &[40, 20])
            .filter_attribute("u", |v| v >= 10.0)
            .subarray(&[0, 5], &[40, 40]);
        let after_build = ctx.metrics_snapshot() - before;
        assert_eq!(
            after_build.tasks_run, 0,
            "building the lazy pipeline must not run any task"
        );
        // One materialisation pays once.
        assert!(chained.count_valid("g").unwrap() > 0);
    }
}
