//! Chunks: payload + bitmask, in the paper's three management modes (§IV-A).
//!
//! A chunk clusters geographically contiguous cells. Its payload holds the
//! actual values (physically a one-dimensional array), its bitmask records
//! which cells are valid. Depending on density, Spangle keeps the chunk in
//! one of three modes:
//!
//! * **Dense** — payload stores every slot; random access is direct
//!   indexing.
//! * **Sparse** — invalid cells are physically dropped; accessing a cell
//!   requires the *rank* of its position in the mask. A milestone
//!   directory accelerates random access (the "opt" series of Fig. 8).
//! * **SuperSparse** — so few valid cells that the flat mask itself would
//!   dominate; the mask is stored hierarchically (§IV-A's two-level
//!   bitmask).
//!
//! A chunk is immutable once built; operators produce new chunks.

use crate::element::Element;
use spangle_bitmask::{Bitmask, DeltaCursor, HierarchicalBitmask, Milestones};
use spangle_dataflow::MemSize;

/// Density thresholds steering mode selection.
#[derive(Clone, Copy, Debug)]
pub struct ChunkPolicy {
    /// Chunks at or above this density stay dense (no compression).
    pub dense_threshold: f64,
    /// Build the milestone rank directory for sparse chunks (the paper's
    /// "opt"); disable to reproduce the "naive" series of Fig. 8.
    pub build_milestones: bool,
}

impl Default for ChunkPolicy {
    fn default() -> Self {
        ChunkPolicy {
            dense_threshold: 0.5,
            build_milestones: true,
        }
    }
}

impl ChunkPolicy {
    /// Policy that always stores chunks dense (the SciSpark-like baseline
    /// and the `dense` series of Fig. 8/9a).
    pub fn always_dense() -> Self {
        ChunkPolicy {
            dense_threshold: 0.0,
            build_milestones: false,
        }
    }

    /// Default policy without the milestone directory — the `naive` series
    /// of Fig. 8.
    pub fn naive_sparse() -> Self {
        ChunkPolicy {
            build_milestones: false,
            ..ChunkPolicy::default()
        }
    }

    /// Picks a mode for a chunk of `volume` cells of which `valid` are set.
    pub fn mode_for(&self, volume: usize, valid: usize) -> ChunkMode {
        debug_assert!(valid <= volume);
        let density = if volume == 0 {
            0.0
        } else {
            valid as f64 / volume as f64
        };
        if density >= self.dense_threshold {
            ChunkMode::Dense
        } else if valid * 64 < volume {
            // The flat mask (1 bit/cell) outweighs the payload
            // (≤ 8 bytes/valid) — hierarchical compression pays off.
            ChunkMode::SuperSparse
        } else {
            ChunkMode::Sparse
        }
    }
}

/// Which of the three management modes a chunk is in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChunkMode {
    /// Every slot materialised; direct indexing.
    Dense,
    /// Invalid cells dropped; access ranks the bitmask.
    Sparse,
    /// Sparse payload plus a hierarchically compressed mask.
    SuperSparse,
}

/// One chunk of an ArrayRDD: payload plus validity.
#[derive(Clone, Debug)]
pub enum Chunk<E: Element> {
    /// Every slot materialised; clear mask bits mark nulls in place.
    Dense {
        /// One value per cell slot (invalid slots hold `E::default()`).
        payload: Vec<E>,
        /// Validity bits, one per slot.
        mask: Bitmask,
    },
    /// Only valid cells materialised, in mask order.
    Sparse {
        /// Values of the valid cells, in ascending offset order.
        payload: Vec<E>,
        /// Validity bits over the full volume.
        mask: Bitmask,
        /// Optional rank directory accelerating random access.
        milestones: Option<Milestones>,
    },
    /// Only valid cells materialised; the mask itself is compressed.
    SuperSparse {
        /// Values of the valid cells, in ascending offset order.
        payload: Vec<E>,
        /// Two-level compressed validity.
        mask: HierarchicalBitmask,
    },
}

impl<E: Element> Chunk<E> {
    /// Builds a chunk from a full slot vector and its validity mask,
    /// choosing the mode by `policy`. Returns `None` when no cell is valid
    /// — Spangle never creates empty chunks (§III-B).
    pub fn build(payload: Vec<E>, mask: Bitmask, policy: &ChunkPolicy) -> Option<Self> {
        assert_eq!(payload.len(), mask.len(), "payload/mask length mismatch");
        let valid = mask.count_ones();
        if valid == 0 {
            return None;
        }
        Some(match policy.mode_for(mask.len(), valid) {
            ChunkMode::Dense => Chunk::Dense { payload, mask },
            ChunkMode::Sparse => {
                let compact: Vec<E> = mask.iter_ones().map(|i| payload[i]).collect();
                let milestones = policy.build_milestones.then(|| Milestones::build(&mask));
                Chunk::Sparse {
                    payload: compact,
                    mask,
                    milestones,
                }
            }
            ChunkMode::SuperSparse => {
                let compact: Vec<E> = mask.iter_ones().map(|i| payload[i]).collect();
                Chunk::SuperSparse {
                    payload: compact,
                    mask: HierarchicalBitmask::compress(&mask),
                }
            }
        })
    }

    /// Builds directly from `(local offset, value)` pairs (offsets need not
    /// be sorted). Returns `None` when `cells` is empty.
    pub fn from_cells(
        volume: usize,
        cells: impl IntoIterator<Item = (usize, E)>,
        policy: &ChunkPolicy,
    ) -> Option<Self> {
        let mut payload = vec![E::default(); volume];
        let mut mask = Bitmask::zeros(volume);
        let mut any = false;
        for (off, v) in cells {
            payload[off] = v;
            mask.set(off, true);
            any = true;
        }
        if !any {
            return None;
        }
        Chunk::build(payload, mask, policy)
    }

    /// The mode this chunk is managed in.
    pub fn mode(&self) -> ChunkMode {
        match self {
            Chunk::Dense { .. } => ChunkMode::Dense,
            Chunk::Sparse { .. } => ChunkMode::Sparse,
            Chunk::SuperSparse { .. } => ChunkMode::SuperSparse,
        }
    }

    /// Number of cell slots (the chunk's clipped volume).
    pub fn volume(&self) -> usize {
        match self {
            Chunk::Dense { mask, .. } | Chunk::Sparse { mask, .. } => mask.len(),
            Chunk::SuperSparse { mask, .. } => mask.len(),
        }
    }

    /// Number of valid cells.
    pub fn valid_count(&self) -> usize {
        match self {
            Chunk::Dense { mask, .. } => mask.count_ones(),
            Chunk::Sparse { payload, .. } | Chunk::SuperSparse { payload, .. } => payload.len(),
        }
    }

    /// Fraction of valid cells.
    pub fn density(&self) -> f64 {
        if self.volume() == 0 {
            0.0
        } else {
            self.valid_count() as f64 / self.volume() as f64
        }
    }

    /// A copy of the validity mask as a flat bitmask.
    pub fn mask(&self) -> Bitmask {
        match self {
            Chunk::Dense { mask, .. } | Chunk::Sparse { mask, .. } => mask.clone(),
            Chunk::SuperSparse { mask, .. } => mask.decompress(),
        }
    }

    /// Random access: the value at local offset `i`, or `None` when the
    /// cell is null. Sparse chunks use the milestone directory when built,
    /// falling back to the naive full-prefix rank otherwise.
    pub fn get(&self, i: usize) -> Option<E> {
        match self {
            Chunk::Dense { payload, mask } => mask.get(i).then(|| payload[i]),
            Chunk::Sparse {
                payload,
                mask,
                milestones,
            } => {
                if !mask.get(i) {
                    return None;
                }
                let rank = match milestones {
                    Some(ms) => ms.rank(mask, i),
                    None => mask.rank_naive(i),
                };
                Some(payload[rank])
            }
            Chunk::SuperSparse { payload, mask } => {
                if !mask.get(i) {
                    return None;
                }
                Some(payload[mask.rank(i)])
            }
        }
    }

    /// Random access forced onto the naive rank path, regardless of any
    /// milestone directory — the `naive` series of Fig. 8.
    pub fn get_naive(&self, i: usize) -> Option<E> {
        match self {
            Chunk::Sparse { payload, mask, .. } => {
                if !mask.get(i) {
                    return None;
                }
                Some(payload[mask.rank_naive(i)])
            }
            _ => self.get(i),
        }
    }

    /// Sequential scan of valid cells as `(local offset, value)` pairs, in
    /// offset order. Sparse chunks use the delta-count cursor (§IV-B1):
    /// payload slots are consumed in lockstep with the mask, so no rank is
    /// ever recomputed from scratch.
    pub fn iter_valid(&self) -> Box<dyn Iterator<Item = (usize, E)> + '_> {
        match self {
            Chunk::Dense { payload, mask } => {
                Box::new(mask.iter_ones().map(move |i| (i, payload[i])))
            }
            Chunk::Sparse { payload, mask, .. } => {
                // A DeltaCursor-style pairing: the k-th set bit owns payload
                // slot k.
                Box::new(
                    mask.iter_ones()
                        .enumerate()
                        .map(move |(slot, i)| (i, payload[slot])),
                )
            }
            Chunk::SuperSparse { payload, mask } => Box::new(
                mask.iter_ones()
                    .enumerate()
                    .map(move |(slot, i)| (i, payload[slot])),
            ),
        }
    }

    /// Sequential scan that *demonstrates* the delta-count discipline
    /// explicitly: ranks each valid position through a [`DeltaCursor`].
    /// Semantically identical to [`Chunk::iter_valid`]; used by the Fig. 8
    /// harness to time the sequential-access strategy in isolation.
    pub fn scan_with_delta_cursor(&self) -> Vec<(usize, E)> {
        match self {
            Chunk::Sparse { payload, mask, .. } => {
                let mut cursor = DeltaCursor::new(mask);
                mask.iter_ones()
                    .map(|i| {
                        let rank = cursor.rank(i);
                        (i, payload[rank])
                    })
                    .collect()
            }
            _ => self.iter_valid().collect(),
        }
    }

    /// Element-wise transformation of valid cells; mode is preserved.
    pub fn map_values<F: Element>(&self, f: impl Fn(E) -> F) -> Chunk<F> {
        match self {
            Chunk::Dense { payload, mask } => Chunk::Dense {
                payload: payload.iter().map(|&v| f(v)).collect(),
                mask: mask.clone(),
            },
            Chunk::Sparse {
                payload,
                mask,
                milestones,
            } => Chunk::Sparse {
                payload: payload.iter().map(|&v| f(v)).collect(),
                mask: mask.clone(),
                milestones: milestones.clone(),
            },
            Chunk::SuperSparse { payload, mask } => Chunk::SuperSparse {
                payload: payload.iter().map(|&v| f(v)).collect(),
                mask: mask.clone(),
            },
        }
    }

    /// Keeps only the cells whose bit is set in `keep` (bitwise AND of the
    /// validity mask, §V-A). Returns `None` when nothing survives.
    pub fn restrict(&self, keep: &Bitmask, policy: &ChunkPolicy) -> Option<Chunk<E>> {
        assert_eq!(
            keep.len(),
            self.volume(),
            "restriction mask length mismatch"
        );
        let new_mask = self.mask().and(keep);
        if new_mask.all_zero() {
            return None;
        }
        let mut payload = vec![E::default(); self.volume()];
        for (i, v) in self.iter_valid() {
            payload[i] = v;
        }
        Chunk::build(payload, new_mask, policy)
    }

    /// Keeps only cells satisfying `pred` — the per-chunk half of the
    /// Filter operator. Returns `None` when nothing survives.
    pub fn filter(&self, pred: impl Fn(E) -> bool, policy: &ChunkPolicy) -> Option<Chunk<E>> {
        let mut keep = Bitmask::zeros(self.volume());
        for (i, v) in self.iter_valid() {
            if pred(v) {
                keep.set(i, true);
            }
        }
        self.restrict(&keep, policy)
    }

    /// Rebuilds the chunk under a different policy (e.g. re-encoding a
    /// dense chunk sparsely). Returns `None` only for empty chunks, which
    /// cannot exist by construction.
    pub fn reencode(&self, policy: &ChunkPolicy) -> Option<Chunk<E>> {
        let mut payload = vec![E::default(); self.volume()];
        for (i, v) in self.iter_valid() {
            payload[i] = v;
        }
        Chunk::build(payload, self.mask(), policy)
    }

    /// Deep in-memory size in bytes — the quantity Fig. 9a plots per mode.
    pub fn mem_bytes(&self) -> usize {
        let header = std::mem::size_of::<Self>();
        match self {
            Chunk::Dense { payload, mask } => {
                header + payload.len() * std::mem::size_of::<E>() + mask.mem_size()
            }
            Chunk::Sparse {
                payload,
                mask,
                milestones,
            } => {
                header
                    + payload.len() * std::mem::size_of::<E>()
                    + mask.mem_size()
                    + milestones.as_ref().map_or(0, |m| m.mem_size())
            }
            Chunk::SuperSparse { payload, mask } => {
                header + payload.len() * std::mem::size_of::<E>() + mask.mem_size()
            }
        }
    }
}

impl<E: Element> MemSize for Chunk<E> {
    fn mem_size(&self) -> usize {
        self.mem_bytes()
    }

    fn spillable() -> bool {
        E::spillable()
    }

    fn spill_encode(&self, out: &mut Vec<u8>) {
        match self {
            Chunk::Dense { payload, mask } => {
                out.push(0);
                payload.spill_encode(out);
                mask.write_le(out);
            }
            Chunk::Sparse {
                payload,
                mask,
                milestones,
            } => {
                out.push(1);
                payload.spill_encode(out);
                mask.write_le(out);
                // The directory is derived data; a presence flag suffices
                // and it is rebuilt deterministically from the mask.
                out.push(milestones.is_some() as u8);
            }
            Chunk::SuperSparse { payload, mask } => {
                // The hierarchical mask round-trips through its flat form:
                // compress() is deterministic, so re-compressing on decode
                // reproduces the identical structure.
                out.push(2);
                payload.spill_encode(out);
                mask.decompress().write_le(out);
            }
        }
    }

    fn spill_decode(input: &mut spangle_dataflow::SpillCursor<'_>) -> Option<Self> {
        fn take_mask(input: &mut spangle_dataflow::SpillCursor<'_>) -> Option<Bitmask> {
            let (mask, used) = Bitmask::read_le(input.rest())?;
            input.skip(used)?;
            Some(mask)
        }
        match input.u8()? {
            0 => {
                let payload = Vec::<E>::spill_decode(input)?;
                let mask = take_mask(input)?;
                (payload.len() == mask.len()).then_some(Chunk::Dense { payload, mask })
            }
            1 => {
                let payload = Vec::<E>::spill_decode(input)?;
                let mask = take_mask(input)?;
                let milestones = match input.u8()? {
                    0 => None,
                    1 => Some(Milestones::build(&mask)),
                    _ => return None,
                };
                (payload.len() == mask.count_ones()).then_some(Chunk::Sparse {
                    payload,
                    mask,
                    milestones,
                })
            }
            2 => {
                let payload = Vec::<E>::spill_decode(input)?;
                let mask = take_mask(input)?;
                (payload.len() == mask.count_ones()).then_some(Chunk::SuperSparse {
                    payload,
                    mask: HierarchicalBitmask::compress(&mask),
                })
            }
            _ => None,
        }
    }
}

impl<E: Element> PartialEq for Chunk<E> {
    /// Logical equality: same volume, same valid cells, same values —
    /// regardless of mode.
    fn eq(&self, other: &Self) -> bool {
        self.volume() == other.volume()
            && self.valid_count() == other.valid_count()
            && self.iter_valid().eq(other.iter_valid())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_chunk(volume: usize, every: usize, policy: &ChunkPolicy) -> Chunk<f64> {
        let payload: Vec<f64> = (0..volume).map(|i| i as f64).collect();
        let mask = Bitmask::from_fn(volume, |i| i % every == 0);
        Chunk::build(payload, mask, policy).expect("non-empty chunk")
    }

    #[test]
    fn mode_selection_follows_density() {
        let policy = ChunkPolicy::default();
        assert_eq!(make_chunk(4096, 1, &policy).mode(), ChunkMode::Dense);
        assert_eq!(make_chunk(4096, 2, &policy).mode(), ChunkMode::Dense);
        assert_eq!(make_chunk(4096, 3, &policy).mode(), ChunkMode::Sparse);
        assert_eq!(make_chunk(4096, 50, &policy).mode(), ChunkMode::Sparse);
        // 4096 cells, 64ths of them valid => super-sparse boundary: valid =
        // 41 < 64 => super-sparse.
        assert_eq!(
            make_chunk(4096, 100, &policy).mode(),
            ChunkMode::SuperSparse
        );
    }

    #[test]
    fn empty_chunks_are_never_created() {
        let policy = ChunkPolicy::default();
        let mask = Bitmask::zeros(100);
        assert!(Chunk::<f64>::build(vec![0.0; 100], mask, &policy).is_none());
        assert!(Chunk::<f64>::from_cells(100, std::iter::empty(), &policy).is_none());
    }

    #[test]
    fn get_agrees_across_all_modes() {
        for policy in [
            ChunkPolicy::always_dense(),
            ChunkPolicy::default(),
            ChunkPolicy::naive_sparse(),
        ] {
            for every in [2, 7, 100] {
                let c = make_chunk(1000, every, &policy);
                for i in 0usize..1000 {
                    let expected = i.is_multiple_of(every).then_some(i as f64);
                    assert_eq!(c.get(i), expected, "mode={:?} i={i}", c.mode());
                    assert_eq!(c.get_naive(i), expected);
                }
            }
        }
    }

    #[test]
    fn iter_valid_matches_get() {
        for every in [3, 64, 200] {
            let c = make_chunk(2000, every, &ChunkPolicy::default());
            let via_iter: Vec<(usize, f64)> = c.iter_valid().collect();
            let via_get: Vec<(usize, f64)> =
                (0..2000).filter_map(|i| c.get(i).map(|v| (i, v))).collect();
            assert_eq!(via_iter, via_get);
            assert_eq!(c.scan_with_delta_cursor(), via_iter);
        }
    }

    #[test]
    fn from_cells_accepts_unsorted_offsets() {
        let policy = ChunkPolicy::default();
        let c = Chunk::from_cells(10, vec![(7, 7.0), (2, 2.0), (5, 5.0)], &policy).unwrap();
        assert_eq!(c.valid_count(), 3);
        assert_eq!(c.get(2), Some(2.0));
        assert_eq!(c.get(5), Some(5.0));
        assert_eq!(c.get(7), Some(7.0));
        assert_eq!(c.get(0), None);
    }

    #[test]
    fn filter_drops_non_matching_cells() {
        let c = make_chunk(100, 2, &ChunkPolicy::default());
        let f = c.filter(|v| v >= 50.0, &ChunkPolicy::default()).unwrap();
        assert_eq!(f.valid_count(), 25);
        assert_eq!(f.get(48), None);
        assert_eq!(f.get(50), Some(50.0));
        // Filtering everything out yields no chunk.
        assert!(c.filter(|_| false, &ChunkPolicy::default()).is_none());
    }

    #[test]
    fn restrict_is_bitwise_and_semantics() {
        let c = make_chunk(100, 2, &ChunkPolicy::default());
        let keep = Bitmask::from_fn(100, |i| i % 3 == 0);
        let r = c.restrict(&keep, &ChunkPolicy::default()).unwrap();
        for i in 0usize..100 {
            let expected = (i.is_multiple_of(2) && i.is_multiple_of(3)).then_some(i as f64);
            assert_eq!(r.get(i), expected, "i={i}");
        }
    }

    #[test]
    fn map_values_transforms_and_preserves_mode() {
        let c = make_chunk(1000, 7, &ChunkPolicy::default());
        let m = c.map_values(|v| v * 2.0);
        assert_eq!(m.mode(), c.mode());
        for i in 0..1000 {
            assert_eq!(m.get(i), c.get(i).map(|v| v * 2.0));
        }
    }

    #[test]
    fn sparse_mode_is_smaller_than_dense_for_sparse_data() {
        let dense = make_chunk(65536, 20, &ChunkPolicy::always_dense());
        let sparse = make_chunk(65536, 20, &ChunkPolicy::default());
        assert_eq!(dense.mode(), ChunkMode::Dense);
        assert_eq!(sparse.mode(), ChunkMode::Sparse);
        assert!(
            sparse.mem_bytes() * 2 < dense.mem_bytes(),
            "sparse {} vs dense {}",
            sparse.mem_bytes(),
            dense.mem_bytes()
        );
    }

    #[test]
    fn super_sparse_mask_compression_pays_off() {
        let sparse = Chunk::Sparse {
            payload: vec![1.0f64; 4],
            mask: Bitmask::from_fn(1 << 18, |i| i % (1 << 16) == 0),
            milestones: None,
        };
        let ss = sparse.reencode(&ChunkPolicy::default()).unwrap();
        assert_eq!(ss.mode(), ChunkMode::SuperSparse);
        assert!(ss.mem_bytes() * 4 < sparse.mem_bytes());
        assert_eq!(ss.valid_count(), 4);
    }

    #[test]
    fn reencode_preserves_logical_content() {
        let c = make_chunk(5000, 9, &ChunkPolicy::always_dense());
        let r = c.reencode(&ChunkPolicy::default()).unwrap();
        assert_eq!(c, r);
        assert_ne!(c.mode(), r.mode());
    }

    #[test]
    fn spill_codec_roundtrips_every_mode() {
        assert!(<Chunk<f64> as MemSize>::spillable());
        for (every, policy) in [
            (1, ChunkPolicy::default()),      // dense
            (7, ChunkPolicy::default()),      // sparse with milestones
            (7, ChunkPolicy::naive_sparse()), // sparse without milestones
            (200, ChunkPolicy::default()),    // super-sparse
        ] {
            let c = make_chunk(4096, every, &policy);
            let mut buf = Vec::new();
            c.spill_encode(&mut buf);
            let mut cur = spangle_dataflow::SpillCursor::new(&buf);
            let back = Chunk::<f64>::spill_decode(&mut cur).expect("decode");
            assert_eq!(cur.remaining(), 0, "codec must be self-delimiting");
            // Bit-identical, not merely logically equal: same mode, same
            // physical size, same cells.
            assert_eq!(back.mode(), c.mode());
            assert_eq!(back.mem_bytes(), c.mem_bytes());
            assert_eq!(back, c);
            assert!(
                (0..4096).all(|i| back.get(i) == c.get(i)),
                "random access must agree after rehydration"
            );
        }
    }

    #[test]
    fn spill_codec_rejects_corrupt_frames() {
        let c = make_chunk(1000, 7, &ChunkPolicy::default());
        let mut buf = Vec::new();
        c.spill_encode(&mut buf);
        let truncated = &buf[..buf.len() - 3];
        assert!(
            Chunk::<f64>::spill_decode(&mut spangle_dataflow::SpillCursor::new(truncated))
                .is_none()
        );
        let mut bad_tag = buf.clone();
        bad_tag[0] = 9;
        assert!(
            Chunk::<f64>::spill_decode(&mut spangle_dataflow::SpillCursor::new(&bad_tag)).is_none()
        );
    }

    #[test]
    fn logical_equality_ignores_mode() {
        let a = make_chunk(1000, 5, &ChunkPolicy::always_dense());
        let b = make_chunk(1000, 5, &ChunkPolicy::default());
        assert_eq!(a, b);
        let c = make_chunk(1000, 7, &ChunkPolicy::default());
        assert_ne!(a, c);
    }
}
