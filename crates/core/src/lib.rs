#![warn(missing_docs)]

//! ArrayRDD, chunks, MaskRDD and array operators: the Spangle core.
//!
//! This crate implements the paper's primary contribution on top of the
//! [`spangle_dataflow`] runtime:
//!
//! * [`meta`] — array metadata and the coordinate↔ChunkID mapper
//!   (Algorithm 1);
//! * [`chunk`] — payload+bitmask chunks in Dense / Sparse / SuperSparse
//!   modes (§IV);
//! * [`mod@array`] — the [`ArrayRdd`] itself with the Subarray / Filter /
//!   Join(zip) operators (§V-A);
//! * [`aggregate`] — the Aggregator framework (§V-B);
//! * [`maskrdd`] — multi-attribute arrays in column-store layout with the
//!   lazily evaluated MaskRDD (§III-B1);
//! * [`accumulator`] — the directional Accumulator in synchronous and
//!   asynchronous flavours (§V-B);
//! * [`overlap`] — overlap (ghost-cell) ingest and window operators
//!   (§III-A1).

pub mod accumulator;
pub mod aggregate;
pub mod array;
pub mod chunk;
pub mod element;
pub mod maskrdd;
pub mod meta;
pub mod overlap;

pub use aggregate::Aggregator;
pub use array::{ArrayBuilder, ArrayRdd};
pub use chunk::{Chunk, ChunkMode, ChunkPolicy};
pub use element::Element;
pub use maskrdd::{AttrMask, JoinMode, MaskRdd, SpangleArray};
pub use meta::{ArrayMeta, ChunkId, Mapper};
