//! Cell element types.

use spangle_dataflow::MemSize;

/// Types storable in array cells.
///
/// Spangle's metadata records "data types of attributes"; any fixed-size
/// numeric type qualifies. `Default` provides the padding value written
/// into dense payload slots whose mask bit is clear (the slot content is
/// never observable through the public API — validity always comes from the
/// bitmask, never from a sentinel value, which is exactly the paper's
/// argument for bitmasks over NaN/INT_MAX encodings in §II-B).
pub trait Element:
    Copy + Send + Sync + PartialEq + PartialOrd + std::fmt::Debug + Default + MemSize + 'static
{
}

impl<T> Element for T where
    T: Copy + Send + Sync + PartialEq + PartialOrd + std::fmt::Debug + Default + MemSize + 'static
{
}
