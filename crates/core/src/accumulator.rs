//! The directional Accumulator (paper §V-B).
//!
//! `Accumulator` scans cell values along one axis (e.g. a running sum per
//! row). Null cells are skipped: they stay null and do not contribute. Two
//! execution strategies are provided, as in the paper:
//!
//! * **synchronous** — chunk waves along the axis run one after another,
//!   each wave waiting for the carry values of the previous one ("all
//!   chunks require synchronization in the chunk boundary at every step");
//! * **asynchronous** — every chunk scans internally in parallel, then a
//!   single reconciliation distributes per-line offsets ("every chunk
//!   computes its values internally and then synchronizes").
//!
//! For associative operators the two strategies agree exactly; the paper's
//! accuracy caveat concerns non-associative updates, which this API rules
//! out by construction.

use crate::array::ArrayRdd;
use crate::chunk::Chunk;
use crate::element::Element;
use crate::meta::ChunkId;
use spangle_dataflow::JobError;
use std::collections::HashMap;
use std::sync::Arc;

/// A directional scan along `axis` with an associative operator.
pub struct Accumulator<E: Element> {
    axis: usize,
    op: Arc<dyn Fn(E, E) -> E + Send + Sync>,
    zero: E,
}

/// Key of one scan line: the global coordinates with the scan axis removed.
type LineKey = Vec<u64>;

impl<E: Element> Accumulator<E> {
    /// A scan along `axis` combining with `op` starting from `zero`.
    /// `op` must be associative with `zero` as identity.
    pub fn new(axis: usize, zero: E, op: impl Fn(E, E) -> E + Send + Sync + 'static) -> Self {
        Accumulator {
            axis,
            zero,
            op: Arc::new(op),
        }
    }

    /// Running sum along `axis`.
    pub fn prefix_sum(axis: usize) -> Accumulator<f64> {
        Accumulator::new(axis, 0.0, |a, b| a + b)
    }

    /// Synchronous execution: one job per chunk wave along the axis, with
    /// a driver barrier carrying boundary values between waves.
    pub fn run_sync(&self, array: &ArrayRdd<E>) -> Result<ArrayRdd<E>, JobError> {
        let axis = self.axis;
        let meta = array.meta_arc();
        assert!(axis < meta.rank(), "axis out of range");
        let ctx = array.context().clone();
        let waves = meta.grid_dims()[axis];
        let policy = array.policy();

        let mut carries: HashMap<LineKey, E> = HashMap::new();
        let mut wave_outputs: Option<spangle_dataflow::Rdd<(ChunkId, Chunk<E>)>> = None;

        for w in 0..waves {
            let wave_meta = meta.clone();
            let wave = array
                .rdd()
                .filter(move |(id, _)| wave_meta.mapper().grid_coords_of(*id)[axis] == w);
            let carry_list: Vec<(LineKey, E)> =
                carries.iter().map(|(k, v)| (k.clone(), *v)).collect();
            let bc = ctx.broadcast(carry_list);
            let op = self.op.clone();
            let zero = self.zero;
            let scan_meta = meta.clone();
            let scanned = wave.map(move |(id, chunk)| {
                let carries: HashMap<LineKey, E> = bc.value().iter().cloned().collect();
                let mapper = scan_meta.mapper();
                let (new_chunk, _totals) =
                    scan_chunk(&mapper, id, &chunk, axis, &carries, zero, &*op, &policy);
                (id, new_chunk)
            });
            scanned.persist();
            // Barrier: pull this wave's end-of-line totals to the driver.
            let op = self.op.clone();
            let zero = self.zero;
            let total_meta = meta.clone();
            let carry_list: Vec<(LineKey, E)> =
                carries.iter().map(|(k, v)| (k.clone(), *v)).collect();
            let bc2 = ctx.broadcast(carry_list);
            let totals: Vec<(LineKey, E)> = array
                .rdd()
                .filter(move |(id, _)| total_meta.mapper().grid_coords_of(*id)[axis] == w)
                .flat_map({
                    let meta = meta.clone();
                    move |(id, chunk)| {
                        let carries: HashMap<LineKey, E> = bc2.value().iter().cloned().collect();
                        let mapper = meta.mapper();
                        let (_, totals) =
                            scan_chunk(&mapper, id, &chunk, axis, &carries, zero, &*op, &policy);
                        totals
                    }
                })
                .collect()?;
            for (k, v) in totals {
                carries.insert(k, v);
            }
            wave_outputs = Some(match wave_outputs {
                None => scanned,
                Some(prev) => prev.union(&scanned),
            });
        }

        let rdd = wave_outputs.unwrap_or_else(|| ctx.parallelize(Vec::new(), 1));
        Ok(ArrayRdd::from_parts(&ctx, meta, policy, rdd))
    }

    /// Asynchronous execution: one parallel internal-scan job, one driver
    /// reconciliation, one parallel offset-application job.
    pub fn run_async(&self, array: &ArrayRdd<E>) -> Result<ArrayRdd<E>, JobError> {
        let axis = self.axis;
        let meta = array.meta_arc();
        assert!(axis < meta.rank(), "axis out of range");
        let ctx = array.context().clone();
        let policy = array.policy();

        // Phase 1: internal scans (no carries) + per-line totals.
        let op = self.op.clone();
        let zero = self.zero;
        let scan_meta = meta.clone();
        let internal = array.rdd().map(move |(id, chunk)| {
            let mapper = scan_meta.mapper();
            let empty = HashMap::new();
            let (new_chunk, totals) =
                scan_chunk(&mapper, id, &chunk, axis, &empty, zero, &*op, &policy);
            (id, (new_chunk, totals))
        });
        internal.persist();

        // Phase 2 (driver): exclusive prefix of chunk totals per line.
        let totals: Vec<(ChunkId, Vec<(LineKey, E)>)> =
            internal.map(|(id, (_, totals))| (id, totals)).collect()?;
        let mapper = meta.mapper();
        // Order chunks per line by their axis grid coordinate.
        let mut per_line: HashMap<LineKey, Vec<(usize, ChunkId, E)>> = HashMap::new();
        for (id, chunk_totals) in totals {
            let g = mapper.grid_coords_of(id)[axis];
            for (line, total) in chunk_totals {
                per_line.entry(line).or_default().push((g, id, total));
            }
        }
        // offsets[(chunk, line)] = combined totals of all earlier chunks.
        let mut offsets: Vec<((u64, LineKey), E)> = Vec::new();
        for (line, mut entries) in per_line {
            entries.sort_by_key(|(g, _, _)| *g);
            let mut running = self.zero;
            for (_, id, total) in entries {
                offsets.push(((id, line.clone()), running));
                running = (self.op)(running, total);
            }
        }

        // Phase 3: apply offsets.
        let bc = ctx.broadcast(offsets);
        let op = self.op.clone();
        let zero = self.zero;
        let apply_meta = meta.clone();
        let rdd = internal.map(move |(id, (chunk, _))| {
            let offsets: HashMap<(u64, LineKey), E> = bc.value().iter().cloned().collect();
            let mapper = apply_meta.mapper();
            let adjusted = chunk.map_values(|v| v); // clone via identity
                                                    // Rebuild with per-line offsets applied.
            let volume = adjusted.volume();
            let mut cells = Vec::with_capacity(adjusted.valid_count());
            for (local, v) in adjusted.iter_valid() {
                let coords = mapper.global_coords_of(id, local);
                let line = line_key(&coords, axis);
                let off = offsets.get(&(id, line)).copied().unwrap_or(zero);
                cells.push((local, op(off, v)));
            }
            let chunk =
                Chunk::from_cells(volume, cells, &policy).expect("scan preserves non-emptiness");
            (id, chunk)
        });
        Ok(ArrayRdd::from_parts(&ctx, meta, policy, rdd))
    }
}

fn line_key(coords: &[usize], axis: usize) -> LineKey {
    coords
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != axis)
        .map(|(_, &c)| c as u64)
        .collect()
}

/// Scans one chunk along `axis` starting each line from its carry.
/// Returns the scanned chunk and the end-of-chunk running value per line.
#[allow(clippy::too_many_arguments)]
fn scan_chunk<E: Element>(
    mapper: &crate::meta::Mapper,
    id: ChunkId,
    chunk: &Chunk<E>,
    axis: usize,
    carries: &HashMap<LineKey, E>,
    zero: E,
    op: &(dyn Fn(E, E) -> E + Send + Sync),
    policy: &crate::chunk::ChunkPolicy,
) -> (Chunk<E>, Vec<(LineKey, E)>) {
    let volume = chunk.volume();
    // Valid cells in local-offset order are already in axis-ascending order
    // *within* a line only if axis is dimension 0; in general we bucket per
    // line and sort by the axis coordinate.
    let mut lines: HashMap<LineKey, Vec<(usize, usize, E)>> = HashMap::new();
    for (local, v) in chunk.iter_valid() {
        let coords = mapper.global_coords_of(id, local);
        lines
            .entry(line_key(&coords, axis))
            .or_default()
            .push((coords[axis], local, v));
    }
    let mut cells = Vec::with_capacity(chunk.valid_count());
    let mut totals = Vec::with_capacity(lines.len());
    for (line, mut entries) in lines {
        entries.sort_by_key(|(a, _, _)| *a);
        let mut running = carries.get(&line).copied().unwrap_or(zero);
        for (_, local, v) in entries {
            running = op(running, v);
            cells.push((local, running));
        }
        totals.push((line, running));
    }
    let chunk = Chunk::from_cells(volume, cells, policy).expect("chunk was non-empty");
    (chunk, totals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArrayBuilder;
    use crate::meta::ArrayMeta;
    use spangle_dataflow::SpangleContext;

    fn reference_prefix_sum(
        dims: (usize, usize),
        axis: usize,
        value: impl Fn(usize, usize) -> Option<f64>,
    ) -> Vec<Option<f64>> {
        let (nx, ny) = dims;
        let mut out = vec![None; nx * ny];
        if axis == 0 {
            for y in 0..ny {
                let mut run = 0.0;
                for x in 0..nx {
                    if let Some(v) = value(x, y) {
                        run += v;
                        out[x + y * nx] = Some(run);
                    }
                }
            }
        } else {
            for x in 0..nx {
                let mut run = 0.0;
                for y in 0..ny {
                    if let Some(v) = value(x, y) {
                        run += v;
                        out[x + y * nx] = Some(run);
                    }
                }
            }
        }
        out
    }

    fn check(axis: usize, holes: bool) {
        let ctx = SpangleContext::new(4);
        let value = move |x: usize, y: usize| {
            if holes && (x + y).is_multiple_of(3) {
                None
            } else {
                Some((x * 7 + y) as f64)
            }
        };
        let arr = ArrayBuilder::new(&ctx, ArrayMeta::new(vec![20, 12], vec![6, 5]))
            .ingest(move |c| value(c[0], c[1]))
            .build();
        let expected = reference_prefix_sum((20, 12), axis, value);

        let acc = Accumulator::<f64>::prefix_sum(axis);
        let sync = acc.run_sync(&arr).unwrap().to_dense().unwrap();
        let asyn = acc.run_async(&arr).unwrap().to_dense().unwrap();

        let mapper = arr.meta().mapper();
        for x in 0..20 {
            for y in 0..12 {
                let i = mapper.global_linear_index(&[x, y]);
                let to_cmp = [("sync", sync[i]), ("async", asyn[i])];
                for (name, got) in to_cmp {
                    match (got, expected[x + y * 20]) {
                        (Some(a), Some(b)) => {
                            assert!((a - b).abs() < 1e-9, "{name} ({x},{y}): {a} vs {b}")
                        }
                        (a, b) => assert_eq!(a, b, "{name} ({x},{y})"),
                    }
                }
            }
        }
    }

    #[test]
    fn prefix_sum_along_axis0_matches_reference() {
        check(0, false);
    }

    #[test]
    fn prefix_sum_along_axis1_matches_reference() {
        check(1, false);
    }

    #[test]
    fn prefix_sum_skips_null_cells() {
        check(0, true);
        check(1, true);
    }

    #[test]
    fn sync_runs_one_wave_per_grid_step() {
        let ctx = SpangleContext::new(2);
        let arr = ArrayBuilder::new(&ctx, ArrayMeta::new(vec![32, 8], vec![8, 8]))
            .ingest(|_| Some(1.0f64))
            .build();
        arr.persist();
        arr.count_valid().unwrap();
        let before = ctx.metrics_snapshot();
        Accumulator::<f64>::prefix_sum(0).run_sync(&arr).unwrap();
        let delta = ctx.metrics_snapshot() - before;
        // 4 waves, each runs a totals-collection job (the barrier).
        assert!(
            delta.stages_run >= 4,
            "expected at least one stage per wave, got {}",
            delta.stages_run
        );
    }

    #[test]
    fn async_mode_uses_constant_number_of_jobs() {
        let ctx = SpangleContext::new(2);
        let arr = ArrayBuilder::new(&ctx, ArrayMeta::new(vec![64, 8], vec![8, 8]))
            .ingest(|_| Some(1.0f64))
            .build();
        arr.persist();
        arr.count_valid().unwrap();
        let before = ctx.metrics_snapshot();
        let out = Accumulator::<f64>::prefix_sum(0).run_async(&arr).unwrap();
        out.count_valid().unwrap();
        let delta = ctx.metrics_snapshot() - before;
        // Internal-scan job + offset application job (+ the final count):
        // independent of the 8 grid waves.
        assert!(
            delta.stages_run <= 3,
            "async should not scale stages with grid depth, got {}",
            delta.stages_run
        );
    }
}
