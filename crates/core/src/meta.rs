//! Array metadata and the logical↔physical mapper (paper §III-C).
//!
//! The metadata records the array geometry (dimension sizes, chunk shape);
//! the [`Mapper`] translates between global coordinates, chunk IDs and
//! local in-chunk offsets. Algorithm 1 of the paper — computing a chunk ID
//! from coordinates — is [`Mapper::chunk_id_of`].

/// A chunk's unique identifier: a single value standing in for the chunk's
/// multi-dimensional grid position, "which supports any arrays without
/// concern for the number of dimensions and reduces the key length".
pub type ChunkId = u64;

/// Description of one array: dimension sizes, chunking, and optional
/// dimension names ("such as x-axis and y-axis names", §V-B).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrayMeta {
    /// Size of each dimension, in cells.
    dims: Vec<usize>,
    /// Chunk extent along each dimension.
    chunk_shape: Vec<usize>,
    /// Optional dimension names, e.g. `["lon", "lat", "time"]`.
    dim_names: Option<Vec<String>>,
}

impl ArrayMeta {
    /// Describes an array of extent `dims` cut into chunks of extent
    /// `chunk_shape` (edge chunks are clipped when the sizes do not
    /// divide).
    ///
    /// # Panics
    /// Panics on empty/zero dimensions or mismatched ranks.
    pub fn new(dims: Vec<usize>, chunk_shape: Vec<usize>) -> Self {
        assert!(!dims.is_empty(), "arrays need at least one dimension");
        assert_eq!(
            dims.len(),
            chunk_shape.len(),
            "chunk shape rank must match array rank"
        );
        assert!(dims.iter().all(|&d| d > 0), "zero-sized dimension");
        assert!(chunk_shape.iter().all(|&c| c > 0), "zero-sized chunk");
        ArrayMeta {
            dims,
            chunk_shape,
            dim_names: None,
        }
    }

    /// Attaches dimension names (one per dimension, unique).
    pub fn with_dim_names(mut self, names: &[&str]) -> Self {
        assert_eq!(names.len(), self.dims.len(), "one name per dimension");
        for (i, a) in names.iter().enumerate() {
            for b in &names[i + 1..] {
                assert_ne!(a, b, "duplicate dimension name {a:?}");
            }
        }
        self.dim_names = Some(names.iter().map(|s| s.to_string()).collect());
        self
    }

    /// The dimension names, if set.
    pub fn dim_names(&self) -> Option<Vec<&str>> {
        self.dim_names
            .as_ref()
            .map(|n| n.iter().map(String::as_str).collect())
    }

    /// Index of the named dimension.
    ///
    /// # Panics
    /// Panics when names were never attached or the name is unknown.
    pub fn dim_index(&self, name: &str) -> usize {
        let names = self
            .dim_names
            .as_ref()
            .expect("this array has no dimension names; use ArrayMeta::with_dim_names");
        names
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("unknown dimension {name:?}, have {names:?}"))
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Chunk extent along each dimension.
    pub fn chunk_shape(&self) -> &[usize] {
        &self.chunk_shape
    }

    /// Total number of cells.
    pub fn volume(&self) -> usize {
        self.dims.iter().product()
    }

    /// Number of chunks along each dimension (`ceil(dim / chunk)`).
    pub fn grid_dims(&self) -> Vec<usize> {
        self.dims
            .iter()
            .zip(&self.chunk_shape)
            .map(|(&d, &c)| d.div_ceil(c))
            .collect()
    }

    /// Total number of chunk slots in the grid.
    pub fn num_chunks(&self) -> usize {
        self.grid_dims().iter().product()
    }

    /// The mapper for this geometry.
    pub fn mapper(&self) -> Mapper {
        Mapper::new(self.clone())
    }
}

/// Translates between coordinates, chunk IDs and local offsets.
///
/// Conventions: dimension 0 varies fastest, both in the chunk-ID numbering
/// (Algorithm 1: `length` accumulates over ascending `i`) and in the local
/// row-major-by-dim-0 cell layout.
#[derive(Clone, Debug)]
pub struct Mapper {
    meta: ArrayMeta,
    grid_dims: Vec<usize>,
}

impl Mapper {
    /// Builds the mapper for `meta`.
    pub fn new(meta: ArrayMeta) -> Self {
        let grid_dims = meta.grid_dims();
        Mapper { meta, grid_dims }
    }

    /// The geometry this mapper translates for.
    pub fn meta(&self) -> &ArrayMeta {
        &self.meta
    }

    /// Algorithm 1: chunk ID of the chunk containing `pos`.
    pub fn chunk_id_of(&self, pos: &[usize]) -> ChunkId {
        debug_assert_eq!(pos.len(), self.meta.rank());
        let mut chunk_id: u64 = 0;
        let mut length: u64 = 1;
        for (i, &p) in pos.iter().enumerate() {
            debug_assert!(p < self.meta.dims[i], "coordinate out of bounds");
            chunk_id += (p / self.meta.chunk_shape[i]) as u64 * length;
            length *= self.grid_dims[i] as u64;
        }
        chunk_id
    }

    /// Grid position (per-dimension chunk index) of a chunk ID.
    pub fn grid_coords_of(&self, chunk_id: ChunkId) -> Vec<usize> {
        let mut rem = chunk_id as usize;
        let mut out = Vec::with_capacity(self.meta.rank());
        for &g in &self.grid_dims {
            out.push(rem % g);
            rem /= g;
        }
        debug_assert_eq!(rem, 0, "chunk id out of range");
        out
    }

    /// Global coordinates of a chunk's origin (lowest corner).
    pub fn chunk_origin(&self, chunk_id: ChunkId) -> Vec<usize> {
        self.grid_coords_of(chunk_id)
            .iter()
            .zip(&self.meta.chunk_shape)
            .map(|(&g, &c)| g * c)
            .collect()
    }

    /// Actual extent of a chunk: the nominal chunk shape, clipped at the
    /// array boundary for edge chunks.
    pub fn chunk_extent(&self, chunk_id: ChunkId) -> Vec<usize> {
        let origin = self.chunk_origin(chunk_id);
        origin
            .iter()
            .zip(self.meta.chunk_shape.iter().zip(&self.meta.dims))
            .map(|(&o, (&c, &d))| c.min(d - o))
            .collect()
    }

    /// Number of cells in a chunk (after edge clipping).
    pub fn chunk_volume(&self, chunk_id: ChunkId) -> usize {
        self.chunk_extent(chunk_id).iter().product()
    }

    /// Local (in-chunk) offset of global coordinates `pos`, in the chunk's
    /// clipped row-major-by-dim-0 layout.
    pub fn local_index_of(&self, pos: &[usize]) -> usize {
        let chunk_id = self.chunk_id_of(pos);
        let origin = self.chunk_origin(chunk_id);
        let extent = self.chunk_extent(chunk_id);
        let mut idx = 0usize;
        let mut stride = 1usize;
        for i in 0..pos.len() {
            idx += (pos[i] - origin[i]) * stride;
            stride *= extent[i];
        }
        idx
    }

    /// Global coordinates of the cell at `local` offset inside `chunk_id`.
    pub fn global_coords_of(&self, chunk_id: ChunkId, local: usize) -> Vec<usize> {
        let mut out = vec![0; self.meta.rank()];
        let origin = self.chunk_origin(chunk_id);
        let extent = self.chunk_extent(chunk_id);
        Self::unravel(&origin, &extent, local, &mut out);
        out
    }

    /// Allocation-free coordinate decoding for hot loops: writes the
    /// global coordinates of `local` into `out`, given the chunk's
    /// pre-computed `origin` and `extent`.
    #[inline]
    pub fn unravel(origin: &[usize], extent: &[usize], local: usize, out: &mut [usize]) {
        let mut rem = local;
        for i in 0..origin.len() {
            out[i] = origin[i] + rem % extent[i];
            rem /= extent[i];
        }
        debug_assert_eq!(rem, 0, "local offset out of chunk");
    }

    /// Whether the chunk's box lies entirely inside `[lo, hi)` — lets
    /// Subarray pass interior chunks through untouched.
    pub fn chunk_within_range(&self, chunk_id: ChunkId, lo: &[usize], hi: &[usize]) -> bool {
        let origin = self.chunk_origin(chunk_id);
        let extent = self.chunk_extent(chunk_id);
        origin
            .iter()
            .zip(extent.iter().zip(lo.iter().zip(hi)))
            .all(|(&o, (&e, (&l, &h)))| o >= l && o + e <= h)
    }

    /// Total number of chunk slots.
    pub fn num_chunks(&self) -> usize {
        self.grid_dims.iter().product()
    }

    /// Iterates the IDs of all chunks intersecting the axis-aligned box
    /// `[lo, hi)` — the chunk-selection step of Subarray.
    pub fn chunks_in_range(&self, lo: &[usize], hi: &[usize]) -> Vec<ChunkId> {
        debug_assert_eq!(lo.len(), self.meta.rank());
        debug_assert_eq!(hi.len(), self.meta.rank());
        if lo.iter().zip(hi).any(|(l, h)| l >= h) {
            return Vec::new(); // empty cell box
        }
        // Grid-space bounds (inclusive lo, exclusive hi).
        let g_lo: Vec<usize> = lo
            .iter()
            .zip(&self.meta.chunk_shape)
            .map(|(&l, &c)| l / c)
            .collect();
        let g_hi: Vec<usize> = hi
            .iter()
            .zip(self.meta.chunk_shape.iter().zip(&self.grid_dims))
            .map(|(&h, (&c, &g))| h.div_ceil(c).min(g))
            .collect();
        if g_lo.iter().zip(&g_hi).any(|(l, h)| l >= h) {
            return Vec::new();
        }
        // Enumerate the grid box.
        let mut out = Vec::new();
        let mut cursor = g_lo.clone();
        loop {
            // Convert grid coords to chunk id.
            let mut id: u64 = 0;
            let mut stride: u64 = 1;
            for (c, g) in cursor.iter().zip(&self.grid_dims) {
                id += *c as u64 * stride;
                stride *= *g as u64;
            }
            out.push(id);
            // Odometer increment.
            let mut d = 0;
            loop {
                cursor[d] += 1;
                if cursor[d] < g_hi[d] {
                    break;
                }
                cursor[d] = g_lo[d];
                d += 1;
                if d == cursor.len() {
                    return out;
                }
            }
        }
    }

    /// Row-major (dim 0 fastest) linear index of `pos` over the whole
    /// array — the canonical cell ordering used by dense materialisation.
    pub fn global_linear_index(&self, pos: &[usize]) -> usize {
        let mut idx = 0usize;
        let mut stride = 1usize;
        for (p, d) in pos.iter().zip(self.meta.dims()) {
            debug_assert!(p < d);
            idx += p * stride;
            stride *= d;
        }
        idx
    }

    /// Whether global coordinates fall inside `[lo, hi)`.
    pub fn in_range(pos: &[usize], lo: &[usize], hi: &[usize]) -> bool {
        pos.iter()
            .zip(lo.iter().zip(hi))
            .all(|(&p, (&l, &h))| p >= l && p < h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapper_2d() -> Mapper {
        // 100 x 60 array in 32 x 32 chunks => 4 x 2 grid, edge clipping on
        // both dimensions.
        ArrayMeta::new(vec![100, 60], vec![32, 32]).mapper()
    }

    #[test]
    fn grid_dims_use_ceiling_division() {
        let m = mapper_2d();
        assert_eq!(m.meta().grid_dims(), vec![4, 2]);
        assert_eq!(m.num_chunks(), 8);
    }

    #[test]
    fn algorithm1_matches_manual_computation() {
        let m = mapper_2d();
        // pos (33, 40): grid (1, 1); id = 1*1 + 1*4 = 5.
        assert_eq!(m.chunk_id_of(&[33, 40]), 5);
        assert_eq!(m.chunk_id_of(&[0, 0]), 0);
        assert_eq!(m.chunk_id_of(&[99, 59]), 3 + 4);
    }

    #[test]
    fn chunk_id_roundtrips_through_grid_coords() {
        let m = ArrayMeta::new(vec![50, 40, 30], vec![16, 16, 16]).mapper();
        for id in 0..m.num_chunks() as u64 {
            let grid = m.grid_coords_of(id);
            let origin = m.chunk_origin(id);
            assert_eq!(m.chunk_id_of(&origin), id, "grid={grid:?}");
        }
    }

    #[test]
    fn edge_chunks_are_clipped() {
        let m = mapper_2d();
        // Chunk at grid (3, 1): origin (96, 32); extent (4, 28).
        let id = m.chunk_id_of(&[96, 32]);
        assert_eq!(m.chunk_origin(id), vec![96, 32]);
        assert_eq!(m.chunk_extent(id), vec![4, 28]);
        assert_eq!(m.chunk_volume(id), 4 * 28);
        // Interior chunk keeps the nominal shape.
        let id0 = m.chunk_id_of(&[0, 0]);
        assert_eq!(m.chunk_extent(id0), vec![32, 32]);
    }

    #[test]
    fn local_and_global_coordinates_roundtrip() {
        let m = mapper_2d();
        for &pos in &[[0usize, 0], [31, 31], [32, 0], [99, 59], [96, 32], [45, 17]] {
            let id = m.chunk_id_of(&pos);
            let local = m.local_index_of(&pos);
            assert!(local < m.chunk_volume(id));
            assert_eq!(m.global_coords_of(id, local), pos.to_vec(), "pos={pos:?}");
        }
    }

    #[test]
    fn every_cell_maps_to_exactly_one_chunk_slot() {
        let m = ArrayMeta::new(vec![10, 7], vec![4, 3]).mapper();
        let mut seen = std::collections::HashSet::new();
        for x in 0..10 {
            for y in 0..7 {
                let id = m.chunk_id_of(&[x, y]);
                let local = m.local_index_of(&[x, y]);
                assert!(seen.insert((id, local)), "collision at ({x},{y})");
            }
        }
        assert_eq!(seen.len(), 70);
    }

    #[test]
    fn chunks_in_range_selects_the_intersecting_grid_box() {
        let m = mapper_2d();
        // Whole array.
        assert_eq!(m.chunks_in_range(&[0, 0], &[100, 60]).len(), 8);
        // A box inside chunk (0,0).
        assert_eq!(m.chunks_in_range(&[1, 1], &[10, 10]), vec![0]);
        // A box spanning grid columns 1..3 in row 0.
        let ids = m.chunks_in_range(&[40, 0], &[96, 20]);
        assert_eq!(ids, vec![1, 2]);
        // Empty box.
        assert!(m.chunks_in_range(&[10, 10], &[10, 20]).is_empty());
    }

    #[test]
    fn one_dimensional_arrays_work() {
        let m = ArrayMeta::new(vec![100], vec![30]).mapper();
        assert_eq!(m.num_chunks(), 4);
        assert_eq!(m.chunk_id_of(&[95]), 3);
        assert_eq!(m.chunk_extent(3), vec![10]);
        assert_eq!(m.global_coords_of(3, 5), vec![95]);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn mismatched_rank_is_rejected() {
        ArrayMeta::new(vec![10, 10], vec![4]);
    }
}
