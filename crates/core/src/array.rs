//! ArrayRDD: the distributed chunked array (paper §III).
//!
//! An [`ArrayRdd`] is a pair RDD of `(ChunkId, Chunk)` records plus shared
//! [`ArrayMeta`]. Chunks are placed by hashing their IDs, and the ingest
//! path *generates each chunk on the partition it belongs to*, so the
//! dataset is born co-partitioned — later chunk-aligned joins are local.
//! Empty chunks are never materialised.

use crate::aggregate::Aggregator;
use crate::chunk::{Chunk, ChunkMode, ChunkPolicy};
use crate::element::Element;
use crate::meta::{ArrayMeta, ChunkId, Mapper};
use spangle_bitmask::Bitmask;
use spangle_dataflow::rdd::sources::GeneratedRdd;
use spangle_dataflow::{HashPartitioner, JobError, PairRdd, Partitioner, Rdd, SpangleContext};
use std::collections::HashMap;
use std::sync::Arc;

/// A distributed multi-dimensional array: chunked, bitmasked, lazily
/// evaluated and fault tolerant.
pub struct ArrayRdd<E: Element> {
    ctx: SpangleContext,
    meta: Arc<ArrayMeta>,
    policy: ChunkPolicy,
    rdd: Rdd<(ChunkId, Chunk<E>)>,
}

impl<E: Element> Clone for ArrayRdd<E> {
    fn clone(&self) -> Self {
        ArrayRdd {
            ctx: self.ctx.clone(),
            meta: self.meta.clone(),
            policy: self.policy,
            rdd: self.rdd.clone(),
        }
    }
}

/// Builds [`ArrayRdd`]s from generator functions or cell lists.
pub struct ArrayBuilder<E: Element> {
    ctx: SpangleContext,
    meta: ArrayMeta,
    policy: ChunkPolicy,
    num_partitions: usize,
    #[allow(clippy::type_complexity)]
    ingest: Option<Arc<dyn Fn(&[usize]) -> Option<E> + Send + Sync>>,
}

impl<E: Element> ArrayBuilder<E> {
    /// Starts a builder for an array of geometry `meta` on `ctx`.
    pub fn new(ctx: &SpangleContext, meta: ArrayMeta) -> Self {
        ArrayBuilder {
            ctx: ctx.clone(),
            num_partitions: ctx.num_executors() * 2,
            meta,
            policy: ChunkPolicy::default(),
            ingest: None,
        }
    }

    /// Overrides the chunk-mode policy.
    pub fn policy(mut self, policy: ChunkPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the number of partitions (default: 2 × executors).
    pub fn num_partitions(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one partition");
        self.num_partitions = n;
        self
    }

    /// Sets the cell generator: `f(coords)` returns the value of a cell or
    /// `None` for null. Must be deterministic (it is the lineage).
    pub fn ingest(mut self, f: impl Fn(&[usize]) -> Option<E> + Send + Sync + 'static) -> Self {
        self.ingest = Some(Arc::new(f));
        self
    }

    /// Materialises the lineage head. Chunks are generated lazily, each on
    /// the partition its ChunkID hashes to.
    pub fn build(self) -> ArrayRdd<E> {
        let f = self
            .ingest
            .expect("ArrayBuilder::build called without an ingest function");
        let meta = Arc::new(self.meta);
        let mapper = meta.mapper();
        let policy = self.policy;
        let num_partitions = self.num_partitions;
        let sig = Partitioner::<u64>::sig(&HashPartitioner::new(num_partitions));
        let gen_meta = meta.clone();
        let rdd = GeneratedRdd::create(&self.ctx, num_partitions, move |p| {
            let partitioner = HashPartitioner::new(num_partitions);
            let mapper = gen_meta.mapper();
            let mut out = Vec::new();
            for chunk_id in 0..mapper.num_chunks() as u64 {
                if partitioner.partition(&chunk_id) != p {
                    continue;
                }
                let volume = mapper.chunk_volume(chunk_id);
                let origin = mapper.chunk_origin(chunk_id);
                let extent = mapper.chunk_extent(chunk_id);
                let mut coords = vec![0usize; origin.len()];
                let mut payload = vec![E::default(); volume];
                let mut mask = Bitmask::zeros(volume);
                for (local, slot) in payload.iter_mut().enumerate() {
                    crate::meta::Mapper::unravel(&origin, &extent, local, &mut coords);
                    if let Some(v) = f(&coords) {
                        *slot = v;
                        mask.set(local, true);
                    }
                }
                if let Some(chunk) = Chunk::build(payload, mask, &policy) {
                    out.push((chunk_id, chunk));
                }
            }
            out
        })
        .assert_partitioned(sig);
        let _ = mapper;
        ArrayRdd {
            ctx: self.ctx,
            meta,
            policy,
            rdd,
        }
    }
}

impl<E: Element> ArrayRdd<E> {
    /// Wraps an existing chunk RDD. `rdd` must only contain non-empty
    /// chunks whose IDs and volumes agree with `meta`.
    pub fn from_parts(
        ctx: &SpangleContext,
        meta: Arc<ArrayMeta>,
        policy: ChunkPolicy,
        rdd: Rdd<(ChunkId, Chunk<E>)>,
    ) -> Self {
        ArrayRdd {
            ctx: ctx.clone(),
            meta,
            policy,
            rdd,
        }
    }

    /// Ingests a driver-local cell list through the full distributed
    /// pipeline of §III: key every cell by its ChunkID (Algorithm 1),
    /// shuffle-group per chunk, then assemble payload and bitmask.
    pub fn from_cells(
        ctx: &SpangleContext,
        meta: ArrayMeta,
        policy: ChunkPolicy,
        cells: Vec<(Vec<usize>, E)>,
        num_partitions: usize,
    ) -> Self {
        let meta = Arc::new(meta);
        let mapper = meta.mapper();
        let keyed = ctx
            .parallelize(cells, num_partitions)
            .map(move |(coords, v)| {
                let chunk_id = mapper.chunk_id_of(&coords);
                let local = mapper.local_index_of(&coords);
                (chunk_id, (local, v))
            });
        let partitioner: Arc<HashPartitioner> = Arc::new(HashPartitioner::new(num_partitions));
        let grouped = keyed.group_by_key(partitioner);
        let build_meta = meta.clone();
        let rdd = grouped.map_partitions(move |records| {
            let mapper = build_meta.mapper();
            records
                .iter()
                .filter_map(|(chunk_id, cells)| {
                    let volume = mapper.chunk_volume(*chunk_id);
                    Chunk::from_cells(volume, cells.iter().copied(), &policy)
                        .map(|c| (*chunk_id, c))
                })
                .collect()
        });
        // group_by_key partitioned by hash(chunk_id); the per-partition map
        // keeps keys in place.
        let sig = Partitioner::<u64>::sig(&HashPartitioner::new(num_partitions));
        let rdd = rdd.assert_partitioned(sig);
        ArrayRdd {
            ctx: ctx.clone(),
            meta,
            policy,
            rdd,
        }
    }

    /// Array geometry.
    pub fn meta(&self) -> &ArrayMeta {
        &self.meta
    }

    /// Shared geometry handle.
    pub fn meta_arc(&self) -> Arc<ArrayMeta> {
        self.meta.clone()
    }

    /// The chunk-mode policy used by derived arrays.
    pub fn policy(&self) -> ChunkPolicy {
        self.policy
    }

    /// The underlying chunk RDD.
    pub fn rdd(&self) -> &Rdd<(ChunkId, Chunk<E>)> {
        &self.rdd
    }

    /// The cluster handle.
    pub fn context(&self) -> &SpangleContext {
        &self.ctx
    }

    /// Marks the chunk RDD for caching.
    pub fn persist(&self) -> &Self {
        self.rdd.persist();
        self
    }

    /// Number of materialised (non-empty) chunks.
    pub fn num_chunks(&self) -> Result<usize, JobError> {
        self.rdd.count()
    }

    /// Number of valid cells across all chunks.
    pub fn count_valid(&self) -> Result<usize, JobError> {
        self.rdd
            .aggregate(0usize, |acc, (_, c)| acc + c.valid_count(), |a, b| a + b)
    }

    /// Deep in-memory size of all chunks, in bytes (Fig. 9a's metric).
    pub fn mem_bytes(&self) -> Result<usize, JobError> {
        self.rdd
            .aggregate(0usize, |acc, (_, c)| acc + c.mem_bytes(), |a, b| a + b)
    }

    /// Histogram of chunk modes.
    pub fn mode_counts(&self) -> Result<HashMap<&'static str, usize>, JobError> {
        let counts = self.rdd.run_partitions(|_, chunks| {
            let mut m = [0usize; 3];
            for (_, c) in chunks {
                match c.mode() {
                    ChunkMode::Dense => m[0] += 1,
                    ChunkMode::Sparse => m[1] += 1,
                    ChunkMode::SuperSparse => m[2] += 1,
                }
            }
            m
        })?;
        let mut out = HashMap::new();
        for m in counts {
            *out.entry("dense").or_insert(0) += m[0];
            *out.entry("sparse").or_insert(0) += m[1];
            *out.entry("super-sparse").or_insert(0) += m[2];
        }
        Ok(out)
    }

    /// Point query: the value at `coords`, or `None` when null.
    pub fn get(&self, coords: &[usize]) -> Result<Option<E>, JobError> {
        let mapper = self.meta.mapper();
        let target = mapper.chunk_id_of(coords);
        let local = mapper.local_index_of(coords);
        let hits = self
            .rdd
            .filter(move |(id, _)| *id == target)
            .map(move |(_, c)| c.get(local))
            .collect()?;
        Ok(hits.into_iter().flatten().next())
    }

    /// Subarray (§V-A1): keeps the cells inside the box `[lo, hi)`.
    /// Chunks fully outside the range are pruned by ID before any mask
    /// work; intersecting chunks get a virtual range mask ANDed in.
    pub fn subarray(&self, lo: &[usize], hi: &[usize]) -> ArrayRdd<E> {
        assert_eq!(lo.len(), self.meta.rank(), "range rank mismatch");
        assert_eq!(hi.len(), self.meta.rank(), "range rank mismatch");
        let mapper = self.meta.mapper();
        let selected: std::collections::HashSet<ChunkId> =
            mapper.chunks_in_range(lo, hi).into_iter().collect();
        let lo = lo.to_vec();
        let hi = hi.to_vec();
        let policy = self.policy;
        let meta = self.meta.clone();
        let rdd = self
            .rdd
            .filter(move |(id, _)| selected.contains(id))
            .flat_map(move |(id, chunk)| {
                let mapper = meta.mapper();
                // Interior chunks survive unchanged; only boundary chunks
                // pay for the virtual-mask AND.
                if mapper.chunk_within_range(id, &lo, &hi) {
                    return vec![(id, chunk)];
                }
                let keep = range_mask(&mapper, id, chunk.volume(), &lo, &hi);
                chunk
                    .restrict(&keep, &policy)
                    .map(|c| (id, c))
                    .into_iter()
                    .collect()
            });
        // flat_map keeps chunk ids in place.
        let rdd = match self.rdd.partitioner_sig() {
            Some(sig) => rdd.assert_partitioned(sig),
            None => rdd,
        };
        ArrayRdd {
            ctx: self.ctx.clone(),
            meta: self.meta.clone(),
            policy: self.policy,
            rdd,
        }
    }

    /// Filter (§V-A2): keeps cells whose value satisfies `pred`; all other
    /// cells become null. Chunks left without valid cells disappear.
    pub fn filter(&self, pred: impl Fn(E) -> bool + Send + Sync + 'static) -> ArrayRdd<E> {
        let policy = self.policy;
        let rdd = self.rdd.flat_map(move |(id, chunk)| {
            chunk
                .filter(&pred, &policy)
                .map(|c| (id, c))
                .into_iter()
                .collect()
        });
        let rdd = match self.rdd.partitioner_sig() {
            Some(sig) => rdd.assert_partitioned(sig),
            None => rdd,
        };
        ArrayRdd {
            ctx: self.ctx.clone(),
            meta: self.meta.clone(),
            policy: self.policy,
            rdd,
        }
    }

    /// Element-wise value transformation (nulls stay null).
    pub fn map_values<F: Element>(
        &self,
        f: impl Fn(E) -> F + Send + Sync + 'static,
    ) -> ArrayRdd<F> {
        let rdd = self.rdd.map(move |(id, chunk)| (id, chunk.map_values(&f)));
        let rdd = match self.rdd.partitioner_sig() {
            Some(sig) => rdd.assert_partitioned(sig),
            None => rdd,
        };
        ArrayRdd {
            ctx: self.ctx.clone(),
            meta: self.meta.clone(),
            policy: self.policy,
            rdd,
        }
    }

    /// Cell-wise combination of two arrays over the same geometry: `f`
    /// receives both sides' values (or `None`) and decides the output.
    /// `and`-joins pass `|a, b| a.zip(b).map(..)`, `or`-joins keep either.
    /// Runs locally when both sides are co-partitioned.
    pub fn zip_with<F: Element, O: Element>(
        &self,
        other: &ArrayRdd<F>,
        f: impl Fn(Option<E>, Option<F>) -> Option<O> + Send + Sync + 'static,
    ) -> ArrayRdd<O> {
        assert_eq!(
            *self.meta, *other.meta,
            "zip_with requires identical array geometry"
        );
        let n = self.rdd.num_partitions();
        let partitioner: Arc<HashPartitioner> = Arc::new(HashPartitioner::new(n));
        let policy = self.policy;
        let cogrouped = self.rdd.cogroup(&other.rdd, partitioner);
        let rdd = cogrouped.flat_map(move |(id, (ls, rs))| {
            let left = ls.into_iter().next();
            let right = rs.into_iter().next();
            let volume = left
                .as_ref()
                .map(Chunk::volume)
                .or_else(|| right.as_ref().map(Chunk::volume));
            let Some(volume) = volume else {
                return Vec::new();
            };
            let mut lvals: Vec<Option<E>> = vec![None; volume];
            if let Some(c) = &left {
                for (i, v) in c.iter_valid() {
                    lvals[i] = Some(v);
                }
            }
            let mut cells = Vec::new();
            let mut rvals: Vec<Option<F>> = vec![None; volume];
            if let Some(c) = &right {
                for (i, v) in c.iter_valid() {
                    rvals[i] = Some(v);
                }
            }
            for i in 0..volume {
                if let Some(o) = f(lvals[i], rvals[i]) {
                    cells.push((i, o));
                }
            }
            Chunk::from_cells(volume, cells, &policy)
                .map(|c| (id, c))
                .into_iter()
                .collect()
        });
        ArrayRdd {
            ctx: self.ctx.clone(),
            meta: self.meta.clone(),
            policy: self.policy,
            rdd,
        }
    }

    /// Re-encodes every chunk under `policy` (e.g. dense ⇄ sparse).
    pub fn reencode(&self, policy: ChunkPolicy) -> ArrayRdd<E> {
        let rdd = self.rdd.flat_map(move |(id, chunk)| {
            chunk
                .reencode(&policy)
                .map(|c| (id, c))
                .into_iter()
                .collect()
        });
        let rdd = match self.rdd.partitioner_sig() {
            Some(sig) => rdd.assert_partitioned(sig),
            None => rdd,
        };
        ArrayRdd {
            ctx: self.ctx.clone(),
            meta: self.meta.clone(),
            policy,
            rdd,
        }
    }

    /// Aggregates every valid cell with `agg` (§V-B). Returns `None` for
    /// an array with no valid cells.
    pub fn aggregate<A: Aggregator<E>>(&self, agg: A) -> Option<A::Output> {
        let agg = Arc::new(agg);
        let task_agg = agg.clone();
        let states = self
            .rdd
            .run_partitions(move |_, chunks| {
                let mut state = task_agg.initialize();
                for (_, chunk) in chunks {
                    for (_, v) in chunk.iter_valid() {
                        task_agg.accumulate(&mut state, v);
                    }
                }
                state
            })
            .expect("aggregate job failed");
        let merged = states
            .into_iter()
            .reduce(|a, b| agg.merge(a, b))
            .unwrap_or_else(|| agg.initialize());
        agg.evaluate(merged)
    }

    /// Grouped aggregation: groups valid cells by `key(coords)` and
    /// aggregates each group with `agg`, reducing group states through a
    /// shuffle (this is how Q5's spatial density query runs).
    pub fn aggregate_by<K, A>(
        &self,
        key: impl Fn(&[usize]) -> K + Send + Sync + 'static,
        agg: A,
    ) -> Result<Vec<(K, A::Output)>, JobError>
    where
        K: spangle_dataflow::Key,
        A: Aggregator<E>,
    {
        let agg = Arc::new(agg);
        let meta = self.meta.clone();
        let map_agg = agg.clone();
        let states = self.rdd.map_partitions(move |chunks| {
            let mapper = meta.mapper();
            let mut groups: HashMap<K, A::State> = HashMap::new();
            let mut coords = vec![0usize; meta.rank()];
            for (id, chunk) in chunks {
                let origin = mapper.chunk_origin(*id);
                let extent = mapper.chunk_extent(*id);
                for (local, v) in chunk.iter_valid() {
                    Mapper::unravel(&origin, &extent, local, &mut coords);
                    let k = key(&coords);
                    let state = groups.entry(k).or_insert_with(|| map_agg.initialize());
                    map_agg.accumulate(state, v);
                }
            }
            groups.into_iter().collect()
        });
        let merge_agg = agg.clone();
        let n = self.rdd.num_partitions();
        let reduced = states.reduce_by_key(Arc::new(HashPartitioner::new(n)), move |a, b| {
            merge_agg.merge(a, b)
        });
        let collected = reduced.collect()?;
        Ok(collected
            .into_iter()
            .filter_map(|(k, s)| agg.evaluate(s).map(|o| (k, o)))
            .collect())
    }

    /// The named-axis form of the Aggregator (§V-B): collapses the named
    /// dimensions and aggregates per group of the *remaining* dimensions
    /// — "while aggregating an array, Spangle generates the new schema
    /// determined by the given conditions". Returns `(remaining coords,
    /// output)` pairs; aggregating over every dimension yields one group
    /// keyed by the empty coordinate vector.
    ///
    /// Requires the metadata to carry dimension names
    /// ([`ArrayMeta::with_dim_names`]).
    #[allow(clippy::type_complexity)]
    pub fn aggregate_over<A>(
        &self,
        collapse: &[&str],
        agg: A,
    ) -> Result<Vec<(Vec<u64>, A::Output)>, JobError>
    where
        A: Aggregator<E>,
    {
        let collapsed: Vec<usize> = collapse.iter().map(|n| self.meta.dim_index(n)).collect();
        let keep: Vec<usize> = (0..self.meta.rank())
            .filter(|d| !collapsed.contains(d))
            .collect();
        self.aggregate_by(
            move |coords| keep.iter().map(|&d| coords[d] as u64).collect::<Vec<u64>>(),
            agg,
        )
    }

    /// Gathers every valid cell as `(coords, value)` on the driver — a
    /// testing/debug action, not part of the paper's API.
    pub fn collect_cells(&self) -> Result<Vec<(Vec<usize>, E)>, JobError> {
        let meta = self.meta.clone();
        let mut cells: Vec<(Vec<usize>, E)> = self
            .rdd
            .flat_map(move |(id, chunk)| {
                let mapper = meta.mapper();
                chunk
                    .iter_valid()
                    .map(|(local, v)| (mapper.global_coords_of(id, local), v))
                    .collect()
            })
            .collect()?;
        cells.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(cells)
    }

    /// Materialises the full logical array on the driver, indexed by the
    /// mapper's global linear order. A testing/debug action.
    pub fn to_dense(&self) -> Result<Vec<Option<E>>, JobError> {
        let mapper = self.meta.mapper();
        let mut out = vec![None; self.meta.volume()];
        for (coords, v) in self.collect_cells()? {
            out[mapper.global_linear_index(&coords)] = Some(v);
        }
        Ok(out)
    }
}

/// Builds the "virtual bitmask" of Subarray: bits set for the cells of
/// chunk `chunk_id` falling inside `[lo, hi)`. Painted as contiguous
/// dim-0 runs over the chunk∩range intersection box, so cost scales with
/// the intersection, not the chunk volume.
pub(crate) fn range_mask(
    mapper: &Mapper,
    chunk_id: ChunkId,
    volume: usize,
    lo: &[usize],
    hi: &[usize],
) -> Bitmask {
    let origin = mapper.chunk_origin(chunk_id);
    let extent = mapper.chunk_extent(chunk_id);
    let mut mask = Bitmask::zeros(volume);
    // Intersection box in chunk-local coordinates.
    let loc_lo: Vec<usize> = origin
        .iter()
        .zip(lo)
        .map(|(&o, &l)| l.saturating_sub(o))
        .collect();
    let loc_hi: Vec<usize> = origin
        .iter()
        .zip(extent.iter().zip(hi))
        .map(|(&o, (&e, &h))| h.saturating_sub(o).min(e))
        .collect();
    if loc_lo.iter().zip(&loc_hi).any(|(l, h)| l >= h) {
        return mask;
    }
    // Odometer over dims 1.. ; dim 0 is a contiguous run per line.
    let rank = extent.len();
    let mut strides = vec![1usize; rank];
    for i in 1..rank {
        strides[i] = strides[i - 1] * extent[i - 1];
    }
    let run_len = loc_hi[0] - loc_lo[0];
    let mut cursor = loc_lo.clone();
    loop {
        let base: usize = cursor.iter().zip(&strides).map(|(&c, &s)| c * s).sum();
        mask.set_range(base, base + run_len);
        // Increment dims 1..rank.
        let mut d = 1;
        loop {
            if d == rank {
                return mask;
            }
            cursor[d] += 1;
            if cursor[d] < loc_hi[d] {
                break;
            }
            cursor[d] = loc_lo[d];
            d += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::builtin::{Avg, Count, Max, Sum};

    fn ctx() -> SpangleContext {
        SpangleContext::new(4)
    }

    /// 60x40 array chunked 16x16; value x*100+y on even x, null on odd x.
    fn sample_array(ctx: &SpangleContext) -> ArrayRdd<f64> {
        ArrayBuilder::new(ctx, ArrayMeta::new(vec![60, 40], vec![16, 16]))
            .ingest(|c| c[0].is_multiple_of(2).then(|| (c[0] * 100 + c[1]) as f64))
            .build()
    }

    #[test]
    fn ingest_materialises_only_valid_cells() {
        let ctx = ctx();
        let arr = sample_array(&ctx);
        assert_eq!(arr.count_valid().unwrap(), 30 * 40);
        // 60/16 -> 4 grid cols, 40/16 -> 3 grid rows: 12 chunks, all with
        // at least one even-x column.
        assert_eq!(arr.num_chunks().unwrap(), 12);
    }

    #[test]
    fn ingest_drops_empty_chunks() {
        let ctx = ctx();
        let arr = ArrayBuilder::new(&ctx, ArrayMeta::new(vec![64, 64], vec![16, 16]))
            .ingest(|c| (c[0] < 16).then_some(1.0f64))
            .build();
        // Only the 4 chunks of the first grid column are non-empty.
        assert_eq!(arr.num_chunks().unwrap(), 4);
        assert_eq!(arr.count_valid().unwrap(), 16 * 64);
    }

    #[test]
    fn point_queries_hit_values_and_nulls() {
        let ctx = ctx();
        let arr = sample_array(&ctx);
        assert_eq!(arr.get(&[2, 3]).unwrap(), Some(203.0));
        assert_eq!(arr.get(&[3, 3]).unwrap(), None);
        assert_eq!(arr.get(&[58, 39]).unwrap(), Some(5839.0));
    }

    #[test]
    fn subarray_keeps_exactly_the_box() {
        let ctx = ctx();
        let arr = sample_array(&ctx);
        let sub = arr.subarray(&[10, 5], &[20, 15]);
        // x in 10..20 even -> 5 values of x, y in 5..15 -> 10 values.
        assert_eq!(sub.count_valid().unwrap(), 5 * 10);
        assert_eq!(sub.get(&[10, 5]).unwrap(), Some(1005.0));
        assert_eq!(sub.get(&[9, 5]).unwrap(), None);
        assert_eq!(sub.get(&[10, 15]).unwrap(), None);
    }

    #[test]
    fn subarray_prunes_chunks_by_id() {
        let ctx = ctx();
        let arr = sample_array(&ctx);
        let sub = arr.subarray(&[0, 0], &[16, 16]);
        assert_eq!(sub.num_chunks().unwrap(), 1);
    }

    #[test]
    fn filter_invalidates_non_matching_cells() {
        let ctx = ctx();
        let arr = sample_array(&ctx);
        let f = arr.filter(|v| v >= 3000.0);
        // x in {30..58 even} -> 15 x-values, all 40 y.
        assert_eq!(f.count_valid().unwrap(), 15 * 40);
        assert_eq!(f.get(&[28, 0]).unwrap(), None);
        assert_eq!(f.get(&[30, 0]).unwrap(), Some(3000.0));
    }

    #[test]
    fn map_values_is_cellwise() {
        let ctx = ctx();
        let arr = sample_array(&ctx);
        let doubled = arr.map_values(|v| v * 2.0);
        assert_eq!(doubled.get(&[2, 3]).unwrap(), Some(406.0));
        assert_eq!(doubled.count_valid().unwrap(), arr.count_valid().unwrap());
    }

    #[test]
    fn aggregates_cover_all_valid_cells() {
        let ctx = ctx();
        let arr = ArrayBuilder::new(&ctx, ArrayMeta::new(vec![10, 10], vec![4, 4]))
            .ingest(|c| (c[0] >= 5).then(|| (c[0] * 10 + c[1]) as f64))
            .build();
        let expected: Vec<f64> = (5..10)
            .flat_map(|x| (0..10).map(move |y| (x * 10 + y) as f64))
            .collect();
        let sum: f64 = expected.iter().sum();
        assert_eq!(arr.aggregate(Sum), Some(sum));
        assert_eq!(arr.aggregate(Count), Some(50));
        assert_eq!(arr.aggregate(Max), Some(99.0));
        let avg = arr.aggregate(Avg).unwrap();
        assert!((avg - sum / 50.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_by_groups_spatially() {
        let ctx = ctx();
        // 8x8 array, all valid, value 1; group into 4x4 quadrants.
        let arr = ArrayBuilder::new(&ctx, ArrayMeta::new(vec![8, 8], vec![4, 4]))
            .ingest(|_| Some(1.0f64))
            .build();
        let mut groups = arr
            .aggregate_by(|c| ((c[0] / 4) as u64, (c[1] / 4) as u64), Count)
            .unwrap();
        groups.sort();
        assert_eq!(
            groups,
            vec![((0, 0), 16), ((0, 1), 16), ((1, 0), 16), ((1, 1), 16)]
        );
    }

    #[test]
    fn from_cells_pipeline_equals_ingest() {
        let ctx = ctx();
        let by_ingest = sample_array(&ctx);
        let cells: Vec<(Vec<usize>, f64)> = (0..60)
            .step_by(2)
            .flat_map(|x| (0..40).map(move |y| (vec![x, y], (x * 100 + y) as f64)))
            .collect();
        let by_cells = ArrayRdd::from_cells(
            &ctx,
            ArrayMeta::new(vec![60, 40], vec![16, 16]),
            ChunkPolicy::default(),
            cells,
            8,
        );
        assert_eq!(
            by_ingest.collect_cells().unwrap(),
            by_cells.collect_cells().unwrap()
        );
    }

    #[test]
    fn zip_with_implements_and_join_semantics() {
        let ctx = ctx();
        let meta = ArrayMeta::new(vec![20, 20], vec![8, 8]);
        let a = ArrayBuilder::new(&ctx, meta.clone())
            .ingest(|c| (c[0] < 10).then(|| c[0] as f64))
            .build();
        let b = ArrayBuilder::new(&ctx, meta)
            .ingest(|c| (c[0] >= 5).then(|| c[1] as f64))
            .build();
        // AND join: both valid.
        let and = a.zip_with(&b, |x, y| x.zip(y).map(|(x, y)| x + y));
        assert_eq!(and.count_valid().unwrap(), 5 * 20);
        assert_eq!(and.get(&[7, 3]).unwrap(), Some(10.0));
        assert_eq!(and.get(&[2, 3]).unwrap(), None);
        // OR join: either valid.
        let or = a.zip_with(&b, |x, y| {
            x.or(y).map(|_| x.unwrap_or(0.0) + y.unwrap_or(0.0))
        });
        assert_eq!(or.count_valid().unwrap(), 20 * 20);
    }

    #[test]
    fn zip_with_is_local_for_copartitioned_arrays() {
        // Asserts the shuffle-elision rewrite itself, so pin it on
        // regardless of SPANGLE_DISABLE_PLANNER.
        let ctx = SpangleContext::builder()
            .executors(4)
            .elide_shuffles(true)
            .build();
        let meta = ArrayMeta::new(vec![32, 32], vec![8, 8]);
        let a = ArrayBuilder::new(&ctx, meta.clone())
            .ingest(|c| Some(c[0] as f64))
            .build();
        let b = ArrayBuilder::new(&ctx, meta)
            .ingest(|c| Some(c[1] as f64))
            .build();
        let before = ctx.metrics_snapshot();
        let sum = a.zip_with(&b, |x, y| x.zip(y).map(|(x, y)| x + y));
        sum.count_valid().unwrap();
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(delta.shuffle_write_bytes, 0, "chunk-aligned zip is local");
        assert_eq!(delta.stages_run, 1);
    }

    #[test]
    fn to_dense_reconstructs_the_logical_array() {
        let ctx = ctx();
        let arr = ArrayBuilder::new(&ctx, ArrayMeta::new(vec![6, 5], vec![4, 2]))
            .ingest(|c| (c[0] != 3).then(|| (c[0] + c[1] * 10) as f64))
            .build();
        let dense = arr.to_dense().unwrap();
        let mapper = arr.meta().mapper();
        for x in 0..6 {
            for y in 0..5 {
                let expected = (x != 3).then(|| (x + y * 10) as f64);
                assert_eq!(dense[mapper.global_linear_index(&[x, y])], expected);
            }
        }
    }

    #[test]
    fn reencode_changes_modes_not_content() {
        let ctx = ctx();
        let arr = ArrayBuilder::new(&ctx, ArrayMeta::new(vec![64, 64], vec![32, 32]))
            .ingest(|c| c[0].is_multiple_of(10).then_some(1.0f64))
            .build();
        let dense = arr.reencode(ChunkPolicy::always_dense());
        assert_eq!(arr.collect_cells().unwrap(), dense.collect_cells().unwrap());
        assert_eq!(dense.mode_counts().unwrap()["dense"], 4);
        assert!(dense.mem_bytes().unwrap() > arr.mem_bytes().unwrap());
    }

    #[test]
    fn lineage_recomputes_evicted_array_chunks() {
        let ctx = ctx();
        let arr = sample_array(&ctx);
        arr.persist();
        let first = arr.collect_cells().unwrap();
        // Evict a cached partition and inject a task failure: both recover.
        assert!(ctx.evict_cached_partition(arr.rdd().id(), 0));
        ctx.failure_injector().fail_task(arr.rdd().id(), 1, 1);
        let second = arr.collect_cells().unwrap();
        assert_eq!(first, second);
    }
}
