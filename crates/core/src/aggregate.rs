//! The Aggregator framework (paper §V-B).
//!
//! An aggregate function is specified through four abstractions: create a
//! per-chunk state (`initialize`), fold values into it (`accumulate`),
//! combine states across chunks (`merge`), and produce the result
//! (`evaluate`). Built-in sum/avg/min/max/count live in [`builtin`];
//! user-defined aggregators just implement the trait.

use crate::element::Element;
use spangle_dataflow::Data;

/// A distributive/algebraic aggregate over array cells.
pub trait Aggregator<E: Element>: Send + Sync + 'static {
    /// Mergeable partial state; must be shuffleable.
    type State: Data;
    /// Final result type.
    type Output: Send + 'static;

    /// Fresh per-chunk/per-partition state.
    fn initialize(&self) -> Self::State;
    /// Folds one valid cell value into a state.
    fn accumulate(&self, state: &mut Self::State, value: E);
    /// Combines two states.
    fn merge(&self, a: Self::State, b: Self::State) -> Self::State;
    /// Produces the result; `None` when no cell was accumulated (e.g. the
    /// average of nothing).
    fn evaluate(&self, state: Self::State) -> Option<Self::Output>;
}

/// Built-in aggregate functions over `f64` cells.
pub mod builtin {
    use super::Aggregator;

    /// Sum of valid cells; 0 for an empty input.
    pub struct Sum;

    impl Aggregator<f64> for Sum {
        type State = f64;
        type Output = f64;
        fn initialize(&self) -> f64 {
            0.0
        }
        fn accumulate(&self, state: &mut f64, value: f64) {
            *state += value;
        }
        fn merge(&self, a: f64, b: f64) -> f64 {
            a + b
        }
        fn evaluate(&self, state: f64) -> Option<f64> {
            Some(state)
        }
    }

    /// Number of valid cells.
    pub struct Count;

    impl Aggregator<f64> for Count {
        type State = usize;
        type Output = usize;
        fn initialize(&self) -> usize {
            0
        }
        fn accumulate(&self, state: &mut usize, _value: f64) {
            *state += 1;
        }
        fn merge(&self, a: usize, b: usize) -> usize {
            a + b
        }
        fn evaluate(&self, state: usize) -> Option<usize> {
            Some(state)
        }
    }

    /// Arithmetic mean of valid cells; `None` when there are none.
    pub struct Avg;

    impl Aggregator<f64> for Avg {
        type State = (f64, u64);
        type Output = f64;
        fn initialize(&self) -> (f64, u64) {
            (0.0, 0)
        }
        fn accumulate(&self, state: &mut (f64, u64), value: f64) {
            state.0 += value;
            state.1 += 1;
        }
        fn merge(&self, a: (f64, u64), b: (f64, u64)) -> (f64, u64) {
            (a.0 + b.0, a.1 + b.1)
        }
        fn evaluate(&self, state: (f64, u64)) -> Option<f64> {
            (state.1 > 0).then(|| state.0 / state.1 as f64)
        }
    }

    /// Minimum of valid cells; `None` when there are none.
    pub struct Min;

    impl Aggregator<f64> for Min {
        type State = Option<f64>;
        type Output = f64;
        fn initialize(&self) -> Option<f64> {
            None
        }
        fn accumulate(&self, state: &mut Option<f64>, value: f64) {
            *state = Some(state.map_or(value, |s| s.min(value)));
        }
        fn merge(&self, a: Option<f64>, b: Option<f64>) -> Option<f64> {
            match (a, b) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (x, None) | (None, x) => x,
            }
        }
        fn evaluate(&self, state: Option<f64>) -> Option<f64> {
            state
        }
    }

    /// Count, mean, variance and standard deviation in one pass
    /// (Chan et al. parallel-merge form, exact under state merging).
    pub struct Stats;

    /// Output of [`Stats`].
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub struct StatsSummary {
        /// Number of valid cells observed.
        pub count: u64,
        /// Arithmetic mean.
        pub mean: f64,
        /// Population variance.
        pub variance: f64,
    }

    impl StatsSummary {
        /// Population standard deviation.
        pub fn std_dev(&self) -> f64 {
            self.variance.sqrt()
        }
    }

    impl Aggregator<f64> for Stats {
        /// `(count, mean, M2)` — M2 is the sum of squared deviations.
        type State = (u64, f64, f64);
        type Output = StatsSummary;

        fn initialize(&self) -> Self::State {
            (0, 0.0, 0.0)
        }

        fn accumulate(&self, state: &mut Self::State, value: f64) {
            let (n, mean, m2) = state;
            *n += 1;
            let delta = value - *mean;
            *mean += delta / *n as f64;
            *m2 += delta * (value - *mean);
        }

        fn merge(&self, a: Self::State, b: Self::State) -> Self::State {
            match (a.0, b.0) {
                (0, _) => b,
                (_, 0) => a,
                (na, nb) => {
                    let n = na + nb;
                    let delta = b.1 - a.1;
                    let mean = a.1 + delta * nb as f64 / n as f64;
                    let m2 = a.2 + b.2 + delta * delta * (na as f64 * nb as f64) / n as f64;
                    (n, mean, m2)
                }
            }
        }

        fn evaluate(&self, state: Self::State) -> Option<StatsSummary> {
            (state.0 > 0).then(|| StatsSummary {
                count: state.0,
                mean: state.1,
                variance: state.2 / state.0 as f64,
            })
        }
    }

    /// Fixed-range histogram over `[lo, hi)` with equal-width bins;
    /// values outside the range land in the edge bins.
    pub struct Histogram {
        lo: f64,
        hi: f64,
        bins: usize,
    }

    impl Histogram {
        /// A histogram of `bins` equal-width buckets over `[lo, hi)`.
        pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
            assert!(hi > lo, "empty histogram range");
            assert!(bins > 0, "need at least one bin");
            Histogram { lo, hi, bins }
        }
    }

    impl Aggregator<f64> for Histogram {
        type State = Vec<u64>;
        type Output = Vec<u64>;

        fn initialize(&self) -> Vec<u64> {
            vec![0; self.bins]
        }

        fn accumulate(&self, state: &mut Vec<u64>, value: f64) {
            let t = (value - self.lo) / (self.hi - self.lo) * self.bins as f64;
            let bin = (t.floor().max(0.0) as usize).min(self.bins - 1);
            state[bin] += 1;
        }

        fn merge(&self, mut a: Vec<u64>, b: Vec<u64>) -> Vec<u64> {
            for (x, y) in a.iter_mut().zip(&b) {
                *x += y;
            }
            a
        }

        fn evaluate(&self, state: Vec<u64>) -> Option<Vec<u64>> {
            Some(state)
        }
    }

    /// Maximum of valid cells; `None` when there are none.
    pub struct Max;

    impl Aggregator<f64> for Max {
        type State = Option<f64>;
        type Output = f64;
        fn initialize(&self) -> Option<f64> {
            None
        }
        fn accumulate(&self, state: &mut Option<f64>, value: f64) {
            *state = Some(state.map_or(value, |s| s.max(value)));
        }
        fn merge(&self, a: Option<f64>, b: Option<f64>) -> Option<f64> {
            match (a, b) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (x, None) | (None, x) => x,
            }
        }
        fn evaluate(&self, state: Option<f64>) -> Option<f64> {
            state
        }
    }
}

#[cfg(test)]
mod tests {
    use super::builtin::*;
    use super::*;

    fn fold<A: Aggregator<f64>>(agg: &A, values: &[f64]) -> Option<A::Output> {
        // Split into two states to exercise merge.
        let mid = values.len() / 2;
        let mut a = agg.initialize();
        for &v in &values[..mid] {
            agg.accumulate(&mut a, v);
        }
        let mut b = agg.initialize();
        for &v in &values[mid..] {
            agg.accumulate(&mut b, v);
        }
        agg.evaluate(agg.merge(a, b))
    }

    #[test]
    fn builtins_match_reference_folds() {
        let values = [3.0, -1.0, 4.0, 1.5, -9.25, 2.0];
        assert_eq!(fold(&Sum, &values), Some(values.iter().sum()));
        assert_eq!(fold(&Count, &values), Some(6));
        assert_eq!(fold(&Min, &values), Some(-9.25));
        assert_eq!(fold(&Max, &values), Some(4.0));
        let avg = fold(&Avg, &values).unwrap();
        assert!((avg - values.iter().sum::<f64>() / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_behaviour() {
        assert_eq!(fold(&Sum, &[]), Some(0.0));
        assert_eq!(fold(&Count, &[]), Some(0));
        assert_eq!(fold(&Min, &[]), None);
        assert_eq!(fold(&Max, &[]), None);
        assert_eq!(fold(&Avg, &[]), None);
    }

    #[test]
    fn stats_matches_two_pass_reference() {
        let values: Vec<f64> = (0..100).map(|i| ((i * 37) % 23) as f64 - 11.0).collect();
        let summary = fold(&Stats, &values).unwrap();
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
        assert_eq!(summary.count, 100);
        assert!((summary.mean - mean).abs() < 1e-9);
        assert!((summary.variance - var).abs() < 1e-9);
        assert!((summary.std_dev() - var.sqrt()).abs() < 1e-9);
        assert_eq!(fold(&Stats, &[]), None);
    }

    #[test]
    fn stats_merge_is_exact_for_skewed_splits() {
        let agg = Stats;
        let values: Vec<f64> = (0..50).map(|i| (i as f64).powi(2)).collect();
        // All in one state vs a 1/49 split must agree exactly-ish.
        let mut whole = agg.initialize();
        for &v in &values {
            agg.accumulate(&mut whole, v);
        }
        let mut first = agg.initialize();
        agg.accumulate(&mut first, values[0]);
        let mut rest = agg.initialize();
        for &v in &values[1..] {
            agg.accumulate(&mut rest, v);
        }
        let merged = agg.merge(first, rest);
        let a = agg.evaluate(whole).unwrap();
        let b = agg.evaluate(merged).unwrap();
        assert!((a.variance - b.variance).abs() < 1e-6 * a.variance);
    }

    #[test]
    fn histogram_bins_cover_the_range_and_clamp_outliers() {
        let h = Histogram::new(0.0, 10.0, 5);
        let bins = fold(&h, &[-1.0, 0.0, 1.9, 2.0, 5.5, 9.99, 10.0, 42.0]).unwrap();
        assert_eq!(bins, vec![3, 1, 1, 0, 3]);
        assert_eq!(bins.iter().sum::<u64>(), 8, "every value lands somewhere");
    }

    #[test]
    #[should_panic(expected = "empty histogram range")]
    fn histogram_rejects_empty_range() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }

    #[test]
    fn merge_is_associative_for_avg() {
        let agg = Avg;
        let mut s1 = agg.initialize();
        agg.accumulate(&mut s1, 1.0);
        let mut s2 = agg.initialize();
        agg.accumulate(&mut s2, 2.0);
        let mut s3 = agg.initialize();
        agg.accumulate(&mut s3, 6.0);
        let left = agg.merge(agg.merge(s1, s2), s3);
        let mut s1b = agg.initialize();
        agg.accumulate(&mut s1b, 1.0);
        let mut s2b = agg.initialize();
        agg.accumulate(&mut s2b, 2.0);
        let mut s3b = agg.initialize();
        agg.accumulate(&mut s3b, 6.0);
        let right = agg.merge(s1b, agg.merge(s2b, s3b));
        assert_eq!(left, right);
        assert_eq!(agg.evaluate(left), Some(3.0));
    }
}
