//! Extended overlap/window tests: asymmetric halos, boundary clipping and
//! window/regrid composition.

use spangle_core::overlap::OverlapArrayRdd;
use spangle_core::{ArrayMeta, ChunkPolicy};
use spangle_dataflow::SpangleContext;

#[test]
fn asymmetric_halos_respect_each_dimension() {
    let ctx = SpangleContext::new(2);
    let ov = OverlapArrayRdd::ingest(
        &ctx,
        ArrayMeta::new(vec![24, 24], vec![8, 8]),
        vec![2, 0],
        ChunkPolicy::default(),
        |c| Some((c[0] * 100 + c[1]) as f64),
    );
    let chunks = ov.rdd().collect().unwrap();
    // The centre chunk (origin 8,8) expands only along dimension 0.
    let (_, oc) = chunks
        .iter()
        .find(|(_, oc)| oc.core_origin == vec![8, 8])
        .unwrap();
    assert_eq!(oc.expanded_origin, vec![6, 8]);
    assert_eq!(oc.expanded_extent, vec![12, 8]);
    // A radius-2 window along dim 0 only is fine; dim 1 would panic.
    let out = ov.window_mean(&[2, 0]);
    assert_eq!(out.count_valid().unwrap(), 24 * 24);
}

#[test]
fn windows_clip_at_the_array_boundary() {
    let ctx = SpangleContext::new(2);
    let ov = OverlapArrayRdd::ingest(
        &ctx,
        ArrayMeta::new(vec![6, 6], vec![3, 3]),
        vec![1, 1],
        ChunkPolicy::default(),
        |c| Some((c[0] + c[1]) as f64),
    );
    let dense = ov.window_mean(&[1, 1]).to_dense().unwrap();
    let mapper = ArrayMeta::new(vec![6, 6], vec![3, 3]).mapper();
    // The corner (0,0) sees only its 2x2 neighbourhood.
    let corner = dense[mapper.global_linear_index(&[0, 0])].unwrap();
    let expected = (1 + 1 + 2) as f64 / 4.0;
    assert!((corner - expected).abs() < 1e-12);
    // The centre sees the full 3x3 box.
    let centre = dense[mapper.global_linear_index(&[3, 3])].unwrap();
    let mut sum = 0.0;
    for dx in -1i64..=1 {
        for dy in -1i64..=1 {
            sum += ((3 + dx) + (3 + dy)) as f64;
        }
    }
    assert!((centre - sum / 9.0).abs() < 1e-12);
}

#[test]
fn window_over_nulls_averages_only_valid_neighbours() {
    let ctx = SpangleContext::new(2);
    // Null on odd columns.
    let ov = OverlapArrayRdd::ingest(
        &ctx,
        ArrayMeta::new(vec![8, 8], vec![4, 4]),
        vec![1, 1],
        ChunkPolicy::default(),
        |c| c[1].is_multiple_of(2).then(|| c[0] as f64),
    );
    let out = ov.window_mean(&[1, 1]);
    // Output validity follows input validity: odd columns stay null.
    assert_eq!(out.count_valid().unwrap(), 8 * 4);
    let dense = out.to_dense().unwrap();
    let mapper = ArrayMeta::new(vec![8, 8], vec![4, 4]).mapper();
    // Cell (4, 4): neighbours at columns 4 only (3 and 5 are null):
    // values 3,4,5 -> mean 4.
    let got = dense[mapper.global_linear_index(&[4, 4])].unwrap();
    assert!((got - 4.0).abs() < 1e-12, "got {got}");
}

#[test]
fn regrid_after_window_composes() {
    let ctx = SpangleContext::new(2);
    let ov = OverlapArrayRdd::ingest(
        &ctx,
        ArrayMeta::new(vec![16, 16], vec![8, 8]),
        vec![1, 1],
        ChunkPolicy::default(),
        |c| Some((c[0] * 16 + c[1]) as f64),
    );
    let smoothed = ov.window_mean(&[1, 1]);
    let coarse = smoothed.regrid_mean(&[4, 4]);
    assert_eq!(coarse.meta().dims(), &[4, 4]);
    assert_eq!(coarse.count_valid().unwrap(), 16);
}

#[test]
fn halo_wider_than_the_array_is_clipped_not_fatal() {
    let ctx = SpangleContext::new(1);
    let ov = OverlapArrayRdd::ingest(
        &ctx,
        ArrayMeta::new(vec![4, 4], vec![2, 2]),
        vec![10, 10],
        ChunkPolicy::default(),
        |c| Some((c[0] + c[1]) as f64),
    );
    let chunks = ov.rdd().collect().unwrap();
    for (_, oc) in &chunks {
        assert_eq!(oc.expanded_origin, vec![0, 0], "clipped to the array");
        assert_eq!(oc.expanded_extent, vec![4, 4]);
    }
    // Every cell's window is the whole array.
    let dense = ov.window_mean(&[10, 10]).to_dense().unwrap();
    let mean: f64 = (0..4)
        .flat_map(|x| (0..4).map(move |y| (x + y) as f64))
        .sum::<f64>()
        / 16.0;
    for v in dense.into_iter().flatten() {
        assert!((v - mean).abs() < 1e-12);
    }
}
