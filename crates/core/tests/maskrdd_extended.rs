//! Extended MaskRDD tests: mask algebra, attribute bookkeeping and the
//! lazy/eager contract under longer pipelines.

use spangle_core::maskrdd::{JoinMode, MaskRdd, SpangleArray};
use spangle_core::{ArrayBuilder, ArrayMeta};
use spangle_dataflow::SpangleContext;

fn stripes(ctx: &SpangleContext, modulus: usize, phase: usize) -> spangle_core::ArrayRdd<f64> {
    ArrayBuilder::new(ctx, ArrayMeta::new(vec![48, 48], vec![16, 16]))
        .ingest(move |c| (c[0] + phase).is_multiple_of(modulus).then(|| c[1] as f64))
        .build()
}

#[test]
fn mask_combine_matches_cellwise_boolean_logic() {
    let ctx = SpangleContext::new(3);
    let a = stripes(&ctx, 2, 0); // x even
    let b = stripes(&ctx, 3, 0); // x % 3 == 0
    let ma = MaskRdd::from_array(&a);
    let mb = MaskRdd::from_array(&b);

    let and_count: usize = ma
        .combine(&mb, JoinMode::And)
        .rdd()
        .aggregate(0usize, |acc, (_, m)| acc + m.0.count_ones(), |x, y| x + y)
        .unwrap();
    let or_count: usize = ma
        .combine(&mb, JoinMode::Or)
        .rdd()
        .aggregate(0usize, |acc, (_, m)| acc + m.0.count_ones(), |x, y| x + y)
        .unwrap();
    // x in 0..48: even AND %3==0 -> %6==0: 8 columns; OR -> 24+16-8=32.
    assert_eq!(and_count, 8 * 48);
    assert_eq!(or_count, 32 * 48);
}

#[test]
fn and_combine_drops_chunks_missing_on_either_side() {
    let ctx = SpangleContext::new(2);
    // a valid only in the left half, b only in the right half: their AND
    // has no chunks at all.
    let a = ArrayBuilder::new(&ctx, ArrayMeta::new(vec![32, 32], vec![16, 16]))
        .ingest(|c| (c[0] < 16).then_some(1.0f64))
        .build();
    let b = ArrayBuilder::new(&ctx, ArrayMeta::new(vec![32, 32], vec![16, 16]))
        .ingest(|c| (c[0] >= 16).then_some(1.0f64))
        .build();
    let and = MaskRdd::from_array(&a).combine(&MaskRdd::from_array(&b), JoinMode::And);
    assert_eq!(and.rdd().count().unwrap(), 0);
    let or = MaskRdd::from_array(&a).combine(&MaskRdd::from_array(&b), JoinMode::Or);
    assert_eq!(or.rdd().count().unwrap(), 4);
}

#[test]
fn join_concatenates_attribute_lists_in_order() {
    let ctx = SpangleContext::new(2);
    let left = SpangleArray::new(
        vec![
            ("u".into(), stripes(&ctx, 2, 0)),
            ("g".into(), stripes(&ctx, 2, 1)),
        ],
        true,
    );
    let right = SpangleArray::new(vec![("r".into(), stripes(&ctx, 3, 0))], true);
    let joined = left.join(&right, JoinMode::Or);
    assert_eq!(joined.attribute_names(), vec!["u", "g", "r"]);
    assert_eq!(joined.num_attributes(), 3);
}

#[test]
fn repeated_filters_tighten_monotonically() {
    let ctx = SpangleContext::new(2);
    let arr = SpangleArray::new(vec![("v".into(), stripes(&ctx, 1, 0))], true);
    let mut counts = Vec::new();
    let mut current = arr;
    for threshold in [10.0, 20.0, 30.0, 40.0] {
        current = current.filter_attribute("v", move |v| v >= threshold);
        counts.push(current.count_valid("v").unwrap());
    }
    assert!(
        counts.windows(2).all(|w| w[0] >= w[1]),
        "filters only remove cells: {counts:?}"
    );
    assert_eq!(counts.last(), Some(&(48 * 8)), "values 40..48 survive");
}

#[test]
#[should_panic(expected = "unknown attribute")]
fn unknown_attribute_names_are_rejected() {
    let ctx = SpangleContext::new(1);
    let arr = SpangleArray::new(vec![("v".into(), stripes(&ctx, 1, 0))], true);
    let _ = arr.materialize("nope");
}

#[test]
#[should_panic(expected = "mismatched geometry")]
fn mismatched_attribute_geometry_is_rejected() {
    let ctx = SpangleContext::new(1);
    let a = stripes(&ctx, 1, 0);
    let b = ArrayBuilder::new(&ctx, ArrayMeta::new(vec![48, 48], vec![8, 8]))
        .ingest(|_| Some(1.0f64))
        .build();
    let _ = SpangleArray::new(vec![("a".into(), a), ("b".into(), b)], true);
}

#[test]
fn global_mask_reflects_pending_operators() {
    let ctx = SpangleContext::new(2);
    let arr = SpangleArray::new(vec![("v".into(), stripes(&ctx, 1, 0))], true)
        .subarray(&[0, 0], &[24, 48]);
    let mask_count: usize = arr
        .global_mask()
        .rdd()
        .aggregate(0usize, |acc, (_, m)| acc + m.0.count_ones(), |x, y| x + y)
        .unwrap();
    assert_eq!(
        mask_count,
        24 * 48,
        "the pending subarray lives in the mask"
    );
}
