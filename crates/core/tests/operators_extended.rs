//! Extended operator tests for the core array layer: generic
//! accumulators, mixed-mode pipelines, degenerate geometries and
//! higher-rank arrays.

use spangle_core::accumulator::Accumulator;
use spangle_core::aggregate::builtin::{Avg, Count, Max, Min, Sum};
use spangle_core::{ArrayBuilder, ArrayMeta};
use spangle_dataflow::SpangleContext;

#[test]
fn running_max_accumulator_works_with_custom_operator() {
    let ctx = SpangleContext::new(2);
    let arr = ArrayBuilder::new(&ctx, ArrayMeta::new(vec![16, 4], vec![5, 2]))
        .ingest(|c| Some(((c[0] * 7 + c[1] * 13) % 23) as f64))
        .build();
    // Running maximum along axis 0 with -inf identity.
    let acc = Accumulator::new(0, f64::NEG_INFINITY, |a: f64, b: f64| a.max(b));
    let sync = acc.run_sync(&arr).unwrap().to_dense().unwrap();
    let asyn = acc.run_async(&arr).unwrap().to_dense().unwrap();
    let mapper = arr.meta().mapper();
    for y in 0..4 {
        let mut running = f64::NEG_INFINITY;
        for x in 0..16 {
            running = running.max(((x * 7 + y * 13) % 23) as f64);
            let i = mapper.global_linear_index(&[x, y]);
            assert_eq!(sync[i], Some(running), "sync ({x},{y})");
            assert_eq!(asyn[i], Some(running), "async ({x},{y})");
        }
    }
}

#[test]
fn three_dimensional_pipeline_end_to_end() {
    let ctx = SpangleContext::new(4);
    let arr = ArrayBuilder::new(&ctx, ArrayMeta::new(vec![12, 10, 6], vec![5, 4, 2]))
        .ingest(|c| {
            (c[0] + c[1] + c[2])
                .is_multiple_of(2)
                .then(|| (c[0] * 100 + c[1] * 10 + c[2]) as f64)
        })
        .build();
    let sub = arr.subarray(&[2, 1, 1], &[10, 9, 5]);
    let expected: Vec<f64> = (2u64..10)
        .flat_map(|x| {
            (1..9).flat_map(move |y| {
                (1..5).filter_map(move |z| {
                    (x + y + z)
                        .is_multiple_of(2)
                        .then_some((x * 100 + y * 10 + z) as f64)
                })
            })
        })
        .collect();
    assert_eq!(sub.aggregate(Count), Some(expected.len()));
    let sum = sub.aggregate(Sum).unwrap();
    assert!((sum - expected.iter().sum::<f64>()).abs() < 1e-9);
    assert_eq!(
        sub.aggregate(Min),
        expected.iter().copied().reduce(f64::min)
    );
    assert_eq!(
        sub.aggregate(Max),
        expected.iter().copied().reduce(f64::max)
    );
}

#[test]
fn one_cell_chunks_and_one_cell_arrays() {
    let ctx = SpangleContext::new(2);
    // Chunk shape of one cell: extreme chunking still works.
    let tiny_chunks = ArrayBuilder::new(&ctx, ArrayMeta::new(vec![6, 6], vec![1, 1]))
        .ingest(|c| (c[0] == c[1]).then(|| c[0] as f64))
        .build();
    assert_eq!(tiny_chunks.num_chunks().unwrap(), 6);
    assert_eq!(tiny_chunks.aggregate(Sum), Some(15.0));

    // A single-cell array.
    let single = ArrayBuilder::new(&ctx, ArrayMeta::new(vec![1], vec![1]))
        .ingest(|_| Some(7.5f64))
        .build();
    assert_eq!(single.get(&[0]).unwrap(), Some(7.5));
    assert_eq!(single.aggregate(Avg), Some(7.5));
}

#[test]
fn fully_null_arrays_have_no_chunks_and_empty_aggregates() {
    let ctx = SpangleContext::new(2);
    let empty = ArrayBuilder::new(&ctx, ArrayMeta::new(vec![32, 32], vec![8, 8]))
        .ingest(|_| None::<f64>)
        .build();
    assert_eq!(empty.num_chunks().unwrap(), 0);
    assert_eq!(empty.count_valid().unwrap(), 0);
    assert_eq!(empty.aggregate(Avg), None);
    assert_eq!(empty.aggregate(Min), None);
    assert_eq!(empty.aggregate(Sum), Some(0.0));
    // Operators on an empty array stay empty and do not panic.
    assert_eq!(
        empty
            .subarray(&[0, 0], &[16, 16])
            .filter(|v| v > 0.0)
            .count_valid()
            .unwrap(),
        0
    );
}

#[test]
fn generic_element_types_flow_through_the_stack() {
    let ctx = SpangleContext::new(2);
    // i32 cells.
    let ints = ArrayBuilder::new(&ctx, ArrayMeta::new(vec![10, 10], vec![4, 4]))
        .ingest(|c| (c[0] > c[1]).then(|| (c[0] * 10 + c[1]) as i32))
        .build();
    assert_eq!(ints.count_valid().unwrap(), 45);
    assert_eq!(ints.get(&[5, 2]).unwrap(), Some(52));
    // map_values across element types: i32 -> f32.
    let floats = ints.map_values(|v| v as f32 / 2.0);
    assert_eq!(floats.get(&[5, 2]).unwrap(), Some(26.0f32));
    // u8 cells with filtering.
    let bytes = ArrayBuilder::new(&ctx, ArrayMeta::new(vec![16], vec![4]))
        .ingest(|c| Some((c[0] * 16) as u8))
        .build();
    assert_eq!(bytes.filter(|b| b >= 128).count_valid().unwrap(), 8);
}

#[test]
fn subarray_of_subarray_prunes_cumulatively() {
    let ctx = SpangleContext::new(2);
    let arr = ArrayBuilder::new(&ctx, ArrayMeta::new(vec![64, 64], vec![16, 16]))
        .ingest(|c| Some((c[0] + c[1]) as f64))
        .build();
    arr.persist();
    arr.count_valid().unwrap();
    let sub = arr
        .subarray(&[0, 0], &[32, 32])
        .subarray(&[16, 16], &[64, 64]);
    // Intersection is [16,32) x [16,32): exactly one chunk survives.
    assert_eq!(sub.num_chunks().unwrap(), 1);
    assert_eq!(sub.count_valid().unwrap(), 256);
}

#[test]
fn mode_transitions_along_a_filtering_pipeline() {
    let ctx = SpangleContext::new(2);
    let arr = ArrayBuilder::new(&ctx, ArrayMeta::new(vec![128, 128], vec![64, 64]))
        .ingest(|c| Some((c[0] * 128 + c[1]) as f64))
        .build();
    assert_eq!(arr.mode_counts().unwrap()["dense"], 4);
    // ~25% survive: sparse mode.
    let quarter = arr.filter(|v| v % 4.0 == 0.0);
    assert_eq!(quarter.mode_counts().unwrap()["sparse"], 4);
    // Survivors only where y == 0 and x % 4 == 0: the two chunks touching
    // y=0 keep 16 of 4096 cells (super-sparse); the other two empty out.
    let rare = arr.filter(|v| v % 512.0 == 0.0);
    let modes = rare.mode_counts().unwrap();
    assert_eq!(modes["super-sparse"], 2, "{modes:?}");
    assert_eq!(rare.num_chunks().unwrap(), 2, "emptied chunks disappear");
    // Contents survive every transition.
    assert_eq!(rare.count_valid().unwrap(), 32);
}

#[test]
fn one_dimensional_subarray_and_boundary_chunks() {
    let ctx = SpangleContext::new(2);
    // 1-D array with an edge chunk (100 cells in chunks of 16).
    let arr = ArrayBuilder::new(&ctx, ArrayMeta::new(vec![100], vec![16]))
        .ingest(|c| (!c[0].is_multiple_of(3)).then(|| c[0] as f64))
        .build();
    let sub = arr.subarray(&[10], &[90]);
    let expected: Vec<f64> = (10..90).filter(|x| x % 3 != 0).map(|x| x as f64).collect();
    assert_eq!(sub.count_valid().unwrap(), expected.len());
    let sum = sub.aggregate(Sum).unwrap();
    assert!((sum - expected.iter().sum::<f64>()).abs() < 1e-9);
    // Boundary-only selection inside the clipped edge chunk.
    let edge = arr.subarray(&[97], &[100]);
    assert_eq!(edge.count_valid().unwrap(), 2); // 97, 98 valid; 99 % 3 == 0
}

#[test]
fn aggregate_by_handles_many_small_groups() {
    let ctx = SpangleContext::new(4);
    let arr = ArrayBuilder::new(&ctx, ArrayMeta::new(vec![40, 40], vec![8, 8]))
        .ingest(|c| Some((c[0] * 40 + c[1]) as f64))
        .build();
    // One group per cell value modulo 100: 100 groups over 1600 cells.
    let mut groups = arr
        .aggregate_by(|c| ((c[0] * 40 + c[1]) % 100) as u64, Count)
        .unwrap();
    groups.sort();
    assert_eq!(groups.len(), 100);
    assert!(groups.iter().all(|(_, n)| *n == 16));
}
