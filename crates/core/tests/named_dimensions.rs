//! Named dimensions and the axis-collapsing Aggregator form (§V-B).

use spangle_core::aggregate::builtin::{Avg, Count, Sum};
use spangle_core::{ArrayBuilder, ArrayMeta};
use spangle_dataflow::SpangleContext;

fn meta() -> ArrayMeta {
    ArrayMeta::new(vec![6, 4, 3], vec![3, 2, 3]).with_dim_names(&["x", "y", "t"])
}

#[test]
fn dim_names_resolve_to_indices() {
    let m = meta();
    assert_eq!(m.dim_index("x"), 0);
    assert_eq!(m.dim_index("y"), 1);
    assert_eq!(m.dim_index("t"), 2);
    assert_eq!(m.dim_names(), Some(vec!["x", "y", "t"]));
}

#[test]
#[should_panic(expected = "unknown dimension")]
fn unknown_dimension_names_panic() {
    meta().dim_index("z");
}

#[test]
#[should_panic(expected = "duplicate dimension name")]
fn duplicate_dimension_names_are_rejected() {
    ArrayMeta::new(vec![2, 2], vec![1, 1]).with_dim_names(&["x", "x"]);
}

#[test]
fn collapsing_time_averages_per_spatial_cell() {
    let ctx = SpangleContext::new(2);
    let arr = ArrayBuilder::new(&ctx, meta())
        .ingest(|c| Some((c[0] * 100 + c[1] * 10 + c[2]) as f64))
        .build();
    let mut groups = arr.aggregate_over(&["t"], Avg).unwrap();
    groups.sort_by(|a, b| a.0.cmp(&b.0));
    assert_eq!(groups.len(), 6 * 4);
    for (key, avg) in groups {
        let (x, y) = (key[0] as usize, key[1] as usize);
        let expected = (0..3).map(|t| (x * 100 + y * 10 + t) as f64).sum::<f64>() / 3.0;
        assert!((avg - expected).abs() < 1e-12, "({x},{y})");
    }
}

#[test]
fn collapsing_space_counts_per_time_step() {
    let ctx = SpangleContext::new(2);
    let arr = ArrayBuilder::new(&ctx, meta())
        .ingest(|c| (c[2] != 1 || c[0].is_multiple_of(2)).then_some(1.0f64))
        .build();
    let mut groups = arr.aggregate_over(&["x", "y"], Count).unwrap();
    groups.sort();
    assert_eq!(
        groups,
        vec![
            (vec![0], 24),
            (vec![1], 12), // half the x values are null at t=1
            (vec![2], 24),
        ]
    );
}

#[test]
fn collapsing_everything_yields_one_global_group() {
    let ctx = SpangleContext::new(2);
    let arr = ArrayBuilder::new(&ctx, meta())
        .ingest(|_| Some(2.0f64))
        .build();
    let groups = arr.aggregate_over(&["x", "y", "t"], Sum).unwrap();
    assert_eq!(groups, vec![(vec![], 2.0 * (6 * 4 * 3) as f64)]);
}
