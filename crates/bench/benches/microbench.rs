//! Criterion microbenchmarks for the core data structures: population
//! count strategies (the substance of Fig. 8), chunk access modes, and
//! block-multiply kernels (the substance of Fig. 5 / §V-A4).

use spangle_bench::criterion::{BenchmarkId, Criterion};
use spangle_bench::{criterion_group, criterion_main};
use spangle_bitmask::{
    harley_seal, Bitmask, DeltaCursor, HierarchicalBitmask, Milestones, OffsetArray,
};
use spangle_core::{Chunk, ChunkPolicy};
use spangle_linalg::block::{
    block_from_triplets, block_multiply_dense_into, block_multiply_into,
    block_multiply_offsets_into,
};
use std::hint::black_box;

fn pattern_mask(len: usize, every: usize) -> Bitmask {
    Bitmask::from_fn(len, |i| (i * 2654435761) % every == 0)
}

fn bench_popcount(c: &mut Criterion) {
    let mut group = c.benchmark_group("popcount");
    group.sample_size(20);
    let mask = pattern_mask(65536, 7);
    group.bench_function("harley_seal_64k_bits", |b| {
        b.iter(|| harley_seal(black_box(mask.words())))
    });
    group.bench_function("scalar_64k_bits", |b| {
        b.iter(|| {
            mask.words()
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum::<usize>()
        })
    });
    group.finish();
}

fn bench_rank_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("rank_strategies");
    group.sample_size(20);
    for bits in [4096usize, 65536] {
        let mask = pattern_mask(bits, 5);
        let milestones = Milestones::build(&mask);
        let positions: Vec<usize> = (0..bits).step_by(97).collect();
        group.bench_with_input(BenchmarkId::new("naive", bits), &bits, |b, _| {
            b.iter(|| positions.iter().map(|&p| mask.rank_naive(p)).sum::<usize>())
        });
        group.bench_with_input(BenchmarkId::new("milestones", bits), &bits, |b, _| {
            b.iter(|| {
                positions
                    .iter()
                    .map(|&p| milestones.rank(&mask, p))
                    .sum::<usize>()
            })
        });
        group.bench_with_input(BenchmarkId::new("delta_sequential", bits), &bits, |b, _| {
            b.iter(|| {
                let mut cursor = DeltaCursor::new(&mask);
                positions.iter().map(|&p| cursor.rank(p)).sum::<usize>()
            })
        });
    }
    group.finish();
}

fn bench_chunk_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("chunk_access");
    group.sample_size(20);
    let volume = 65536;
    let payload: Vec<f64> = (0..volume).map(|i| i as f64).collect();
    let mask = pattern_mask(volume, 5);
    let sparse_naive =
        Chunk::build(payload.clone(), mask.clone(), &ChunkPolicy::naive_sparse()).expect("chunk");
    let sparse_opt =
        Chunk::build(payload.clone(), mask.clone(), &ChunkPolicy::default()).expect("chunk");
    let dense = Chunk::build(payload, mask, &ChunkPolicy::always_dense()).expect("chunk");
    group.bench_function("random_get_naive", |b| {
        b.iter(|| {
            (0..volume)
                .step_by(61)
                .filter_map(|i| sparse_naive.get_naive(i))
                .sum::<f64>()
        })
    });
    group.bench_function("random_get_milestones", |b| {
        b.iter(|| {
            (0..volume)
                .step_by(61)
                .filter_map(|i| sparse_opt.get(i))
                .sum::<f64>()
        })
    });
    group.bench_function("random_get_dense", |b| {
        b.iter(|| {
            (0..volume)
                .step_by(61)
                .filter_map(|i| dense.get(i))
                .sum::<f64>()
        })
    });
    group.bench_function("sequential_iter_valid", |b| {
        b.iter(|| sparse_opt.iter_valid().map(|(_, v)| v).sum::<f64>())
    });
    group.finish();
}

fn bench_block_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_multiply");
    group.sample_size(15);
    let n = 128;
    for every in [2usize, 20, 200] {
        let a = block_from_triplets(
            n,
            n,
            (0..n).flat_map(|r| {
                (0..n)
                    .filter(move |cc| (r * 31 + cc * 7) % every == 0)
                    .map(move |cc| (r, cc, 1.5))
            }),
            &ChunkPolicy::default(),
        )
        .expect("block");
        let b_block = block_from_triplets(
            n,
            n,
            (0..n).flat_map(|r| {
                (0..n)
                    .filter(move |cc| (r * 13 + cc * 3) % every == 0)
                    .map(move |cc| (r, cc, 0.5))
            }),
            &ChunkPolicy::default(),
        )
        .expect("block");
        let offsets = OffsetArray::from_mask(&a.mask());
        let values: Vec<f64> = a.iter_valid().map(|(_, v)| v).collect();
        group.bench_with_input(BenchmarkId::new("bitmask", every), &every, |bch, _| {
            bch.iter(|| {
                let mut out = vec![0.0; n * n];
                block_multiply_into(&a, n, &b_block, n, n, &mut out);
                out
            })
        });
        group.bench_with_input(BenchmarkId::new("offsets", every), &every, |bch, _| {
            bch.iter(|| {
                let mut out = vec![0.0; n * n];
                block_multiply_offsets_into(&offsets, &values, n, &b_block, n, n, &mut out);
                out
            })
        });
        group.bench_with_input(BenchmarkId::new("dense", every), &every, |bch, _| {
            bch.iter(|| {
                let mut out = vec![0.0; n * n];
                block_multiply_dense_into(&a, n, &b_block, n, n, &mut out);
                out
            })
        });
    }
    group.finish();
}

fn bench_hierarchical(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchical_mask");
    group.sample_size(20);
    let mask = pattern_mask(1 << 18, 5000);
    group.bench_function("compress", |b| {
        b.iter(|| HierarchicalBitmask::compress(black_box(&mask)))
    });
    let h = HierarchicalBitmask::compress(&mask);
    group.bench_function("iter_ones", |b| b.iter(|| h.iter_ones().sum::<usize>()));
    group.finish();
}

/// Short measurement windows so `cargo bench --workspace` stays quick;
/// raise `measurement_time`/`sample_size` here for tighter numbers.
fn quick_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(900))
        .warm_up_time(std::time::Duration::from_millis(200))
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_popcount, bench_rank_strategies, bench_chunk_access, bench_block_kernels, bench_hierarchical
}
criterion_main!(benches);
