//! Criterion versions of the paper's figures, at reduced scale so
//! `cargo bench` completes quickly. The full-scale sweeps live in the
//! `fig7`…`fig12`/`table3` binaries (see `spangle-bench`'s crate docs).

use spangle_baselines::{
    pagerank_edge_list, BlockMatrix, CooBlock, CscBlock, DenseBlock, RowLogReg,
};
use spangle_bench::criterion::{BenchmarkId, Criterion};
use spangle_bench::{criterion_group, criterion_main};
use spangle_core::{ArrayBuilder, ArrayMeta, ChunkPolicy};
use spangle_dataflow::SpangleContext;
use spangle_linalg::{DenseVector, DistMatrix};
use spangle_ml::{datasets, pagerank, Graph, LogisticRegression, OptLevel, SgdConfig};
use spangle_raster::{ChlConfig, DenseRaster, QueryRange, RasterSystem, SpangleRaster};

fn small_ctx() -> SpangleContext {
    SpangleContext::new(4)
}

/// Fig. 7 (reduced): Q1/Q4 on a CHL-like raster, Spangle vs dense.
fn bench_fig7(c: &mut Criterion) {
    let ctx = small_ctx();
    let cfg = ChlConfig {
        lon: 256,
        lat: 128,
        time: 2,
        ..ChlConfig::default()
    };
    let meta = ArrayMeta::new(cfg.dims(), vec![64, 64, 1]);
    let spangle = SpangleRaster::ingest(&ctx, meta.clone(), cfg.value_fn());
    let dense = DenseRaster::ingest(&ctx, meta, cfg.value_fn());
    let range = QueryRange {
        lo: vec![32, 16, 0],
        hi: vec![224, 112, 2],
    };
    let mut group = c.benchmark_group("fig7_raster_queries");
    group.sample_size(10);
    group.bench_function("q1_spangle", |b| b.iter(|| spangle.q1_avg(&range)));
    group.bench_function("q1_scispark_dense", |b| b.iter(|| dense.q1_avg(&range)));
    group.bench_function("q4_spangle", |b| {
        b.iter(|| spangle.q4_filter_count(&range, 0.1, 0.8))
    });
    group.bench_function("q4_scispark_dense", |b| {
        b.iter(|| dense.q4_filter_count(&range, 0.1, 0.8))
    });
    group.finish();
}

/// Fig. 8 (reduced): chunk-size sweep of the three access strategies.
fn bench_fig8(c: &mut Criterion) {
    let ctx = small_ctx();
    let cfg = ChlConfig {
        lon: 512,
        lat: 256,
        time: 1,
        ..ChlConfig::default()
    };
    let mut group = c.benchmark_group("fig8_access_strategies");
    group.sample_size(10);
    for w in [32usize, 128] {
        let meta = ArrayMeta::new(cfg.dims(), vec![w, w, 1]);
        for (label, policy) in [
            (
                "naive",
                ChunkPolicy {
                    dense_threshold: 1.1,
                    build_milestones: false,
                },
            ),
            ("dense", ChunkPolicy::always_dense()),
            (
                "opt",
                ChunkPolicy {
                    dense_threshold: 1.1,
                    build_milestones: true,
                },
            ),
        ] {
            let arr = ArrayBuilder::new(&ctx, meta.clone())
                .policy(policy)
                .ingest(cfg.value_fn())
                .build();
            arr.persist();
            arr.count_valid().expect("ingest");
            let use_naive = label == "naive";
            group.bench_with_input(BenchmarkId::new(label, w), &w, |b, _| {
                b.iter(|| {
                    arr.rdd()
                        .run_partitions(move |_, chunks| {
                            let mut acc = 0.0;
                            for (_, chunk) in chunks {
                                for i in 0..chunk.volume() {
                                    let v = if use_naive {
                                        chunk.get_naive(i)
                                    } else {
                                        chunk.get(i)
                                    };
                                    if let Some(v) = v {
                                        acc += v;
                                    }
                                }
                            }
                            acc
                        })
                        .expect("scan")
                })
            });
        }
    }
    group.finish();
}

/// Fig. 9b (reduced): lazy vs eager multi-attribute pipelines.
fn bench_fig9b(c: &mut Criterion) {
    use spangle_core::maskrdd::SpangleArray;
    let ctx = small_ctx();
    let cfg = spangle_raster::SdssConfig {
        width: 256,
        height: 128,
        images: 2,
        ..spangle_raster::SdssConfig::default()
    };
    let meta = ArrayMeta::new(cfg.dims(), vec![64, 64, 1]);
    let build = |lazy: bool| {
        let attrs: Vec<(String, _)> = (0..3)
            .map(|b| {
                let arr = ArrayBuilder::new(&ctx, meta.clone())
                    .ingest(cfg.band_fn(b))
                    .build();
                arr.persist();
                arr.count_valid().expect("ingest");
                (format!("b{b}"), arr)
            })
            .collect();
        SpangleArray::new(attrs, lazy)
    };
    let lazy = build(true);
    let eager = build(false);
    let pipeline = |arr: &SpangleArray<f64>| {
        let chained = arr
            .subarray(&[16, 16, 0], &[240, 112, 2])
            .filter_attribute("b0", |v| v > 50.0);
        arr.attribute_names()
            .iter()
            .map(|n| chained.count_valid(n).expect("pipeline"))
            .sum::<usize>()
    };
    let mut group = c.benchmark_group("fig9b_maskrdd");
    group.sample_size(10);
    group.bench_function("with_maskrdd_3attrs", |b| b.iter(|| pipeline(&lazy)));
    group.bench_function("without_maskrdd_3attrs", |b| b.iter(|| pipeline(&eager)));
    group.finish();
}

/// Fig. 10 (reduced): M×V across the four formats on a mouse-like matrix.
fn bench_fig10(c: &mut Criterion) {
    let ctx = small_ctx();
    let n = 1024;
    let block = 128;
    let f = |r: usize, cc: usize| {
        (r * 31 + cc * 17)
            .is_multiple_of(70)
            .then(|| (r + cc) as f64)
    };
    let spangle = DistMatrix::generate(&ctx, n, n, (block, block), ChunkPolicy::default(), f);
    spangle.persist();
    spangle.nnz().expect("ingest");
    let coo = BlockMatrix::<CooBlock>::generate(&ctx, n, n, (block, block), f);
    coo.persist();
    coo.nnz().expect("ingest");
    let csc = BlockMatrix::<CscBlock>::generate(&ctx, n, n, (block, block), f);
    csc.persist();
    csc.nnz().expect("ingest");
    let dense = BlockMatrix::<DenseBlock>::generate(&ctx, n, n, (block, block), f);
    dense.persist();
    dense.nnz().expect("ingest");
    let x: Vec<f64> = (0..n).map(|i| (i % 5) as f64).collect();
    let xv = DenseVector::column(x.clone());

    let mut group = c.benchmark_group("fig10_matvec");
    group.sample_size(10);
    group.bench_function("spangle", |b| b.iter(|| spangle.matvec(&xv).expect("mv")));
    group.bench_function("spark_coo", |b| b.iter(|| coo.matvec(&x).expect("mv")));
    group.bench_function("mllib_csc", |b| b.iter(|| csc.matvec(&x).expect("mv")));
    group.bench_function("scispark_dense", |b| {
        b.iter(|| dense.matvec(&x).expect("mv"))
    });
    group.finish();
}

/// Fig. 11 (reduced): one PageRank run, Spangle vs edge-list.
fn bench_fig11(c: &mut Criterion) {
    let ctx = small_ctx();
    let g = Graph::power_law(&ctx, 4096, 40_000, 77, 4);
    g.edges().persist();
    g.num_edges().expect("graph");
    let mut group = c.benchmark_group("fig11_pagerank_5iters");
    group.sample_size(10);
    group.bench_function("spangle", |b| {
        b.iter(|| pagerank(&g, 128, false, 0.85, 5).expect("pr"))
    });
    group.bench_function("spark_edgelist", |b| {
        b.iter(|| pagerank_edge_list(&g, 0.85, 5, 4).expect("pr"))
    });
    group.finish();
}

/// Fig. 12b / Table III (reduced): SGD optimisation levels + the MLlib
/// row baseline.
fn bench_fig12(c: &mut Criterion) {
    let ctx = small_ctx();
    let data = datasets::synthetic_logreg(&ctx, 4, 4, 128, 512, 8, 13);
    data.persist();
    data.rdd().count().expect("ingest");
    let mut group = c.benchmark_group("fig12_sgd_20iters");
    group.sample_size(10);
    for (label, opt) in [
        ("none", OptLevel::None),
        ("opt1", OptLevel::Opt1),
        ("opt1_opt2", OptLevel::Opt1Opt2),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                LogisticRegression::train(
                    &data,
                    SgdConfig {
                        max_iters: 20,
                        tolerance: 0.0,
                        batch_chunks: 2,
                        opt,
                        ..SgdConfig::default()
                    },
                )
                .expect("train")
            })
        });
    }
    let baseline = RowLogReg::ingest(&data, None).expect("row ingest");
    group.bench_function("mllib_row_fullbatch", |b| {
        b.iter(|| baseline.train(0.6, 0.0, 20).expect("train"))
    });
    group.finish();
}

/// Ablation (§VI-A): matrix multiplication through the shuffle plan vs
/// the fused local join over a pre-partitioned (reused) layout.
fn bench_local_join_ablation(c: &mut Criterion) {
    let ctx = small_ctx();
    let n = 512;
    let f = |r: usize, cc: usize| {
        (r * 13 + cc * 29)
            .is_multiple_of(40)
            .then_some((r % 7) as f64 + 1.0)
    };
    let a = DistMatrix::generate(&ctx, n, n, (64, 64), ChunkPolicy::default(), f);
    a.persist();
    a.nnz().expect("ingest");
    let left = a.partition_left_by_inner(4);
    let right = a.partition_right_by_inner(4);
    DistMatrix::multiply_local(&left, &right)
        .nnz()
        .expect("warm");

    let mut group = c.benchmark_group("ablation_local_join");
    group.sample_size(10);
    group.bench_function("shuffle_plan", |b| {
        b.iter(|| a.multiply(&a).nnz().expect("multiply"))
    });
    group.bench_function("local_join_reused_layout", |b| {
        b.iter(|| {
            DistMatrix::multiply_local(&left, &right)
                .nnz()
                .expect("multiply")
        })
    });
    group.finish();
}

/// Ablation: flat vs hierarchical adjacency masks on a super-sparse
/// graph (the Fig. 11 LiveJournal setting).
fn bench_mask_mode_ablation(c: &mut Criterion) {
    use spangle_ml::pagerank as run_pagerank;
    let ctx = small_ctx();
    let g = Graph::power_law(&ctx, 16_384, 60_000, 31, 4);
    g.edges().persist();
    g.num_edges().expect("graph");
    let mut group = c.benchmark_group("ablation_mask_mode_pagerank");
    group.sample_size(10);
    group.bench_function("flat_bitmask", |b| {
        b.iter(|| run_pagerank(&g, 512, false, 0.85, 3).expect("pr"))
    });
    group.bench_function("hierarchical_bitmask", |b| {
        b.iter(|| run_pagerank(&g, 512, true, 0.85, 3).expect("pr"))
    });
    group.finish();
}

/// Short measurement windows so `cargo bench --workspace` stays quick;
/// raise `measurement_time`/`sample_size` here for tighter numbers.
fn quick_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(900))
        .warm_up_time(std::time::Duration::from_millis(200))
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_fig7, bench_fig8, bench_fig9b, bench_fig10, bench_fig11, bench_fig12, bench_local_join_ablation, bench_mask_mode_ablation
}
criterion_main!(benches);
