#![warn(missing_docs)]

//! Shared harness utilities for the paper-reproduction binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! Spangle paper (see DESIGN.md §3 for the index) and prints the same
//! rows/series the paper reports. Run them in release mode:
//!
//! ```text
//! cargo run -p spangle-bench --release --bin fig7
//! cargo run -p spangle-bench --release --bin fig8
//! cargo run -p spangle-bench --release --bin fig9a
//! cargo run -p spangle-bench --release --bin fig9b
//! cargo run -p spangle-bench --release --bin fig10
//! cargo run -p spangle-bench --release --bin fig11
//! cargo run -p spangle-bench --release --bin fig12
//! cargo run -p spangle-bench --release --bin table3
//! ```

use std::time::{Duration, Instant};

pub mod criterion;

/// Times a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Milliseconds with two decimals, for table cells.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Seconds with three decimals, for table cells.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Mebibytes with two decimals.
pub fn mib(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// A simple fixed-width table printer for harness output.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Prints the table with aligned columns.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let print_row = |cells: &[String]| {
            let line: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            println!("| {} |", line.join(" | "));
        };
        print_row(&self.header);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("|-{}-|", sep.join("-|-"));
        for row in &self.rows {
            print_row(row);
        }
    }
}

/// Prints the standard experiment banner.
pub fn banner(id: &str, description: &str) {
    println!("== {id}: {description}");
    println!("== cluster: simulated in-process executors; times are wall-clock on this machine");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(Duration::from_micros(1500)), "1.50");
        assert_eq!(secs(Duration::from_millis(2500)), "2.500");
        assert_eq!(mib(3 * 1024 * 1024), "3.00");
    }

    #[test]
    fn time_reports_the_closure_result() {
        let (value, elapsed) = time(|| 6 * 7);
        assert_eq!(value, 42);
        assert!(elapsed < Duration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only one".into()]);
    }
}
