#![warn(missing_docs)]

//! Shared harness utilities for the paper-reproduction binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! Spangle paper (see DESIGN.md §3 for the index) and prints the same
//! rows/series the paper reports. Run them in release mode:
//!
//! ```text
//! cargo run -p spangle-bench --release --bin fig7
//! cargo run -p spangle-bench --release --bin fig8
//! cargo run -p spangle-bench --release --bin fig9a
//! cargo run -p spangle-bench --release --bin fig9b
//! cargo run -p spangle-bench --release --bin fig10
//! cargo run -p spangle-bench --release --bin fig11
//! cargo run -p spangle-bench --release --bin fig12
//! cargo run -p spangle-bench --release --bin table3
//! ```

use std::time::{Duration, Instant};

pub mod criterion;

/// Times a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Milliseconds with two decimals, for table cells.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Seconds with three decimals, for table cells.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Mebibytes with two decimals.
pub fn mib(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// A simple fixed-width table printer for harness output.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Prints the table with aligned columns.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let print_row = |cells: &[String]| {
            let line: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            println!("| {} |", line.join(" | "));
        };
        print_row(&self.header);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("|-{}-|", sep.join("-|-"));
        for row in &self.rows {
            print_row(row);
        }
    }
}

/// Prints the standard experiment banner.
pub fn banner(id: &str, description: &str) {
    println!("== {id}: {description}");
    println!("== cluster: simulated in-process executors; times are wall-clock on this machine");
    println!();
}

/// A JSON value for the machine-readable `BENCH_*.json` artifacts the
/// figure harnesses drop at the repository root. Hand-rolled because the
/// workspace carries no external dependencies.
#[derive(Clone, Debug)]
pub enum Json {
    /// An unsigned integer (counters, byte totals).
    U64(u64),
    /// A float (times in milliseconds, ratios).
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object entries.
    pub fn obj(entries: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::F64(x) => {
                if x.is_finite() {
                    out.push_str(&format!("{x:.3}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(key.clone()).render_into(out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// The executor-backend label stamped into every artifact: the parsed
/// `SPANGLE_BACKEND` value, `"inproc"` when unset or unrecognised — the
/// same default the context builder applies.
pub fn backend_label() -> &'static str {
    match std::env::var("SPANGLE_BACKEND")
        .ok()
        .and_then(|raw| raw.parse::<spangle_dataflow::BackendKind>().ok())
        .unwrap_or_default()
    {
        spangle_dataflow::BackendKind::InProc => "inproc",
        spangle_dataflow::BackendKind::Proc => "proc",
    }
}

/// Writes a figure harness's machine-readable results to
/// `BENCH_<name>.json` at the repository root and prints the path.
///
/// Every object artifact gets a top-level `"backend"` key stamped in
/// here (unless the harness set one itself), so `bench_compare` can
/// refuse to diff a multi-process run against an in-process baseline.
pub fn write_bench_json(name: &str, value: &Json) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(format!("BENCH_{name}.json"));
    let mut value = value.clone();
    if let Json::Obj(entries) = &mut value {
        if !entries.iter().any(|(key, _)| key == "backend") {
            entries.insert(0, ("backend".into(), Json::Str(backend_label().into())));
        }
    }
    let mut body = value.render();
    body.push('\n');
    match std::fs::write(&path, body) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("could not write {}: {err}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(Duration::from_micros(1500)), "1.50");
        assert_eq!(secs(Duration::from_millis(2500)), "2.500");
        assert_eq!(mib(3 * 1024 * 1024), "3.00");
    }

    #[test]
    fn time_reports_the_closure_result() {
        let (value, elapsed) = time(|| 6 * 7);
        assert_eq!(value, 42);
        assert!(elapsed < Duration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn json_renders_nested_values_with_escapes() {
        let v = Json::obj(vec![
            ("n", Json::U64(3)),
            ("t", Json::F64(1.5)),
            ("s", Json::Str("a\"b\\c\nd".into())),
            ("xs", Json::Arr(vec![Json::U64(1), Json::U64(2)])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"n":3,"t":1.500,"s":"a\"b\\c\nd","xs":[1,2]}"#
        );
    }
}
