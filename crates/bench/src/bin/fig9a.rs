//! Figure 9a: in-memory data size vs chunk size, dense vs sparse modes,
//! on CHL-like data.
//!
//! The dense series grows with the chunk size (invalid cells are
//! materialised and fewer chunks are droppable); the sparse series stays
//! roughly flat.

use spangle_bench::{banner, mib, Table};
use spangle_core::{ArrayBuilder, ArrayMeta, ChunkPolicy};
use spangle_dataflow::SpangleContext;
use spangle_raster::ChlConfig;

fn main() {
    banner(
        "Figure 9a",
        "data size vs chunk size, dense vs sparse modes",
    );
    // Sparser than the generator default: most of the globe is land or
    // cloud, as in the paper's CHL composites, so chunks really are sparse.
    let cfg = ChlConfig {
        lon: 2000,
        lat: 1000,
        time: 1,
        land_per_mille: 600,
        cloud_per_mille: 350,
        ..ChlConfig::default()
    };
    let ctx = SpangleContext::new(8);
    let mut table = Table::new(&[
        "w",
        "dense(MiB)",
        "sparse(MiB)",
        "dense chunks",
        "sparse chunks",
    ]);
    for w in [16usize, 32, 64, 128, 250, 500, 1000] {
        let meta = ArrayMeta::new(cfg.dims(), vec![w, w, 1]);
        let dense = ArrayBuilder::new(&ctx, meta.clone())
            .policy(ChunkPolicy::always_dense())
            .ingest(cfg.value_fn())
            .build();
        let sparse = ArrayBuilder::new(&ctx, meta).ingest(cfg.value_fn()).build();
        table.row(vec![
            w.to_string(),
            mib(dense.mem_bytes().expect("dense size")),
            mib(sparse.mem_bytes().expect("sparse size")),
            dense.num_chunks().expect("dense chunks").to_string(),
            sparse.num_chunks().expect("sparse chunks").to_string(),
        ]);
    }
    table.print();
    println!();
    println!(
        "note: both series drop at small w because empty chunks are never \
         materialised; dense grows with w as invalid cells are stored."
    );
}
