//! Figure 10: machine-learning core operations — `M×V`, `Vᵀ×M`, `MᵀM` —
//! across Spangle, Spark (COO), MLlib (CSC), SciSpark (dense blocks) and
//! the SciDB stand-in, on four matrix classes scaled after Table IIa.
//!
//! As in the paper, a `x` cell means the system could not run the
//! operation: the dense format's materialised size exceeds the modelled
//! executor memory, exactly the OOM the paper reports for Mouse/Hardesty/
//! Mawi on dense systems.

use spangle_baselines::{BlockMatrix, CooBlock, CscBlock, DenseBlock, LocalArrayEngine};
use spangle_bench::{banner, ms, time, write_bench_json, Json, Table};
use spangle_core::{ArrayMeta, ChunkPolicy};
use spangle_dataflow::{JobReport, MetricsSnapshot, SpangleContext};
use spangle_linalg::{DenseVector, DistMatrix};
use std::time::Duration;

/// Modelled per-executor memory for the dense comparator (the paper's
/// executors had 10 GB; scale to our matrix sizes).
const DENSE_BUDGET_BYTES: usize = 256 << 20;

/// One matrix workload, scaled from Table IIa.
struct Workload {
    name: &'static str,
    rows: usize,
    cols: usize,
    block: usize,
    /// Per-mille density.
    density_per_mille: u64,
    /// Whether `MᵀM` is attempted (the paper's bounded-time rule).
    try_gram: bool,
}

const WORKLOADS: &[Workload] = &[
    // Covtype: 581K x 54, density 0.218 -> tall dense-ish.
    Workload {
        name: "covtype-like",
        rows: 16384,
        cols: 64,
        block: 64,
        density_per_mille: 218,
        try_gram: true,
    },
    // Mouse: 45K^2, density 0.014.
    Workload {
        name: "mouse-like",
        rows: 4096,
        cols: 4096,
        block: 256,
        density_per_mille: 14,
        try_gram: true,
    },
    // Hardesty: 8M^2, density 6.4e-7 -> hyper-sparse.
    Workload {
        name: "hardesty-like",
        rows: 16384,
        cols: 16384,
        block: 512,
        density_per_mille: 1,
        try_gram: true,
    },
    // Mawi: 129M^2, density 9.3e-9 -> even sparser, bigger.
    Workload {
        name: "mawi-like",
        rows: 65536,
        cols: 65536,
        block: 2048,
        density_per_mille: 0, // handled specially: ~0.05 per mille
        try_gram: false,
    },
];

fn entry_fn(w: &Workload) -> impl Fn(usize, usize) -> Option<f64> + Send + Sync + Clone + 'static {
    let per_million = if w.density_per_mille == 0 {
        50 // mawi-like: 5e-5
    } else {
        w.density_per_mille * 1000
    };
    move |r: usize, c: usize| {
        let h = hash2(r as u64, c as u64);
        (h % 1_000_000 < per_million).then(|| ((h >> 32) % 1000) as f64 / 500.0 - 1.0)
    }
}

fn hash2(a: u64, b: u64) -> u64 {
    let mut x = a.wrapping_mul(0x9E3779B97F4A7C15) ^ b.wrapping_mul(0xC2B2AE3D27D4EB4F);
    x ^= x >> 29;
    x = x.wrapping_mul(0xBF58476D1CE4E5B9);
    x ^ (x >> 32)
}

fn unit_vec(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i % 7) as f64) / 7.0 + 0.1).collect()
}

/// Machine-readable record of one spangle op for `BENCH_fig10.json`:
/// wall time, the run's shuffle traffic, and the planner rewrite
/// counters from the job's scheduler report.
fn op_json(op: &str, wall: Duration, delta: &MetricsSnapshot, report: Option<&JobReport>) -> Json {
    Json::obj(vec![
        ("op", Json::Str(op.into())),
        ("wall_ms", Json::F64(wall.as_secs_f64() * 1e3)),
        ("shuffle_write_bytes", Json::U64(delta.shuffle_write_bytes)),
        ("shuffle_read_bytes", Json::U64(delta.shuffle_read_bytes)),
        ("stages_fused", Json::U64(delta.stages_fused)),
        ("shuffles_elided", Json::U64(delta.shuffles_elided)),
        (
            "partitions_coalesced",
            Json::U64(delta.partitions_coalesced),
        ),
        (
            "queue_wait_ms",
            Json::F64(report.map_or(0.0, |r| r.queue_wait_nanos as f64 / 1e6)),
        ),
        ("tasks_speculated", Json::U64(delta.tasks_speculated)),
        ("speculation_wins", Json::U64(delta.speculation_wins)),
        ("tasks_cancelled", Json::U64(delta.tasks_cancelled)),
    ])
}

fn main() {
    banner(
        "Figure 10",
        "ML core operations (MxV, VtxM, MtM) across matrix systems",
    );
    let ctx = SpangleContext::new(8);
    let mut json_workloads: Vec<Json> = Vec::new();

    for w in WORKLOADS {
        println!(
            "-- {}: {}x{}, block {}, target density {}",
            w.name,
            w.rows,
            w.cols,
            w.block,
            if w.density_per_mille == 0 {
                "5e-5".to_string()
            } else {
                format!("{:.3}", w.density_per_mille as f64 / 1000.0)
            }
        );
        let f = entry_fn(w);
        let dense_bytes = w.rows * w.cols * 8;
        let dense_fits = dense_bytes <= DENSE_BUDGET_BYTES;

        // Build all systems on identical data.
        let spangle = DistMatrix::generate(
            &ctx,
            w.rows,
            w.cols,
            (w.block, w.block.min(w.cols)),
            ChunkPolicy::default(),
            f.clone(),
        );
        spangle.persist();
        spangle.nnz().expect("spangle ingest");
        let coo = BlockMatrix::<CooBlock>::generate(
            &ctx,
            w.rows,
            w.cols,
            (w.block, w.block.min(w.cols)),
            f.clone(),
        );
        coo.persist();
        coo.nnz().expect("coo ingest");
        let csc = BlockMatrix::<CscBlock>::generate(
            &ctx,
            w.rows,
            w.cols,
            (w.block, w.block.min(w.cols)),
            f.clone(),
        );
        csc.persist();
        csc.nnz().expect("csc ingest");
        let dense = dense_fits.then(|| {
            let m = BlockMatrix::<DenseBlock>::generate(
                &ctx,
                w.rows,
                w.cols,
                (w.block, w.block.min(w.cols)),
                f.clone(),
            );
            m.persist();
            m.nnz().expect("dense ingest");
            m
        });
        let scidb = dense_fits.then(|| {
            LocalArrayEngine::ingest(
                ArrayMeta::new(vec![w.rows, w.cols], vec![w.block, w.block.min(w.cols)]),
                |c| f(c[0], c[1]),
            )
        });

        let x_col = unit_vec(w.cols);
        let x_row = unit_vec(w.rows);
        let mut table = Table::new(&[
            "op",
            "spangle",
            "spark-coo",
            "mllib-csc",
            "scispark-dense",
            "scidb(+io)",
        ]);

        let mut spangle_reports = Vec::new();
        let mut ops_json: Vec<Json> = Vec::new();

        // M x V
        {
            let op_before = ctx.metrics_snapshot();
            let (_, t_sp) = time(|| {
                spangle
                    .matvec(&DenseVector::column(x_col.clone()))
                    .expect("matvec")
            });
            let op_delta = ctx.metrics_snapshot() - op_before;
            spangle_reports.extend(ctx.last_job_report().map(|r| ("MxV", r)));
            ops_json.push(op_json(
                "MxV",
                t_sp,
                &op_delta,
                ctx.last_job_report().as_ref(),
            ));
            let (_, t_coo) = time(|| coo.matvec(&x_col).expect("matvec"));
            let (_, t_csc) = time(|| csc.matvec(&x_col).expect("matvec"));
            let t_dense = dense
                .as_ref()
                .map(|d| time(|| d.matvec(&x_col).expect("matvec")).1);
            let t_scidb = scidb.as_ref().map(|e| {
                e.reset_io();
                let (_, t) = time(|| e.matvec(&x_col));
                t + e.modeled_io_time()
            });
            table.row(vec![
                "MxV".into(),
                ms(t_sp),
                ms(t_coo),
                ms(t_csc),
                t_dense.map_or("x".into(), ms),
                t_scidb.map_or("x".into(), ms),
            ]);
        }

        // Vt x M
        {
            let op_before = ctx.metrics_snapshot();
            let (_, t_sp) = time(|| {
                spangle
                    .vecmat(&DenseVector::row(x_row.clone()))
                    .expect("vecmat")
            });
            let op_delta = ctx.metrics_snapshot() - op_before;
            ops_json.push(op_json(
                "VtxM",
                t_sp,
                &op_delta,
                ctx.last_job_report().as_ref(),
            ));
            let (_, t_coo) = time(|| coo.vecmat(&x_row).expect("vecmat"));
            let (_, t_csc) = time(|| csc.vecmat(&x_row).expect("vecmat"));
            let t_dense = dense
                .as_ref()
                .map(|d| time(|| d.vecmat(&x_row).expect("vecmat")).1);
            table.row(vec![
                "VtxM".into(),
                ms(t_sp),
                ms(t_coo),
                ms(t_csc),
                t_dense.map_or("x".into(), ms),
                "-".into(),
            ]);
        }

        // Mt x M
        if w.try_gram {
            // The BlockMatrix baselines accumulate *dense* partial blocks
            // (like Spark/MLlib BlockMatrix): estimate the shuffled
            // partial volume and report OOM (x) when it cannot fit —
            // reproducing the paper's "most systems fail to compute MtM".
            let block_c = w.block.min(w.cols);
            let grid_inner = w.rows.div_ceil(w.block);
            let out_blocks = w.cols.div_ceil(block_c) * w.cols.div_ceil(block_c);
            let partial_bytes = 16usize // map partitions
                .saturating_mul(out_blocks)
                .saturating_mul(block_c * block_c * 8)
                .min(
                    grid_inner
                        .saturating_mul(out_blocks)
                        .saturating_mul(block_c * block_c * 8),
                );
            let baselines_fit = partial_bytes <= DENSE_BUDGET_BYTES * 8;

            let op_before = ctx.metrics_snapshot();
            let (_, t_sp) = time(|| spangle.gram().nnz().expect("gram"));
            let op_delta = ctx.metrics_snapshot() - op_before;
            spangle_reports.extend(ctx.last_job_report().map(|r| ("MtM", r)));
            ops_json.push(op_json(
                "MtM",
                t_sp,
                &op_delta,
                ctx.last_job_report().as_ref(),
            ));
            let t_coo = baselines_fit.then(|| time(|| coo.gram().nnz().expect("gram")).1);
            let t_csc = baselines_fit.then(|| time(|| csc.gram().nnz().expect("gram")).1);
            let gram_dense_bytes = w.cols * w.cols * 8;
            let t_dense = dense
                .as_ref()
                .filter(|_| baselines_fit && gram_dense_bytes <= DENSE_BUDGET_BYTES)
                .map(|d| time(|| d.gram().nnz().expect("gram")).1);
            table.row(vec![
                "MtM".into(),
                ms(t_sp),
                t_coo.map_or("x".into(), ms),
                t_csc.map_or("x".into(), ms),
                t_dense.map_or("x".into(), ms),
                "-".into(),
            ]);
        } else {
            table.row(vec![
                "MtM".into(),
                "x".into(),
                "x".into(),
                "x".into(),
                "x".into(),
                "x".into(),
            ]);
        }
        table.print();

        for (op, report) in &spangle_reports {
            println!("   spangle {op} scheduler report: {report}");
        }
        let busy_ms: Vec<String> = ctx
            .executor_busy_nanos()
            .iter()
            .map(|n| format!("{:.0}", *n as f64 / 1e6))
            .collect();
        let queue_wait_ms: u64 = spangle_reports
            .iter()
            .map(|(_, r)| r.queue_wait_nanos / 1_000_000)
            .sum();
        let snap = ctx.metrics_snapshot();
        println!(
            "   cluster so far: steals per executor {:?}, busy ms [{}], task queue wait {} ms, \
             {} executors lost, {} fetch failures, {} map partitions recomputed",
            ctx.executor_steals(),
            busy_ms.join(", "),
            queue_wait_ms,
            snap.executors_lost,
            snap.fetch_failures,
            snap.map_partitions_recomputed,
        );
        println!(
            "   admission so far: {} rejected, {} deadlined, queue wait {:.1} ms, \
             queue peak {}, memory peak {} KiB (cache peak {} KiB), {} partitions evicted",
            snap.jobs_rejected,
            snap.jobs_deadlined,
            snap.admission_queue_wait_nanos as f64 / 1e6,
            snap.admission_queue_peak,
            snap.memory_highwater_bytes / 1024,
            snap.cache_highwater_bytes / 1024,
            snap.partitions_evicted,
        );
        println!(
            "   spill so far: {} blocks out, {} back, {} KiB written, disk peak {} KiB",
            snap.blocks_spilled,
            snap.blocks_rehydrated,
            snap.spill_bytes / 1024,
            snap.disk_resident_bytes / 1024,
        );
        println!(
            "   planner so far: {} narrow chains fused, {} shuffles elided, {} partitions coalesced",
            snap.stages_fused, snap.shuffles_elided, snap.partitions_coalesced,
        );
        println!(
            "   speculation so far: {} launched, {} won, {} tasks cancelled",
            snap.tasks_speculated, snap.speculation_wins, snap.tasks_cancelled,
        );
        println!(
            "   health so far: {} heartbeats missed, {} watchdog trips, \
             {} executors quarantined, {:.1} ms retry backoff",
            snap.heartbeats_missed,
            snap.watchdog_trips,
            snap.executors_quarantined,
            snap.backoff_nanos as f64 / 1e6,
        );
        json_workloads.push(Json::obj(vec![
            ("name", Json::Str(w.name.into())),
            ("rows", Json::U64(w.rows as u64)),
            ("cols", Json::U64(w.cols as u64)),
            ("ops", Json::Arr(ops_json)),
        ]));
        println!(
            "   nnz={}  memory: spangle={} KiB, coo={} KiB, csc={} KiB, dense={}",
            spangle.nnz().unwrap(),
            spangle.mem_bytes().unwrap() / 1024,
            coo.mem_bytes().unwrap() / 1024,
            csc.mem_bytes().unwrap() / 1024,
            dense
                .as_ref()
                .map_or("x (exceeds budget)".to_string(), |d| format!(
                    "{} KiB",
                    d.mem_bytes().unwrap() / 1024
                )),
        );
        println!();
    }

    // Figure-level memory trajectory: the run's peak resident bytes
    // (post-spill) and the spill tier's activity, gated alongside wall
    // clock by `bench_compare`.
    let final_snap = ctx.metrics_snapshot();
    write_bench_json(
        "fig10",
        &Json::obj(vec![
            ("figure", Json::Str("fig10".into())),
            (
                "description",
                Json::Str("ML core operations (MxV, VtxM, MtM) on the spangle engine".into()),
            ),
            (
                "memory_peak_bytes",
                Json::U64(final_snap.memory_highwater_bytes),
            ),
            ("blocks_spilled", Json::U64(final_snap.blocks_spilled)),
            ("blocks_rehydrated", Json::U64(final_snap.blocks_rehydrated)),
            ("spill_bytes", Json::U64(final_snap.spill_bytes)),
            ("heartbeats_missed", Json::U64(final_snap.heartbeats_missed)),
            ("watchdog_trips", Json::U64(final_snap.watchdog_trips)),
            (
                "executors_quarantined",
                Json::U64(final_snap.executors_quarantined),
            ),
            ("backoff_nanos", Json::U64(final_snap.backoff_nanos)),
            ("workloads", Json::Arr(json_workloads)),
        ]),
    );
}
