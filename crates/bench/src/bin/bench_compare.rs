//! Perf-trajectory gate: compares a freshly regenerated `BENCH_*.json`
//! against the committed baseline and fails (exit 1) when the summed
//! wall-clock regresses beyond the allowed percentage.
//!
//! ```text
//! bench_compare <baseline.json> <fresh.json>
//! ```
//!
//! Only end-to-end timing keys (`wall_ms`, `total_ms`) count toward the
//! wall-clock comparison — per-iteration and build times are diagnostics,
//! and the counters (bytes, planner rewrites, speculation) are asserted
//! by the test suites, not by this gate. The threshold defaults to 25%
//! and can be widened/tightened with `BENCH_REGRESSION_PCT` for noisy
//! runners.
//!
//! The gate also tracks the memory trajectory: `memory_peak_bytes` keys
//! (the run's post-spill resident peak) are summed and compared under
//! `BENCH_MEMORY_REGRESSION_PCT` (default 25%). A baseline that predates
//! the memory export skips this half of the gate rather than failing it.
//! Hand-rolled parsing because the workspace carries no external
//! dependencies.

use std::process::ExitCode;

/// The keys whose values are summed into each file's wall-clock score.
const TIMING_KEYS: &[&str] = &["wall_ms", "total_ms"];

/// The keys whose values are summed into each file's memory-peak score.
const MEMORY_KEYS: &[&str] = &["memory_peak_bytes"];

/// A minimal JSON value — just enough structure to walk the bench
/// artifacts. Numbers are kept as f64; `null` (an aborted timing) parses
/// as 0 so a baseline with a hole never divides the gate by nothing.
#[derive(Debug, PartialEq)]
enum Value {
    Num(f64),
    Str(String),
    Bool(bool),
    Null,
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek().ok_or_else(|| self.error("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{text}'")))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| self.error("invalid number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| self.error("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // The artifacts never emit surrogate pairs.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through untouched.
                    let start = self.pos;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|b| !matches!(b, b'"' | b'\\'))
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.error("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    if p.peek().is_some() {
        return Err(p.error("trailing garbage"));
    }
    Ok(v)
}

/// Sums every numeric value stored under one of `keys`, at any nesting
/// depth.
fn sum_keys(value: &Value, keys: &[&str]) -> f64 {
    match value {
        Value::Arr(items) => items.iter().map(|v| sum_keys(v, keys)).sum(),
        Value::Obj(entries) => entries
            .iter()
            .map(|(key, v)| match v {
                Value::Num(n) if keys.contains(&key.as_str()) => *n,
                nested => sum_keys(nested, keys),
            })
            .sum(),
        _ => 0.0,
    }
}

/// The executor backend that produced an artifact: its top-level
/// `"backend"` key, or `"inproc"` for baselines that predate the stamp.
fn backend_of(value: &Value) -> String {
    if let Value::Obj(entries) = value {
        for (key, v) in entries {
            if key == "backend" {
                if let Value::Str(s) = v {
                    return s.clone();
                }
            }
        }
    }
    "inproc".to_string()
}

/// One artifact's gated scores: summed wall-clock, summed memory peak
/// (0 when the file predates the memory export), and the backend that
/// produced it.
fn load(path: &str) -> Result<(f64, f64, String), String> {
    let text = std::fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))?;
    let value = parse(&text).map_err(|err| format!("{path}: {err}"))?;
    let total = sum_keys(&value, TIMING_KEYS);
    if total <= 0.0 {
        return Err(format!(
            "{path}: no {TIMING_KEYS:?} keys found — wrong file?"
        ));
    }
    Ok((total, sum_keys(&value, MEMORY_KEYS), backend_of(&value)))
}

fn pct_from_env(var: &str, default: f64) -> Result<f64, String> {
    match std::env::var(var) {
        Ok(raw) => raw
            .parse()
            .map_err(|_| format!("{var}={raw} is not a number")),
        Err(_) => Ok(default),
    }
}

/// The figure tag of an artifact path: `out/BENCH_fig10.json` → `fig10`.
/// Falls back to the file stem so hand-named files still get a label.
fn figure_label(path: &str) -> &str {
    let stem = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or(path);
    stem.strip_prefix("BENCH_").unwrap_or(stem)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, fresh_path] = &args[..] else {
        eprintln!("usage: bench_compare <baseline.json> <fresh.json>");
        return ExitCode::from(2);
    };
    let (pct, mem_pct) = match (
        pct_from_env("BENCH_REGRESSION_PCT", 25.0),
        pct_from_env("BENCH_MEMORY_REGRESSION_PCT", 25.0),
    ) {
        (Ok(p), Ok(m)) => (p, m),
        (p, m) => {
            for err in [p.err(), m.err()].into_iter().flatten() {
                eprintln!("{err}");
            }
            return ExitCode::from(2);
        }
    };
    let ((baseline, baseline_mem, baseline_backend), (fresh, fresh_mem, fresh_backend)) =
        match (load(baseline_path), load(fresh_path)) {
            (Ok(b), Ok(f)) => (b, f),
            (b, f) => {
                for err in [b.err(), f.err()].into_iter().flatten() {
                    eprintln!("{err}");
                }
                return ExitCode::from(2);
            }
        };
    // Timings from different executor backends are not comparable: a
    // multi-process run pays process spawns and wire hops an in-process
    // baseline never sees, so a cross-backend diff would gate on noise.
    if baseline_backend != fresh_backend {
        eprintln!(
            "backend mismatch: baseline {baseline_path} was produced under \
             '{baseline_backend}' but fresh {fresh_path} under '{fresh_backend}' — \
             regenerate the baseline under the same SPANGLE_BACKEND"
        );
        return ExitCode::from(2);
    }
    let figure = figure_label(fresh_path);
    let limit = baseline * (1.0 + pct / 100.0);
    let change = (fresh / baseline - 1.0) * 100.0;
    let memory = if baseline_mem > 0.0 {
        let mem_change = (fresh_mem / baseline_mem - 1.0) * 100.0;
        format!(
            "memory {:.0} KiB vs {:.0} KiB ({mem_change:+.1}%, limit +{mem_pct:.0}%)",
            fresh_mem / 1024.0,
            baseline_mem / 1024.0,
        )
    } else {
        "memory gate skipped (baseline has no memory_peak_bytes)".to_string()
    };
    // Green runs get exactly one line per figure so CI logs still show
    // the perf trajectory; the detail lines below are failure-only.
    println!(
        "bench_compare {figure}: wall {fresh:.1} ms vs {baseline:.1} ms \
         ({change:+.1}%, limit +{pct:.0}%), {memory}"
    );
    let mut failed = false;
    if fresh > limit {
        eprintln!(
            "perf regression in {figure}: fresh wall-clock {fresh:.1} ms exceeds \
             {limit:.1} ms (+{pct:.0}% over baseline {baseline:.1} ms)"
        );
        failed = true;
    }
    if baseline_mem > 0.0 {
        let mem_limit = baseline_mem * (1.0 + mem_pct / 100.0);
        if fresh_mem > mem_limit {
            eprintln!(
                "memory regression in {figure}: fresh resident peak {:.0} KiB exceeds \
                 {:.0} KiB (+{mem_pct:.0}% over baseline {:.0} KiB)",
                fresh_mem / 1024.0,
                mem_limit / 1024.0,
                baseline_mem / 1024.0,
            );
            failed = true;
        }
    }
    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_sums_nested_timing_keys() {
        let v = parse(
            r#"{"figure":"f","memory_peak_bytes":4096,"workloads":[
                {"ops":[{"op":"MxV","wall_ms":10.5},{"op":"MtM","wall_ms":2.0}]},
                {"total_ms":7.5,"build_ms":99.0,"note":"build time is not gated"}
            ]}"#,
        )
        .unwrap();
        assert!((sum_keys(&v, TIMING_KEYS) - 20.0).abs() < 1e-9);
        assert!((sum_keys(&v, MEMORY_KEYS) - 4096.0).abs() < 1e-9);
    }

    #[test]
    fn pre_memory_baselines_sum_to_zero() {
        // A baseline generated before the memory export simply has no
        // such keys; the gate must read that as "skip", not fail.
        let v = parse(r#"{"workloads":[{"wall_ms":5.0}]}"#).unwrap();
        assert_eq!(sum_keys(&v, MEMORY_KEYS), 0.0);
    }

    #[test]
    fn null_timings_and_escapes_parse() {
        let v = parse(r#"{"total_ms":null,"s":"a\"bA\n","xs":[1,-2.5e1,true]}"#).unwrap();
        assert_eq!(sum_keys(&v, TIMING_KEYS), 0.0);
        match v {
            Value::Obj(entries) => {
                assert_eq!(entries[1].1, Value::Str("a\"bA\n".into()));
            }
            _ => panic!("expected object"),
        }
    }

    #[test]
    fn backend_defaults_to_inproc_for_unstamped_baselines() {
        let stamped = parse(r#"{"backend":"proc","wall_ms":1.0}"#).unwrap();
        assert_eq!(backend_of(&stamped), "proc");
        let legacy = parse(r#"{"wall_ms":1.0}"#).unwrap();
        assert_eq!(backend_of(&legacy), "inproc");
    }

    #[test]
    fn figure_labels_strip_the_artifact_prefix() {
        assert_eq!(figure_label("BENCH_fig10.json"), "fig10");
        assert_eq!(figure_label("/tmp/x/BENCH_fig11.json"), "fig11");
        assert_eq!(figure_label("custom.json"), "custom");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} junk").is_err());
        assert!(parse(r#"{"a":}"#).is_err());
        assert!(parse("[1,").is_err());
    }
}
