//! Figure 7: raster-data benchmark queries across systems.
//!
//! Part (a): queries without a range restriction over a "100-image"-class
//! SDSS-like dataset (scaled). Part (b): queries with a range restriction
//! over a larger "1,000-image"-class dataset. Chunk size 128×128×1 as in
//! §VII-B. Systems: Spangle, SciSpark-like dense, RasterFrames-like
//! tiles, and the SciDB stand-in (whose modelled disk-IO time is reported
//! as a separate column — see DESIGN.md §1).

use spangle_baselines::LocalArrayEngine;
use spangle_bench::{banner, ms, time, Table};
use spangle_core::ArrayMeta;
use spangle_dataflow::SpangleContext;
use spangle_raster::{
    DenseRaster, QueryRange, RasterSystem, SdssConfig, SpangleRaster, TileRaster,
};
use std::time::Duration;

/// SciDB stand-in adapter: answers the Table I queries on the
/// single-process engine and tracks modelled IO.
struct ScidbStandin {
    engine: LocalArrayEngine,
}

impl ScidbStandin {
    fn ingest(meta: ArrayMeta, f: impl Fn(&[usize]) -> Option<f64>) -> Self {
        ScidbStandin {
            engine: LocalArrayEngine::ingest(meta, f),
        }
    }

    fn io_time(&self) -> Duration {
        self.engine.modeled_io_time()
    }

    fn reset_io(&self) {
        self.engine.reset_io()
    }
}

impl RasterSystem for ScidbStandin {
    fn name(&self) -> &'static str {
        "scidb-standin"
    }
    fn q1_avg(&self, r: &QueryRange) -> Option<f64> {
        self.engine.range_avg(&r.lo, &r.hi, |_| true)
    }
    fn q2_regrid(&self, r: &QueryRange, k: usize) -> (usize, f64) {
        let blocks = self.engine.range_regrid(&r.lo, &r.hi, k);
        let sum = blocks.iter().map(|(_, m)| m).sum();
        (blocks.len(), sum)
    }
    fn q3_cond_avg(&self, r: &QueryRange, threshold: f64) -> Option<f64> {
        self.engine.range_avg(&r.lo, &r.hi, |v| v > threshold)
    }
    fn q4_filter_count(&self, r: &QueryRange, vlo: f64, vhi: f64) -> usize {
        self.engine
            .range_count(&r.lo, &r.hi, |v| v >= vlo && v < vhi)
    }
    fn q5_density(&self, r: &QueryRange, cell: usize, min_count: usize) -> usize {
        self.engine
            .range_density(&r.lo, &r.hi, cell, min_count)
            .len()
    }
    fn mem_bytes(&self) -> usize {
        self.engine.mem_bytes()
    }
}

fn run_part(
    ctx: &SpangleContext,
    label: &str,
    cfg: SdssConfig,
    range: QueryRange,
    queries: &[&str],
) {
    println!(
        "-- part {label}: {}x{}x{} frames, chunk 128x128x1",
        cfg.width, cfg.height, cfg.images
    );
    let meta = ArrayMeta::new(cfg.dims(), vec![128, 128, 1]);
    let band = 2; // the r band

    let spangle = SpangleRaster::ingest(ctx, meta.clone(), cfg.band_fn(band));
    let dense = DenseRaster::ingest(ctx, meta.clone(), cfg.band_fn(band));
    let tiles = TileRaster::ingest(ctx, meta.clone(), 128, cfg.band_fn(band));
    let scidb = ScidbStandin::ingest(meta, cfg.band_fn(band));

    let systems: Vec<&dyn RasterSystem> = vec![&spangle, &dense, &tiles, &scidb];
    let mut table = Table::new(&[
        "query",
        "spangle(ms)",
        "scispark(ms)",
        "rasterframes(ms)",
        "scidb cpu(ms)",
        "scidb +io(ms)",
        "result",
    ]);

    for &q in queries {
        let mut cells: Vec<String> = vec![q.to_string()];
        let mut shown_result = String::new();
        for sys in &systems {
            if sys.name() == "scidb-standin" {
                scidb.reset_io();
            }
            let (result, elapsed) = match q {
                "Q1" => {
                    let (r, d) = time(|| sys.q1_avg(&range));
                    (format!("avg={:.3}", r.unwrap_or(f64::NAN)), d)
                }
                "Q2" => {
                    let ((n, s), d) = time(|| sys.q2_regrid(&range, 4));
                    (format!("blocks={n} sum={s:.1}"), d)
                }
                "Q3" => {
                    let (r, d) = time(|| sys.q3_cond_avg(&range, 500.0));
                    (format!("avg={:.3}", r.unwrap_or(f64::NAN)), d)
                }
                "Q4" => {
                    let (r, d) = time(|| sys.q4_filter_count(&range, 100.0, 1000.0));
                    (format!("count={r}"), d)
                }
                "Q5" => {
                    let (r, d) = time(|| sys.q5_density(&range, 32, 40));
                    (format!("groups={r}"), d)
                }
                other => panic!("unknown query {other}"),
            };
            cells.push(ms(elapsed));
            if sys.name() == "scidb-standin" {
                cells.push(ms(elapsed + scidb.io_time()));
            }
            shown_result = result;
        }
        cells.push(shown_result);
        table.row(cells);
    }
    table.print();
    println!(
        "   memory: spangle={} MiB, scispark={} MiB, rasterframes={} MiB",
        spangle.mem_bytes() / (1 << 20),
        dense.mem_bytes() / (1 << 20),
        tiles.mem_bytes() / (1 << 20),
    );
    println!();
}

fn main() {
    banner(
        "Figure 7",
        "raster benchmark queries (Table I) across systems",
    );
    let ctx = SpangleContext::new(8);

    // Part (a): no range restriction (the full array), Q1/Q3/Q4 — the
    // paper omits range-dependent Q2/Q5 here because RasterFrames' range
    // results were untrusted.
    let cfg_a = SdssConfig {
        width: 512,
        height: 384,
        images: 16,
        ..SdssConfig::default()
    };
    let full = QueryRange {
        lo: vec![0, 0, 0],
        hi: cfg_a.dims(),
    };
    run_part(
        &ctx,
        "(a) no-range queries",
        cfg_a,
        full,
        &["Q1", "Q3", "Q4"],
    );

    // Part (b): range queries over the larger dataset.
    let cfg_b = SdssConfig {
        width: 512,
        height: 384,
        images: 48,
        ..SdssConfig::default()
    };
    let range = QueryRange {
        lo: vec![64, 64, 8],
        hi: vec![448, 320, 40],
    };
    run_part(
        &ctx,
        "(b) range queries",
        cfg_b,
        range,
        &["Q1", "Q2", "Q3", "Q4", "Q5"],
    );
}
