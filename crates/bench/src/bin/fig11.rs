//! Figure 11: PageRank across Spangle, the Spark edge-list baseline and
//! the GraphX-like baseline, on four power-law graphs scaled after
//! Table IIb.
//!
//! As in §VII-C, Spangle runs the sparse (flat bitmask) mode on three
//! graphs and the super-sparse (hierarchical) mode on the
//! LiveJournal-like one. Reported: end-to-end time, average per-iteration
//! time, and the iteration-time trend (first vs last iteration), which is
//! where GraphX's growing triplet state shows up.

use spangle_baselines::{pagerank_edge_list, pagerank_pregel_like};
use spangle_bench::{banner, ms, secs, time, write_bench_json, Json, Table};
use spangle_dataflow::SpangleContext;
use spangle_ml::{pagerank, Graph};
use std::time::Duration;

struct GraphSpec {
    name: &'static str,
    vertices: usize,
    edges: usize,
    block: usize,
    super_sparse: bool,
    seed: u64,
}

const GRAPHS: &[GraphSpec] = &[
    GraphSpec {
        name: "enron-like",
        vertices: 8_192,
        edges: 80_000,
        block: 128,
        super_sparse: false,
        seed: 101,
    },
    GraphSpec {
        name: "epinions-like",
        vertices: 16_384,
        edges: 110_000,
        block: 128,
        super_sparse: false,
        seed: 102,
    },
    GraphSpec {
        name: "livejournal-like",
        vertices: 32_768,
        edges: 450_000,
        block: 256,
        super_sparse: true,
        seed: 103,
    },
    GraphSpec {
        name: "twitter-like",
        vertices: 65_536,
        edges: 1_500_000,
        block: 256,
        super_sparse: false,
        seed: 104,
    },
];

const ITERATIONS: usize = 10;
const ALPHA: f64 = 0.85;

fn stats(times: &[Duration]) -> (Duration, Duration, Duration) {
    let total: Duration = times.iter().sum();
    let avg = total / times.len() as u32;
    (total, avg, *times.last().expect("non-empty"))
}

fn main() {
    banner(
        "Figure 11",
        "PageRank end-to-end and per-iteration times across systems",
    );
    let ctx = SpangleContext::new(8);
    let mut json_graphs: Vec<Json> = Vec::new();
    let mut table = Table::new(&[
        "graph",
        "system",
        "build(s)",
        "total(s)",
        "avg iter(ms)",
        "last iter(ms)",
        "rank sum",
    ]);

    for spec in GRAPHS {
        let g = Graph::power_law(&ctx, spec.vertices, spec.edges, spec.seed, 8);
        g.edges().persist();
        g.num_edges().expect("graph generation");

        // Spangle: bitmask adjacency decomposition. Snapshot the job-id
        // watermark so the per-job scheduler reports below cover exactly
        // this run.
        let first_job = ctx.last_job_report().map_or(0, |r| r.job_id + 1);
        let run_before = ctx.metrics_snapshot();
        let (res, total) = time(|| {
            pagerank(&g, spec.block, spec.super_sparse, ALPHA, ITERATIONS)
                .expect("spangle pagerank")
        });
        let run_delta = ctx.metrics_snapshot() - run_before;
        let reports: Vec<_> = ctx
            .job_reports()
            .into_iter()
            .filter(|r| r.job_id >= first_job)
            .collect();
        let (_, avg, last) = stats(&res.iteration_times);
        table.row(vec![
            spec.name.into(),
            format!(
                "spangle({})",
                if spec.super_sparse {
                    "super-sparse"
                } else {
                    "sparse"
                }
            ),
            secs(res.build_time),
            secs(total),
            ms(avg),
            ms(last),
            format!("{:.4}", res.ranks.as_slice().iter().sum::<f64>()),
        ]);
        let stages_run: usize = reports.iter().map(|r| r.stages_run()).sum();
        let stages_skipped: usize = reports.iter().map(|r| r.stages_skipped()).sum();
        let peak = reports
            .iter()
            .map(|r| r.max_concurrent_stages)
            .max()
            .unwrap_or(0);
        let stolen: usize = reports.iter().map(|r| r.tasks_stolen()).sum();
        let worst_skew = reports
            .iter()
            .filter_map(|r| r.busy_skew())
            .fold(0.0f64, f64::max);
        let queue_wait_ms: u64 = reports.iter().map(|r| r.queue_wait_nanos / 1_000_000).sum();
        let fetch_failures: usize = reports.iter().map(|r| r.fetch_failures()).sum();
        let maps_recomputed: usize = reports.iter().map(|r| r.map_partitions_recomputed()).sum();
        let fused: usize = reports.iter().map(|r| r.stages_fused()).sum();
        let elided: usize = reports.iter().map(|r| r.shuffles_elided()).sum();
        let coalesced: usize = reports.iter().map(|r| r.partitions_coalesced()).sum();
        let speculated: usize = reports.iter().map(|r| r.tasks_speculated()).sum();
        let spec_wins: usize = reports.iter().map(|r| r.speculation_wins()).sum();
        let cancelled: usize = reports.iter().map(|r| r.tasks_cancelled()).sum();
        let watchdogs: usize = reports.iter().map(|r| r.watchdog_trips()).sum();
        let backoff_nanos: u64 = reports.iter().map(|r| r.backoff_nanos()).sum();
        println!(
            "-- {}: spangle scheduler ran {} jobs ({} stages run, {} skipped, peak {} concurrent stages, {} tasks stolen, worst busy skew {:.2}, total queue wait {} ms, {} fetch failures, {} map partitions recomputed)",
            spec.name,
            reports.len(),
            stages_run,
            stages_skipped,
            peak,
            stolen,
            worst_skew,
            queue_wait_ms,
            fetch_failures,
            maps_recomputed,
        );
        println!(
            "   planner: {fused} narrow chains fused, {elided} shuffles elided, \
             {coalesced} partitions coalesced"
        );
        println!(
            "   speculation: {speculated} launched, {spec_wins} won, \
             {cancelled} tasks cancelled"
        );
        println!(
            "   health: {watchdogs} watchdog trips, {:.1} ms retry backoff",
            backoff_nanos as f64 / 1e6,
        );
        if let Some(longest) = reports.iter().max_by_key(|r| r.wall_nanos) {
            println!("   slowest job: {longest}");
        }
        json_graphs.push(Json::obj(vec![
            ("name", Json::Str(spec.name.into())),
            ("vertices", Json::U64(spec.vertices as u64)),
            ("edges", Json::U64(spec.edges as u64)),
            ("build_ms", Json::F64(res.build_time.as_secs_f64() * 1e3)),
            ("total_ms", Json::F64(total.as_secs_f64() * 1e3)),
            ("avg_iter_ms", Json::F64(avg.as_secs_f64() * 1e3)),
            ("last_iter_ms", Json::F64(last.as_secs_f64() * 1e3)),
            ("jobs", Json::U64(reports.len() as u64)),
            ("stages_run", Json::U64(stages_run as u64)),
            ("stages_skipped", Json::U64(stages_skipped as u64)),
            (
                "shuffle_write_bytes",
                Json::U64(run_delta.shuffle_write_bytes),
            ),
            (
                "shuffle_read_bytes",
                Json::U64(run_delta.shuffle_read_bytes),
            ),
            ("stages_fused", Json::U64(fused as u64)),
            ("shuffles_elided", Json::U64(elided as u64)),
            ("partitions_coalesced", Json::U64(coalesced as u64)),
            ("tasks_speculated", Json::U64(speculated as u64)),
            ("speculation_wins", Json::U64(spec_wins as u64)),
            ("tasks_cancelled", Json::U64(cancelled as u64)),
            ("watchdog_trips", Json::U64(watchdogs as u64)),
            ("backoff_nanos", Json::U64(backoff_nanos)),
            ("blocks_spilled", Json::U64(run_delta.blocks_spilled)),
            ("blocks_rehydrated", Json::U64(run_delta.blocks_rehydrated)),
            ("spill_bytes", Json::U64(run_delta.spill_bytes)),
        ]));
        let snap = ctx.metrics_snapshot();
        let admission_wait_ms: u64 = reports
            .iter()
            .map(|r| r.admission_wait_nanos / 1_000_000)
            .sum();
        println!(
            "   admission: {} rejected, {} deadlined so far, run queue wait {} ms, \
             queue peak {}, memory peak {} KiB (cache peak {} KiB)",
            snap.jobs_rejected,
            snap.jobs_deadlined,
            admission_wait_ms,
            snap.admission_queue_peak,
            snap.memory_highwater_bytes / 1024,
            snap.cache_highwater_bytes / 1024,
        );
        println!(
            "   spill: {} blocks out, {} back this run ({} KiB written so far, disk peak {} KiB)",
            run_delta.blocks_spilled,
            run_delta.blocks_rehydrated,
            snap.spill_bytes / 1024,
            snap.disk_resident_bytes / 1024,
        );

        // Spark edge-list.
        let (res, total) =
            time(|| pagerank_edge_list(&g, ALPHA, ITERATIONS, 8).expect("edge-list pagerank"));
        let (_, avg, last) = stats(&res.iteration_times);
        table.row(vec![
            spec.name.into(),
            "spark-edgelist".into(),
            secs(res.build_time),
            secs(total),
            ms(avg),
            ms(last),
            format!("{:.4}", res.ranks.iter().sum::<f64>()),
        ]);

        // GraphX-like.
        let (res, total) =
            time(|| pagerank_pregel_like(&g, ALPHA, ITERATIONS, 8).expect("pregel pagerank"));
        let (_, avg, last) = stats(&res.iteration_times);
        table.row(vec![
            spec.name.into(),
            "graphx-like".into(),
            secs(res.build_time),
            secs(total),
            ms(avg),
            ms(last),
            format!("{:.4}", res.ranks.iter().sum::<f64>()),
        ]);
    }
    table.print();

    // Figure-level memory trajectory for the bench_compare memory gate.
    let final_snap = ctx.metrics_snapshot();
    write_bench_json(
        "fig11",
        &Json::obj(vec![
            ("figure", Json::Str("fig11".into())),
            (
                "description",
                Json::Str(
                    "PageRank end-to-end and per-iteration times on the spangle engine".into(),
                ),
            ),
            (
                "memory_peak_bytes",
                Json::U64(final_snap.memory_highwater_bytes),
            ),
            ("blocks_spilled", Json::U64(final_snap.blocks_spilled)),
            ("blocks_rehydrated", Json::U64(final_snap.blocks_rehydrated)),
            ("spill_bytes", Json::U64(final_snap.spill_bytes)),
            ("heartbeats_missed", Json::U64(final_snap.heartbeats_missed)),
            ("watchdog_trips", Json::U64(final_snap.watchdog_trips)),
            (
                "executors_quarantined",
                Json::U64(final_snap.executors_quarantined),
            ),
            ("backoff_nanos", Json::U64(final_snap.backoff_nanos)),
            ("graphs", Json::Arr(json_graphs)),
        ]),
    );
}
