//! Figure 9b: the MaskRDD effect — Q5-style pipeline time vs number of
//! attributes, with and without the lazy MaskRDD.
//!
//! Five SDSS-like bands (u g r i z) form a multi-attribute array. The
//! pipeline chains a Subarray, a Filter on the first band, and a second
//! Subarray, then materialises every attribute. In lazy (MaskRDD) mode
//! each operator touches only the hidden mask; in eager mode each
//! operator rewrites every attribute.

use spangle_bench::{banner, ms, time, Table};
use spangle_core::maskrdd::SpangleArray;
use spangle_core::{ArrayBuilder, ArrayMeta};
use spangle_dataflow::SpangleContext;
use spangle_raster::SdssConfig;

fn build_bands(ctx: &SpangleContext, cfg: &SdssConfig, k: usize, lazy: bool) -> SpangleArray<f64> {
    const BAND_NAMES: [&str; 5] = ["u", "g", "r", "i", "z"];
    let meta = ArrayMeta::new(cfg.dims(), vec![128, 128, 1]);
    let attributes: Vec<(String, _)> = (0..k)
        .map(|b| {
            let arr = ArrayBuilder::new(ctx, meta.clone())
                .ingest(cfg.band_fn(b))
                .build();
            arr.persist();
            arr.count_valid().expect("ingest failed");
            (BAND_NAMES[b].to_string(), arr)
        })
        .collect();
    SpangleArray::new(attributes, lazy)
}

fn run_pipeline(arr: &SpangleArray<f64>, cfg: &SdssConfig) -> usize {
    let dims = cfg.dims();
    let chained = arr
        .subarray(&[32, 32, 0], &[dims[0] - 32, dims[1] - 32, dims[2]])
        .filter_attribute(arr.attribute_names()[0], |v| v > 50.0)
        .subarray(&[64, 64, 0], &[dims[0] - 64, dims[1] - 64, dims[2]]);
    // Materialise every attribute, as Q5 would to compute densities over
    // all bands.
    arr.attribute_names()
        .iter()
        .map(|name| chained.count_valid(name).expect("pipeline failed"))
        .sum()
}

fn main() {
    banner(
        "Figure 9b",
        "multi-attribute pipeline time vs #attributes, with/without MaskRDD",
    );
    let cfg = SdssConfig {
        width: 512,
        height: 384,
        images: 8,
        ..SdssConfig::default()
    };
    let ctx = SpangleContext::new(8);
    let mut table = Table::new(&[
        "#attributes",
        "with MaskRDD(ms)",
        "without MaskRDD(ms)",
        "checksum",
    ]);
    for k in 1..=5usize {
        let lazy = build_bands(&ctx, &cfg, k, true);
        let eager = build_bands(&ctx, &cfg, k, false);
        let (lazy_sum, t_lazy) = time(|| run_pipeline(&lazy, &cfg));
        let (eager_sum, t_eager) = time(|| run_pipeline(&eager, &cfg));
        assert_eq!(lazy_sum, eager_sum, "lazy and eager must agree");
        table.row(vec![
            k.to_string(),
            ms(t_lazy),
            ms(t_eager),
            lazy_sum.to_string(),
        ]);
    }
    table.print();
}
