//! Figure 12: the SGD experiments on the URL-like dataset.
//!
//! Part (a): training time vs number of partitions — too few partitions
//! starve parallelism, too many inflate the per-step gradient reduction.
//! Part (b): the optimisation ablation — none / opt₁ / opt₁+opt₂ — which
//! the paper reports as ≈20% from opt₁ and ≈30% more from opt₂ (≈43%
//! total).

use spangle_bench::{banner, secs, Table};
use spangle_dataflow::SpangleContext;
use spangle_ml::datasets;
use spangle_ml::{LogisticRegression, OptLevel, SgdConfig};

const FIXED_ITERS: usize = 60;

fn main() {
    banner(
        "Figure 12",
        "SGD: partition sweep and optimisation ablation",
    );
    let ctx = SpangleContext::new(8);

    // ---- part (a): partitions vs time --------------------------------
    // Dataset and total mini-batch are held constant: 128 chunks in total,
    // 32 chunks sampled per step, however they are spread over partitions.
    // (On this simulated single-node cluster the left side of the paper's
    // U-curve — the low-parallelism penalty — cannot appear physically;
    // the right side — reduction overhead growing with partitions — does.)
    println!("-- part (a): partitions vs training time (url-like, {FIXED_ITERS} fixed iterations)");
    let mut table = Table::new(&["partitions", "time(s)", "accuracy(%)"]);
    const TOTAL_CHUNKS: usize = 128;
    const TOTAL_BATCH: usize = 32;
    for parts in [1usize, 2, 4, 8, 16, 32] {
        let spec = &datasets::URL_LIKE;
        let data = spangle_ml::datasets::synthetic_logreg(
            &ctx,
            parts,
            TOTAL_CHUNKS / parts,
            spec.rows_per_chunk,
            spec.num_features,
            spec.nnz_per_row,
            spec.seed,
        );
        data.persist();
        data.rdd().count().expect("ingest failed");
        let model = LogisticRegression::train(
            &data,
            SgdConfig {
                max_iters: FIXED_ITERS,
                tolerance: 0.0, // fixed iteration count for a fair sweep
                batch_chunks: (TOTAL_BATCH / parts).max(1),
                ..SgdConfig::default()
            },
        )
        .expect("training failed");
        let acc = data.accuracy(&model.weights).expect("accuracy failed");
        table.row(vec![
            parts.to_string(),
            secs(model.training_time),
            format!("{:.2}", acc * 100.0),
        ]);
    }
    table.print();
    println!();

    // ---- part (b): optimisation ablation ------------------------------
    println!("-- part (b): optimisation ablation (url-like, 8 partitions, {FIXED_ITERS} fixed iterations)");
    let data = datasets::from_spec(&ctx, &datasets::URL_LIKE, 8);
    data.persist();
    data.rdd().count().expect("ingest failed");
    let mut table = Table::new(&["variant", "time(s)", "vs none", "accuracy(%)"]);
    let mut t_none = None;
    for (label, opt) in [
        ("none", OptLevel::None),
        ("opt1", OptLevel::Opt1),
        ("opt1+opt2", OptLevel::Opt1Opt2),
    ] {
        let model = LogisticRegression::train(
            &data,
            SgdConfig {
                max_iters: FIXED_ITERS,
                tolerance: 0.0,
                batch_chunks: 2,
                opt,
                ..SgdConfig::default()
            },
        )
        .expect("training failed");
        let acc = data.accuracy(&model.weights).expect("accuracy failed");
        let t = model.training_time;
        let rel = match t_none {
            None => {
                t_none = Some(t);
                "1.00x".to_string()
            }
            Some(base) => format!("{:.2}x", t.as_secs_f64() / base.as_secs_f64()),
        };
        table.row(vec![
            label.into(),
            secs(t),
            rel,
            format!("{:.2}", acc * 100.0),
        ]);
    }
    table.print();
}
