//! Figure 8: processing time vs chunk size for the three access
//! strategies (naive / dense / opt) on CHL-like data.
//!
//! The paper fixes the time dimension and sweeps square spatial chunks
//! `w × w × 1`, w from 16 to 1000, timing Filter and Aggregator — both
//! operators that visit every valid cell. The three series differ in how
//! a sparse chunk resolves a cell's payload slot:
//!
//! * `naive`  — re-rank the bitmask from word 0 on every access;
//! * `dense`  — no compression, direct indexing;
//! * `opt`    — milestone directory + block popcount.
//!
//! (A fourth series, `delta`, shows the sequential cursor the real
//! operators use.)

use spangle_bench::{banner, ms, time, Table};
use spangle_core::{ArrayBuilder, ArrayMeta, ArrayRdd, ChunkPolicy};
use spangle_dataflow::SpangleContext;
use spangle_raster::ChlConfig;

/// Scans every cell position of every chunk through the given access
/// discipline and folds matching values — the Filter+Aggregate kernel of
/// the figure.
fn scan_all(arr: &ArrayRdd<f64>, mode: &str, threshold: f64) -> (usize, f64) {
    let mode = mode.to_string();
    let results = arr
        .rdd()
        .run_partitions(move |_, chunks| {
            let mut count = 0usize;
            let mut sum = 0.0f64;
            for (_, chunk) in chunks {
                match mode.as_str() {
                    // Positional access per cell, ranking from scratch.
                    "naive" => {
                        for i in 0..chunk.volume() {
                            if let Some(v) = chunk.get_naive(i) {
                                if v > threshold {
                                    count += 1;
                                    sum += v;
                                }
                            }
                        }
                    }
                    // Positional access with milestones (or direct dense
                    // indexing — `get` dispatches on the mode).
                    "opt" | "dense" => {
                        for i in 0..chunk.volume() {
                            if let Some(v) = chunk.get(i) {
                                if v > threshold {
                                    count += 1;
                                    sum += v;
                                }
                            }
                        }
                    }
                    // The sequential delta-count cursor.
                    "delta" => {
                        for (_, v) in chunk.scan_with_delta_cursor() {
                            if v > threshold {
                                count += 1;
                                sum += v;
                            }
                        }
                    }
                    other => panic!("unknown mode {other}"),
                }
            }
            (count, sum)
        })
        .expect("scan failed");
    results
        .into_iter()
        .fold((0, 0.0), |(c, s), (dc, ds)| (c + dc, s + ds))
}

fn main() {
    banner(
        "Figure 8",
        "filter+aggregate time vs chunk size, naive vs dense vs opt",
    );
    // Sparser than the generator default: most of the globe is land or
    // cloud, as in the paper's CHL composites, so chunks really are sparse.
    let cfg = ChlConfig {
        lon: 2000,
        lat: 1000,
        time: 1,
        land_per_mille: 600,
        cloud_per_mille: 350,
        ..ChlConfig::default()
    };
    let ctx = SpangleContext::new(8);
    let threshold = 0.3;

    let mut table = Table::new(&[
        "w",
        "naive(ms)",
        "dense(ms)",
        "opt(ms)",
        "delta(ms)",
        "valid",
        "matches",
    ]);
    for w in [16usize, 32, 64, 128, 250, 500, 1000] {
        let meta = ArrayMeta::new(cfg.dims(), vec![w, w, 1]);
        let build = |policy: ChunkPolicy| {
            let arr = ArrayBuilder::new(&ctx, meta.clone())
                .policy(policy)
                .ingest(cfg.value_fn())
                .build();
            arr.persist();
            arr.count_valid().expect("ingest failed");
            arr
        };
        let naive = build(ChunkPolicy {
            dense_threshold: 1.1, // never dense: stay sparse
            build_milestones: false,
        });
        let dense = build(ChunkPolicy::always_dense());
        let opt = build(ChunkPolicy {
            dense_threshold: 1.1,
            build_milestones: true,
        });

        let ((n_count, _), t_naive) = time(|| scan_all(&naive, "naive", threshold));
        let ((d_count, _), t_dense) = time(|| scan_all(&dense, "dense", threshold));
        let ((o_count, _), t_opt) = time(|| scan_all(&opt, "opt", threshold));
        let ((e_count, _), t_delta) = time(|| scan_all(&opt, "delta", threshold));
        assert_eq!(n_count, d_count);
        assert_eq!(n_count, o_count);
        assert_eq!(n_count, e_count);
        let valid = opt.count_valid().expect("count failed");
        table.row(vec![
            w.to_string(),
            ms(t_naive),
            ms(t_dense),
            ms(t_opt),
            ms(t_delta),
            valid.to_string(),
            n_count.to_string(),
        ]);
    }
    table.print();
}
