//! Table III: logistic-regression training time and accuracy, Spangle vs
//! the MLlib-like row-oriented baseline, on three datasets scaled after
//! Table IIc.
//!
//! As in the paper, the baseline fails to ingest the two larger datasets:
//! its row layout (with the modelled JVM per-object overhead) exceeds the
//! configured executor heap, while Spangle's chunked layout fits.

use spangle_baselines::RowLogReg;
use spangle_bench::{banner, secs, Table};
use spangle_dataflow::SpangleContext;
use spangle_ml::datasets::{self, DatasetSpec};
use spangle_ml::{LogisticRegression, SgdConfig};

/// Modelled executor heap for the row-format baseline — sized so the
/// URL-like dataset fits and the KDD-like ones do not (the paper's MLlib
/// OOM behaviour at its own scales).
const BASELINE_HEAP_BYTES: usize = 16 << 20;

const SPECS: [&DatasetSpec; 3] = [
    &datasets::URL_LIKE,
    &datasets::KDD10_LIKE,
    &datasets::KDD12_LIKE,
];

fn main() {
    banner(
        "Table III",
        "logistic regression: training time and accuracy, Spangle vs MLlib-like",
    );
    let ctx = SpangleContext::new(8);
    let mut table = Table::new(&[
        "dataset",
        "rows",
        "features",
        "spangle time(s)",
        "spangle acc(%)",
        "mllib time(s)",
        "mllib acc(%)",
    ]);

    for spec in SPECS {
        let data = datasets::from_spec(&ctx, spec, 8);
        data.persist();
        data.rdd().count().expect("ingest failed");

        // Spangle: tolerance-driven mini-batch SGD (step 0.6, tol 1e-4).
        let model = LogisticRegression::train(
            &data,
            SgdConfig {
                max_iters: 400,
                batch_chunks: 4,
                ..SgdConfig::default()
            },
        )
        .expect("spangle training failed");
        let acc = data.accuracy(&model.weights).expect("accuracy failed");

        // MLlib-like: row ingest under the heap budget, then full-batch GD.
        let (mllib_time, mllib_acc) = match RowLogReg::ingest(&data, Some(BASELINE_HEAP_BYTES)) {
            Ok(baseline) => {
                let (weights, _iters, t) = baseline
                    .train(0.6, 1e-4, 400)
                    .expect("baseline training failed");
                let acc = data.accuracy(&weights).expect("accuracy failed");
                (secs(t), format!("{:.2}", acc * 100.0))
            }
            Err(oom) => {
                println!("   [mllib-like OOM on {}: {oom}]", spec.name);
                ("-".to_string(), "-".to_string())
            }
        };

        table.row(vec![
            spec.name.into(),
            data.num_rows().to_string(),
            spec.num_features.to_string(),
            secs(model.training_time),
            format!("{:.2}", acc * 100.0),
            mllib_time,
            mllib_acc,
        ]);
    }
    table.print();
}
