//! A drop-in harness for the workspace's criterion-style benches.
//!
//! The benches under `benches/` were written against the criterion API
//! (`Criterion`, `benchmark_group`, `Bencher::iter`, the `criterion_group!`
//! / `criterion_main!` macros). The workspace builds without external
//! crates, so this module provides the same surface with a much simpler
//! measurement strategy: calibrate an iteration count against the
//! measurement budget, take `sample_size` samples, and print the mean and
//! best per-iteration time of each benchmark.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Harness configuration; the analogue of `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Samples taken per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Time spent warming up (calibrating) before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n{name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        }
    }
}

/// A named benchmark group; settings may be overridden per group.
pub struct BenchmarkGroup {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
        self
    }

    /// Runs one benchmark identified by a [`BenchmarkId`], handing the
    /// input through to the routine.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.0, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}

    fn run(&self, id: &str, routine: &mut dyn FnMut(&mut Bencher)) {
        // Calibrate: run single iterations until the warm-up budget is
        // spent, tracking the cost of one iteration.
        let warm_up_started = Instant::now();
        let mut per_iter = Duration::MAX;
        loop {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            per_iter = per_iter.min(b.elapsed);
            if warm_up_started.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let per_iter = per_iter.max(Duration::from_nanos(1));

        // Split the measurement budget into `sample_size` samples and fit
        // as many iterations as the per-sample budget allows.
        let sample_budget = self.measurement_time / self.sample_size as u32;
        let iters = (sample_budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
        let deadline = Instant::now() + self.measurement_time;
        let mut best = Duration::MAX;
        let mut total = Duration::ZERO;
        let mut samples = 0u32;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            let per = b.elapsed / iters as u32;
            best = best.min(per);
            total += per;
            samples += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
        let mean = total / samples;
        println!(
            "  {id:<44} mean {:>12} best {:>12}   ({samples} samples x {iters} iters)",
            fmt_duration(mean),
            fmt_duration(best),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 10_000 {
        format!("{nanos} ns")
    } else if nanos < 10_000_000 {
        format!("{:.2} us", nanos as f64 / 1e3)
    } else {
        format!("{:.2} ms", nanos as f64 / 1e6)
    }
}

/// Passed to benchmark routines; [`Bencher::iter`] times the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over this sample's iteration count.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed += start.elapsed();
    }
}

/// A benchmark name with a parameter, printed as `name/param`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }
}

/// Declares a group runner function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::criterion::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_the_requested_iterations() {
        let mut count = 0u64;
        let mut b = Bencher {
            iters: 25,
            elapsed: Duration::ZERO,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 25);
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn groups_run_every_benchmark() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut group = c.benchmark_group("shim");
        let mut ran = 0;
        group.bench_function("noop", |b| {
            ran += 1;
            b.iter(|| 1 + 1)
        });
        group.bench_with_input(BenchmarkId::new("param", 3), &3usize, |b, &x| {
            ran += 1;
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(ran >= 2, "both benchmarks must execute");
    }

    #[test]
    fn benchmark_id_formats_name_and_param() {
        assert_eq!(BenchmarkId::new("rank", 4096).0, "rank/4096");
    }
}
