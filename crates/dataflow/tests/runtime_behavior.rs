//! Runtime-behaviour integration tests: shuffle garbage collection,
//! broadcast variables inside jobs, stage reuse across actions, metrics
//! plumbing, and executor-loss fault tolerance.

use spangle_dataflow::{HashPartitioner, JobOutcome, PairRdd, SpangleContext};
use std::sync::Arc;

fn sorted<T: Ord>(mut v: Vec<T>) -> Vec<T> {
    v.sort();
    v
}

#[test]
fn dropping_a_shuffled_rdd_frees_its_shuffle_blocks() {
    let ctx = SpangleContext::new(2);
    let base = ctx.parallelize((0u64..200).map(|i| (i % 10, i)).collect(), 4);
    let reduced = base.reduce_by_key(Arc::new(HashPartitioner::new(4)), |a, b| a + b);
    reduced.count().unwrap();
    assert!(
        ctx.shuffle_resident_bytes() > 0,
        "shuffle outputs are kept for reuse while the RDD lives"
    );
    drop(reduced);
    assert_eq!(
        ctx.shuffle_resident_bytes(),
        0,
        "dropping the last reader garbage-collects the shuffle"
    );
}

#[test]
fn iterative_jobs_do_not_leak_shuffle_state() {
    let ctx = SpangleContext::new(2);
    let base = ctx.parallelize((0u64..100).map(|i| (i % 5, 1u64)).collect(), 4);
    let mut resident_after_drop = Vec::new();
    for _ in 0..5 {
        let step = base.reduce_by_key(Arc::new(HashPartitioner::new(2)), |a, b| a + b);
        step.count().unwrap();
        drop(step);
        resident_after_drop.push(ctx.shuffle_resident_bytes());
    }
    assert!(
        resident_after_drop.iter().all(|&b| b == 0),
        "per-iteration shuffles must be reclaimed: {resident_after_drop:?}"
    );
}

#[test]
fn broadcast_values_are_visible_inside_tasks() {
    let ctx = SpangleContext::new(3);
    let lookup = ctx.broadcast(vec![10i64, 20, 30, 40]);
    let rdd = ctx.parallelize(vec![0usize, 1, 2, 3, 2, 1], 3);
    let mapped = rdd.map(move |i| lookup.value()[i]);
    assert_eq!(mapped.collect().unwrap(), vec![10, 20, 30, 40, 30, 20]);
}

#[test]
fn shuffle_reuse_survives_downstream_transformations() {
    let ctx = SpangleContext::new(2);
    let reduced = ctx
        .parallelize((0u64..100).map(|i| (i % 4, 1u64)).collect(), 4)
        .reduce_by_key(Arc::new(HashPartitioner::new(2)), |a, b| a + b);
    reduced.count().unwrap();

    // Three different downstream pipelines over the same shuffled parent:
    // the map stage must run exactly once in total.
    let before = ctx.metrics_snapshot();
    let a = reduced.map(|(k, v)| (k, v * 2)).collect().unwrap();
    let b = reduced.filter(|(_, v)| *v > 10).count().unwrap();
    let c = reduced.map(|(_, v)| v).reduce(|x, y| x + y).unwrap();
    let delta = ctx.metrics_snapshot() - before;
    assert_eq!(a.len(), 4);
    assert_eq!(b, 4);
    assert_eq!(c, Some(100));
    assert_eq!(delta.stages_skipped, 3, "each action skips the map stage");
    assert_eq!(delta.shuffle_write_bytes, 0);
}

#[test]
fn per_job_metrics_compose_across_interleaved_jobs() {
    let ctx = SpangleContext::new(2);
    let rdd = ctx.parallelize((0u64..1000).collect(), 8);
    let s0 = ctx.metrics_snapshot();
    rdd.count().unwrap();
    let s1 = ctx.metrics_snapshot();
    rdd.count().unwrap();
    let s2 = ctx.metrics_snapshot();
    // Two identical narrow jobs cost the same.
    assert_eq!((s1 - s0).tasks_run, (s2 - s1).tasks_run);
    assert_eq!((s1 - s0).stages_run, 1);
}

/// Names of every live thread in this process, via `/proc` (comm is
/// truncated to 15 bytes, so match on prefixes).
#[cfg(target_os = "linux")]
fn thread_names() -> Vec<String> {
    let mut names = Vec::new();
    if let Ok(tasks) = std::fs::read_dir("/proc/self/task") {
        for task in tasks.flatten() {
            if let Ok(comm) = std::fs::read_to_string(task.path().join("comm")) {
                names.push(comm.trim().to_string());
            }
        }
    }
    names
}

/// A job awaiting a shuffle that another job is producing must not park a
/// `spangle-stage-waiter-*` thread (the scheduler subscribes a callback on
/// the shuffle service instead), and the wait must still resolve to the
/// shared output being computed exactly once.
#[test]
#[cfg(target_os = "linux")]
fn awaiting_an_in_flight_shuffle_spawns_no_waiter_threads() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;
    use std::time::Duration;

    let ctx = SpangleContext::new(2);
    // Two map partitions, each sleeping once: a wide window in which the
    // map stage is in flight and a second job has to wait on it.
    let slow = ctx.parallelize(vec![(0u64, 1u64), (1, 2)], 2).map(|kv| {
        std::thread::sleep(Duration::from_millis(120));
        kv
    });
    let reduced = slow.reduce_by_key(Arc::new(HashPartitioner::new(2)), |a, b| a + b);

    let before = ctx.metrics_snapshot();
    let stop = Arc::new(AtomicBool::new(false));
    let seen = Arc::new(Mutex::new(Vec::<String>::new()));
    let sampler = {
        let (stop, seen) = (Arc::clone(&stop), Arc::clone(&seen));
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let waiters: Vec<String> = thread_names()
                    .into_iter()
                    .filter(|n| n.starts_with("spangle-stage"))
                    .collect();
                seen.lock().unwrap().extend(waiters);
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };

    let (a, b) = {
        let ra = reduced.clone();
        let rb = reduced.clone();
        let ta = std::thread::spawn(move || ra.collect().unwrap());
        // Give job A a head start so job B reliably finds the shuffle
        // in flight and has to await it.
        std::thread::sleep(Duration::from_millis(30));
        let tb = std::thread::spawn(move || rb.collect().unwrap());
        (ta.join().unwrap(), tb.join().unwrap())
    };
    stop.store(true, Ordering::Relaxed);
    sampler.join().unwrap();

    let mut a = a;
    let mut b = b;
    a.sort();
    b.sort();
    assert_eq!(a, b);
    assert_eq!(a, vec![(0, 1), (1, 2)]);
    let delta = ctx.metrics_snapshot() - before;
    assert_eq!(delta.tasks_run, 2 + 2 + 2, "the map stage ran exactly once");
    assert_eq!(
        delta.stages_skipped, 1,
        "the second job awaited, then skipped"
    );
    let seen = seen.lock().unwrap();
    assert!(
        seen.is_empty(),
        "no spangle-stage-waiter-* thread may ever exist, saw: {seen:?}"
    );
}

/// The headline recovery scenario: an executor is killed *between* a map
/// stage and its reduce stage (the map output exists and the shuffle is
/// marked completed when the kill lands). The reduce observes
/// `FetchFailed`, the scheduler recomputes only the lost map partition
/// from lineage, and the job's result is identical to the no-failure run.
#[test]
fn killing_an_executor_between_map_and_reduce_recomputes_only_its_maps() {
    // 2 map partitions on 2 executors: task placement is partition ==
    // executor and single-entry queues are never stolen, so map partition
    // 1's output lives on executor 1, deterministically.
    let ctx = SpangleContext::new(2);
    let reduced = ctx
        .parallelize((0u64..100).map(|i| (i % 4, i)).collect(), 2)
        .reduce_by_key(Arc::new(HashPartitioner::new(2)), |a, b| a + b);

    let s0 = ctx.metrics_snapshot();
    let baseline = sorted(reduced.collect().unwrap());
    let s1 = ctx.metrics_snapshot();
    let full_run = s1 - s0;
    assert!(full_run.shuffle_write_bytes > 0);

    // Kill between the stages: the map output is complete and resident,
    // and the next action will skip the map stage and go straight to the
    // reduce — which must then discover the hole.
    let loss = ctx.kill_executor(1);
    assert_eq!(loss.executor, 1);
    assert_eq!(loss.incarnation, 1);
    assert!(loss.shuffle_blocks_dropped >= 1);
    assert!(loss.shuffle_bytes_dropped > 0);

    let recovered = sorted(reduced.collect().unwrap());
    let recovery = ctx.metrics_snapshot() - s1;
    assert_eq!(recovered, baseline, "recovery must not change the answer");
    assert_eq!(recovery.executors_lost, 1);
    assert!(recovery.fetch_failures >= 1, "{recovery:?}");
    assert_eq!(
        recovery.map_partitions_recomputed, 1,
        "only executor 1's map partition is recomputed: {recovery:?}"
    );
    // The recomputation rewrote map partition 1's blocks and nothing
    // else: strictly more than zero, strictly less than the full map
    // stage.
    assert!(recovery.shuffle_write_bytes > 0, "{recovery:?}");
    assert!(
        recovery.shuffle_write_bytes < full_run.shuffle_write_bytes,
        "surviving map output must be reused, not rewritten: {recovery:?}"
    );

    let report = ctx.last_job_report().expect("recovery job report");
    assert_eq!(report.outcome, JobOutcome::Succeeded);
    assert!(report.fetch_failures() >= 1);
    assert_eq!(report.map_partitions_recomputed(), 1);
}

/// Mid-job executor loss: the injector kills executor 1 right after it
/// finishes its reduce-side task of the first shuffle, while the job is
/// still running. The attempt comes back as `ExecutorLost`, its replay
/// trips over the first shuffle's lost map output (`FetchFailed`), the
/// lost map partition is rebuilt from lineage, and the job completes with
/// the correct result.
#[test]
fn mid_job_executor_kill_recovers_through_lineage() {
    let ctx = SpangleContext::new(2);
    let out = {
        let first = ctx
            .parallelize((0u64..100).map(|i| (i % 4, i)).collect(), 2)
            .reduce_by_key(Arc::new(HashPartitioner::new(2)), |a, b| a + b);
        // A second shuffle so the first one's reduce runs mid-job: the
        // identity re-keying defeats co-partitioning, forcing a real
        // shuffle.
        let second = first
            .map(|(k, v)| (k, v * 2))
            .reduce_by_key(Arc::new(HashPartitioner::new(2)), |a, b| a + b);

        // Executor 1 runs exactly two tasks before the kill: the first
        // shuffle's map task, then its reduce task (which is the second
        // shuffle's map task). The kill lands after the latter, so both
        // its first-shuffle map output and its just-written second-shuffle
        // output die with it, mid-job.
        ctx.failure_injector().kill_executor_after(1, 2);
        let before = ctx.metrics_snapshot();
        let out = sorted(second.collect().unwrap());
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(delta.executors_lost, 1);
        assert!(delta.fetch_failures >= 1, "{delta:?}");
        assert_eq!(delta.map_partitions_recomputed, 1, "{delta:?}");
        out
    };
    // Key k sums i over i ≡ k (mod 4), i < 100: 25k + 1200; doubled by
    // the map between the shuffles.
    let expected: Vec<(u64, u64)> = (0..4).map(|k| (k, 2 * (25 * k + 1200))).collect();
    assert_eq!(out, expected);
    assert!(
        ctx.failure_injector().is_drained(),
        "the armed executor kill must have fired"
    );
}

/// Injector composition: `fail_task` and `kill_executor_after` armed on
/// the *same attempt* must both fire, and the injected failure must keep
/// precedence over the executor loss — charged to the task's attempt
/// budget (one retry) instead of vanishing into the free replay the
/// `ExecutorLost` path grants. Regression test: the epoch-override check
/// used to rewrite the `Injected` outcome into `ExecutorLost`.
#[test]
fn injected_failure_composes_with_executor_kill_on_same_attempt() {
    let ctx = SpangleContext::new(2);
    let rdd = ctx.parallelize((0u64..20).collect(), 2);
    // Partition 1 is placed on executor 1: its first attempt is killed by
    // the injector, and the same task body is executor 1's first task, so
    // the armed kill fires right after the injected failure.
    ctx.failure_injector().fail_task(rdd.id(), 1, 1);
    ctx.failure_injector().kill_executor_after(1, 1);

    let before = ctx.metrics_snapshot();
    let out = sorted(rdd.collect().unwrap());
    let delta = ctx.metrics_snapshot() - before;

    assert_eq!(out, (0u64..20).collect::<Vec<_>>());
    assert!(
        ctx.failure_injector().is_drained(),
        "both armed injections must have fired"
    );
    assert_eq!(delta.executors_lost, 1, "{delta:?}");
    assert_eq!(
        delta.task_retries, 1,
        "the injected failure is charged as a retry, not an executor-loss \
         replay: {delta:?}"
    );
}

/// A permanently poisoned job — every resubmission is answered by another
/// executor kill — exhausts its resubmission budget and aborts cleanly
/// instead of looping, leaving no shuffle bytes resident.
#[test]
fn exhausted_resubmission_budget_aborts_the_job_cleanly() {
    let ctx = SpangleContext::builder()
        .executors(1)
        .max_resubmissions(3)
        .build();
    let reduced = ctx
        .parallelize((0u64..40).map(|i| (i % 4, i)).collect(), 1)
        .reduce_by_key(Arc::new(HashPartitioner::new(1)), |a, b| a + b);
    // Four kills: the initial attempt plus one per budgeted resubmission,
    // so the fourth `ExecutorLost` finds the budget empty.
    for _ in 0..4 {
        ctx.failure_injector().kill_executor_after(0, 1);
    }
    let err = reduced.collect().unwrap_err();
    let report = ctx
        .job_reports()
        .into_iter()
        .find(|r| r.job_id == err.job_id)
        .expect("aborted job report");
    assert_eq!(report.outcome, JobOutcome::Aborted);
    let snap = ctx.metrics_snapshot();
    assert_eq!(snap.executors_lost, 4);
    assert!(
        ctx.failure_injector().is_drained(),
        "every armed kill must have fired"
    );
    assert_eq!(
        ctx.shuffle_resident_bytes(),
        0,
        "the abort must leave no partial shuffle output resident"
    );
}

/// Killing an executor also drops the cached partitions it computed; the
/// next action silently recomputes them from lineage (and only them).
#[test]
fn killed_executors_cached_partitions_recompute_from_lineage() {
    let ctx = SpangleContext::new(2);
    let data: Vec<u64> = (0..100).collect();
    let rdd = ctx.parallelize(data.clone(), 2).map(|x| x * 3);
    rdd.persist();
    assert_eq!(rdd.count().unwrap(), 100);
    let cached_before = ctx.cached_bytes();
    assert!(cached_before > 0);

    let loss = ctx.kill_executor(0);
    assert_eq!(loss.cached_partitions_dropped, 1);
    assert!(loss.cached_bytes_dropped > 0);
    assert!(ctx.cached_bytes() < cached_before);

    let before = ctx.metrics_snapshot();
    let out = sorted(rdd.collect().unwrap());
    let delta = ctx.metrics_snapshot() - before;
    assert_eq!(out, data.iter().map(|x| x * 3).collect::<Vec<_>>());
    assert_eq!(delta.cache_misses, 1, "one partition recomputes: {delta:?}");
    assert_eq!(delta.cache_hits, 1, "the survivor is reused: {delta:?}");
    assert_eq!(ctx.cached_bytes(), cached_before, "re-cached after loss");
}

#[test]
fn executor_count_does_not_change_results() {
    let data: Vec<(u64, u64)> = (0..500).map(|i| (i % 17, i)).collect();
    let mut outputs = Vec::new();
    for executors in [1usize, 2, 7] {
        let ctx = SpangleContext::new(executors);
        let mut out = ctx
            .parallelize(data.clone(), 5)
            .reduce_by_key(Arc::new(HashPartitioner::new(3)), |a, b| a.max(b))
            .collect()
            .unwrap();
        out.sort();
        outputs.push(out);
    }
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[1], outputs[2]);
}
