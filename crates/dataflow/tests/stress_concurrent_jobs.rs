//! Seeded multi-job stress test: many concurrent jobs racing over a
//! shared shuffle dependency with failure injection enabled.
//!
//! This exercises the whole claim/subscribe/steal machinery at once:
//! concurrent claimants elect one map-stage owner, everyone else gets an
//! event-driven completion callback (no parked waiter threads), retried
//! attempts recompute from lineage, and idle executors steal skewed
//! backlogs. The assertions are the system invariants, not timings:
//! every job agrees with the sequential reference, the shared map stage's
//! bytes are written exactly once per completed run, no thread (executor,
//! waiter, or otherwise) outlives its context, and shuffle state is fully
//! reclaimed.
//!
//! Deliberately `#[ignore]`d: `scripts/check.sh stress` (a separate CI
//! job) runs it so its runtime does not slow the default gate.

use spangle_dataflow::{
    cancellation_point, HashPartitioner, PairRdd, SpangleContext, SpeculationConfig,
};
use spangle_testkit::{run_cases, Rng};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

mod gate;
use gate::{collect_bounded, wait_bounded};

/// Live threads of this process (Linux); used to prove nothing leaks.
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task")
        .map(|d| d.flatten().count())
        .unwrap_or(0)
}

fn waiter_threads() -> Vec<String> {
    let mut names = Vec::new();
    if let Ok(tasks) = std::fs::read_dir("/proc/self/task") {
        for task in tasks.flatten() {
            if let Ok(comm) = std::fs::read_to_string(task.path().join("comm")) {
                let comm = comm.trim();
                if comm.starts_with("spangle-stage") {
                    names.push(comm.to_string());
                }
            }
        }
    }
    names
}

/// Waits (bounded) for the process thread count to drop back to
/// `baseline`; detached threads need a moment to fully exit.
fn assert_threads_drain_to(baseline: usize) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let now = thread_count();
        if now <= baseline {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "leaked threads: {now} live, baseline was {baseline}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

#[test]
#[ignore = "stress gate: run explicitly via scripts/check.sh stress (separate CI job)"]
fn concurrent_jobs_with_failure_injection_hold_all_invariants() {
    let baseline_threads = thread_count();
    run_cases(0x57E5_5CA5, 10, |rng: &mut Rng| {
        let executors = rng.usize_in(2..6);
        let ctx = SpangleContext::new(executors);
        let num_parts = rng.usize_in(2..7);
        let num_keys = rng.u64_in(3..12);
        let len = rng.usize_in(100..500);
        let data: Vec<(u64, u64)> = (0..len)
            .map(|_| (rng.u64_in(0..num_keys), rng.u64_in(0..100)))
            .collect();

        // Sequential reference.
        let mut expected: HashMap<u64, u64> = HashMap::new();
        for (k, v) in &data {
            *expected.entry(*k).or_insert(0) += v;
        }
        let mut expected: Vec<(u64, u64)> = expected.into_iter().collect();
        expected.sort();

        let reduce_parts = rng.usize_in(1..5);
        let base = ctx.parallelize(data, num_parts);
        let reduced =
            base.reduce_by_key(Arc::new(HashPartitioner::new(reduce_parts)), |a, b| a + b);

        // Kill a few upcoming task attempts anywhere (fewer than the
        // per-task attempt limit, so every job still converges).
        let injected = rng.usize_in(0..3);
        ctx.failure_injector().fail_next_tasks(injected);

        // N concurrent jobs race over the same shuffle dependency, at
        // mixed priorities so the shared service's priority queue is
        // exercised under contention too.
        let n_jobs = rng.usize_in(3..8);
        let before = ctx.metrics_snapshot();
        let handles: Vec<_> = (0..n_jobs)
            .map(|i| {
                let r = reduced.clone();
                let ctx = ctx.clone();
                let priority = (i as i32 % 3) - 1;
                std::thread::spawn(move || {
                    ctx.run_with_priority(priority, || {
                        let mut out = collect_bounded(&r, "concurrent reduce job").unwrap();
                        out.sort();
                        out
                    })
                })
            })
            .collect();
        for h in handles {
            assert_eq!(
                h.join().unwrap(),
                expected,
                "every job sees the same result"
            );
        }
        let delta = ctx.metrics_snapshot() - before;

        assert!(
            waiter_threads().is_empty(),
            "no spangle-stage-waiter-* thread may ever exist"
        );
        // Byte accounting: the map stage's output was produced and every
        // job's result stage read it.
        assert!(
            delta.shuffle_write_bytes > 0,
            "the shared shuffle was produced"
        );
        assert!(delta.shuffle_read_bytes > 0, "jobs read the shared shuffle");
        // `fail_next_tasks` kills exactly `injected` distinct first
        // attempts, each retried exactly once — well under the per-task
        // attempt budget, so nothing aborts.
        assert_eq!(
            delta.task_retries as usize, injected,
            "each injected failure causes exactly one retry"
        );
        assert!(
            ctx.failure_injector().is_drained(),
            "every armed injection was consumed"
        );
        // The map stage ran once; every extra job either skipped it or
        // awaited the in-flight owner. Result stages ran once per job.
        assert_eq!(
            delta.stages_run as usize,
            1 + n_jobs,
            "one shared map stage + one result stage per job (delta: {delta:?})"
        );
        assert_eq!(delta.stages_skipped as usize, n_jobs - 1);

        // Every job recorded a successful report through the shared
        // service, and per-job steal accounting partitions the
        // cluster-wide counter.
        let reports = ctx.job_reports();
        assert_eq!(reports.len(), n_jobs, "one report per job");
        for report in &reports {
            assert_eq!(report.outcome, spangle_dataflow::JobOutcome::Succeeded);
            assert!((-1..=1).contains(&report.priority));
        }
        let stolen: usize = reports.iter().map(|r| r.tasks_stolen()).sum();
        assert_eq!(delta.tasks_stolen, stolen as u64);

        // Shuffle state is fully reclaimed once the lineage drops.
        drop((base, reduced));
        assert_eq!(ctx.shuffle_resident_bytes(), 0, "shuffle blocks reclaimed");
        drop(ctx);
        // Executors joined on context drop; nothing may leak.
        assert_threads_drain_to(baseline_threads);
    });
}

/// Seeded saturation scenario for the admission controller: a sleeping
/// wedge job pins the single job slot while a batch of mixed-priority
/// jobs arrives behind it. Invariants:
///
/// (a) a Rejected job leaks no shuffle or cache bytes — every rejected
///     job's lineage is kept alive while the completed jobs' lineages are
///     dropped, so any leaked bytes would stay resident and visible;
/// (b) every admitted job resolves with a recorded `JobReport` whose
///     outcome matches how its handle resolved;
/// (c) jobs at or above the shed threshold are never shed while
///     lower-priority traffic is what saturated the scheduler.
#[test]
#[ignore = "stress gate: run explicitly via scripts/check.sh stress (separate CI job)"]
fn saturated_scheduler_sheds_only_low_priority_and_leaks_nothing() {
    use spangle_dataflow::{submit_job, JobOutcome, TaskError};

    let baseline_threads = thread_count();
    run_cases(0xAD_515_510, 8, |rng: &mut Rng| {
        let executors = rng.usize_in(2..5);
        let ctx = spangle_dataflow::SpangleContext::builder()
            .executors(executors)
            .max_concurrent_jobs(1)
            .shed_below_priority(0)
            .build();
        let injected = rng.usize_in(0..2);
        ctx.failure_injector().fail_next_tasks(injected);

        // The wedge: a high-priority job whose tasks sleep long enough
        // that every later submission is routed while it holds the slot.
        let wedge_rdd = ctx.parallelize((0..executors as u64).collect(), executors);
        let wedge = submit_job(&wedge_rdd, |_, data: Arc<Vec<u64>>| {
            std::thread::sleep(std::time::Duration::from_millis(120));
            data.len()
        });

        // Each satellite job gets its own shuffle lineage so leaked bytes
        // are attributable to the job that produced them.
        let n_jobs = rng.usize_in(3..7);
        let mut priorities = Vec::new();
        let mut lineages = Vec::new();
        let mut handles = Vec::new();
        for j in 0..n_jobs {
            let priority = rng.usize_in(0..4) as i32 - 2; // -2..2
            let parts = rng.usize_in(1..4);
            let len = rng.usize_in(20..80);
            let data: Vec<(u64, u64)> = (0..len)
                .map(|i| (i as u64 % 5 + 1000 * j as u64, 1))
                .collect();
            let reduced = ctx
                .parallelize(data, parts)
                .reduce_by_key(Arc::new(HashPartitioner::new(2)), |a, b| a + b);
            let handle = ctx.run_with_priority(priority, || {
                submit_job(&reduced, |_, data: Arc<Vec<(u64, u64)>>| data.len())
            });
            priorities.push(priority);
            lineages.push(reduced);
            handles.push(handle);
        }

        // (c) is deterministic here: every job was submitted while the
        // wedge saturated the scheduler, so outcome is decided purely by
        // priority — below the threshold shed, at or above it queued and
        // eventually completed.
        let mut rejected_lineages = Vec::new();
        let mut completed_lineages = Vec::new();
        for ((handle, priority), lineage) in handles.into_iter().zip(&priorities).zip(lineages) {
            let job_id = handle.job_id();
            let outcome = wait_bounded(handle, "satellite job");
            let report = ctx
                .job_reports()
                .into_iter()
                .find(|r| r.job_id == job_id)
                .expect("(b) every resolved job records a report");
            assert_eq!(report.priority, *priority);
            if *priority < 0 {
                let err = outcome.expect_err("low-priority jobs are shed");
                assert!(matches!(err.last_error, TaskError::Rejected), "{err}");
                assert_eq!(report.outcome, JobOutcome::Rejected);
                rejected_lineages.push(lineage);
            } else {
                let sums = outcome.unwrap_or_else(|e| {
                    panic!("(c) priority {priority} >= threshold must complete: {e}")
                });
                assert!(!sums.is_empty());
                assert_eq!(report.outcome, JobOutcome::Succeeded);
                assert!(report.admission_wait_nanos > 0, "queued behind the wedge");
                completed_lineages.push(lineage);
            }
        }
        assert_eq!(
            wait_bounded(wedge, "wedge job").unwrap(),
            vec![1; executors]
        );
        assert!(
            ctx.failure_injector().is_drained(),
            "armed injections all landed on admitted jobs"
        );

        let shed = priorities.iter().filter(|p| **p < 0).count();
        let snap = ctx.metrics_snapshot();
        assert_eq!(snap.jobs_rejected as usize, shed, "exact shed count");
        assert_eq!(snap.jobs_deadlined, 0);

        // (a): drop only the completed jobs' lineages; the rejected ones
        // stay alive, so any bytes they produced would remain resident.
        drop(completed_lineages);
        assert_eq!(
            ctx.shuffle_resident_bytes(),
            0,
            "rejected jobs may not leave shuffle bytes behind"
        );
        assert_eq!(ctx.cached_bytes(), 0, "no job persisted anything");
        drop((rejected_lineages, wedge_rdd));
        assert!(waiter_threads().is_empty());
        drop(ctx);
        assert_threads_drain_to(baseline_threads);
    });
}

/// How long an uninterrupted straggler task holds its executor. The p99
/// bound below is half of this, so the assertion can only pass if
/// speculation duplicated the straggler and cancellation interrupted it.
const STRAGGLER_HOLD: Duration = Duration::from_millis(1_000);

/// Seeded straggler-mitigation gate: one executor is artificially slowed
/// — every task body that lands on its thread spins (cancellably) for
/// [`STRAGGLER_HOLD`] — while a stream of single-stage jobs runs. With
/// speculation on, the driver must duplicate each straggling task onto a
/// healthy executor and cancel the loser, so the p99 job latency stays
/// within half the hold time of the no-straggler run instead of eating
/// the full hold per job.
#[test]
#[ignore = "stress gate: run explicitly via scripts/check.sh stress (separate CI job)"]
fn speculation_bounds_tail_latency_under_a_slowed_executor() {
    let baseline_threads = thread_count();
    run_cases(0x510_3EC5, 4, |rng: &mut Rng| {
        let executors = rng.usize_in(3..6);
        let num_parts = executors * 2;
        let n_jobs = 12;
        let slow_thread = format!("spangle-executor-{}", rng.usize_in(0..executors));

        // Speculation pinned on (the suite also runs under
        // SPANGLE_DISABLE_SPECULATION=1) with a threshold low enough to
        // fire quickly but far above a healthy task's runtime; coalescing
        // off because coalesced groups are never speculated.
        let ctx_for = || {
            SpangleContext::builder()
                .executors(executors)
                .speculation(SpeculationConfig {
                    enabled: true,
                    multiplier: 3.0,
                    min_runtime: Duration::from_millis(40),
                })
                .coalesce_partitions(false)
                .build()
        };

        // One job: a single-stage count over `num_parts` one-element
        // partitions whose map body spins on the slowed executor's thread
        // until cancelled (or the hold expires). Returns its wall time.
        let run_job = |ctx: &SpangleContext, slow: Option<String>| -> Duration {
            let rdd = ctx
                .parallelize((0..num_parts as u64).collect(), num_parts)
                .map(move |x| {
                    if let Some(name) = &slow {
                        if std::thread::current().name() == Some(name.as_str()) {
                            let start = Instant::now();
                            while start.elapsed() < STRAGGLER_HOLD {
                                cancellation_point();
                                std::thread::sleep(Duration::from_millis(1));
                            }
                        }
                    }
                    x + 1
                });
            let start = Instant::now();
            assert_eq!(rdd.count().unwrap(), num_parts);
            start.elapsed()
        };

        let p99 = |mut times: Vec<Duration>| -> Duration {
            times.sort();
            times[(times.len() * 99).div_ceil(100) - 1]
        };

        // Reference: same cluster and config, nobody slowed.
        let ctx = ctx_for();
        let clean: Vec<Duration> = (0..n_jobs).map(|_| run_job(&ctx, None)).collect();
        let p99_clean = p99(clean);
        drop(ctx);

        // Slowed run: every job's partitions include some owned by the
        // slowed executor, so every job has at least one straggler.
        let ctx = ctx_for();
        let before = ctx.metrics_snapshot();
        let slowed: Vec<Duration> = (0..n_jobs)
            .map(|_| run_job(&ctx, Some(slow_thread.clone())))
            .collect();
        let p99_slow = p99(slowed);
        let delta = ctx.metrics_snapshot() - before;

        assert!(
            delta.speculation_wins > 0,
            "the slowed executor's tasks must be rescued by duplicates: {delta:?}"
        );
        assert!(
            p99_slow <= p99_clean + STRAGGLER_HOLD / 2,
            "speculation must bound the tail: p99 {p99_slow:?} vs clean {p99_clean:?} \
             (an unmitigated straggler holds its executor {STRAGGLER_HOLD:?})"
        );
        drop(ctx);
        assert_threads_drain_to(baseline_threads);
    });
}
