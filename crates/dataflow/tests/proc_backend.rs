//! Executor-backend integration tests: the remote data plane must
//! compute bit-identical results under the in-process backend, the
//! multi-process backend, and the multi-process backend with worker
//! processes `SIGKILL`ed mid-job — with the kills detected purely by
//! missed socket heartbeats (no `kill_executor` call anywhere in this
//! file).

use spangle_dataflow::ops;
use spangle_dataflow::{
    remote_collect_pairs, remote_map, remote_pagerank_step, remote_source, BackendKind,
    SpangleContext,
};
use std::sync::atomic::AtomicU64;
use std::time::Duration;

const SEED: u64 = 0xC0FFEE;
const N_PAGES: u64 = 400;
const PARTS: usize = 8;
const ITERS: usize = 4;
const EXECUTORS: usize = 4;

/// The same fixed-point PageRank computed directly from the operator
/// table, single-threaded — the ground truth every backend must hit
/// byte-for-byte.
fn reference_pagerank() -> Vec<(u64, u64)> {
    let progress = AtomicU64::new(0);
    let run = |op: &str, args: &[u64], inputs: &[&[u8]]| {
        ops::run_op(op, &ops::pack_args(args), inputs, &progress).unwrap()
    };
    let parts = PARTS as u64;
    let graph: Vec<Vec<u8>> = (0..parts)
        .map(|p| run("pr.graph", &[SEED, N_PAGES, parts, p], &[]).remove(0))
        .collect();
    let mut ranks: Vec<Vec<u8>> = (0..parts)
        .map(|p| run("pr.init", &[N_PAGES, parts, p], &[]).remove(0))
        .collect();
    for _ in 0..ITERS {
        let buckets: Vec<Vec<Vec<u8>>> = (0..PARTS)
            .map(|p| run("pr.contrib", &[parts], &[&graph[p], &ranks[p]]))
            .collect();
        ranks = (0..parts)
            .map(|r| {
                let inputs: Vec<&[u8]> = (0..PARTS)
                    .map(|p| buckets[p][r as usize].as_slice())
                    .collect();
                run("pr.apply", &[N_PAGES, parts, r], &inputs).remove(0)
            })
            .collect();
    }
    let mut pairs: Vec<(u64, u64)> = ranks
        .iter()
        .flat_map(|b| ops::decode_pairs(b).unwrap())
        .collect();
    pairs.sort_unstable();
    pairs
}

/// Builds the PageRank lineage over the remote plane and materialises
/// the final ranks.
fn remote_pagerank(ctx: &SpangleContext) -> Vec<(u64, u64)> {
    let graph = remote_source(ctx, "pr.graph", vec![SEED, N_PAGES, PARTS as u64], PARTS);
    let mut ranks = remote_source(ctx, "pr.init", vec![N_PAGES, PARTS as u64], PARTS);
    for _ in 0..ITERS {
        ranks = remote_pagerank_step(&graph, &ranks, N_PAGES, PARTS);
    }
    remote_collect_pairs(&ranks).unwrap()
}

#[test]
fn remote_plane_matches_direct_operator_reference_inproc() {
    let ctx = SpangleContext::builder()
        .executors(EXECUTORS)
        .backend(BackendKind::InProc)
        .build();
    assert_eq!(ctx.backend_kind(), BackendKind::InProc);
    assert_eq!(ctx.real_worker_slots(), 0);
    assert_eq!(remote_pagerank(&ctx), reference_pagerank());
}

#[test]
fn remote_sum_family_matches_reference_inproc() {
    let ctx = SpangleContext::builder()
        .executors(2)
        .backend(BackendKind::InProc)
        .build();
    let parts = 4usize;
    let gen = remote_source(&ctx, "sum.gen", vec![7, 500, 32], parts);
    let summed = spangle_dataflow::remote_exchange(
        &gen,
        "sum.bucket",
        vec![parts as u64],
        "sum.merge",
        vec![],
        parts,
    );
    let got = remote_collect_pairs(&summed).unwrap();

    // Reference: aggregate the generated pairs directly.
    let progress = AtomicU64::new(0);
    let mut want: std::collections::BTreeMap<u64, u64> = Default::default();
    for p in 0..parts as u64 {
        let block = ops::run_op("sum.gen", &ops::pack_args(&[7, 500, 32, p]), &[], &progress)
            .unwrap()
            .remove(0);
        for (k, v) in ops::decode_pairs(&block).unwrap() {
            let slot = want.entry(k).or_insert(0);
            *slot = slot.wrapping_add(v);
        }
    }
    assert_eq!(got, want.into_iter().collect::<Vec<_>>());
}

#[test]
fn proc_backend_runs_the_remote_plane_in_real_processes() {
    let ctx = SpangleContext::builder()
        .executors(EXECUTORS)
        .backend(BackendKind::Proc)
        .build();
    assert_eq!(ctx.backend_kind(), BackendKind::Proc);
    assert_eq!(
        ctx.real_worker_slots(),
        EXECUTORS,
        "every slot must be served by a worker process (is the \
         spangle_worker binary missing?)"
    );
    let my_pid = std::process::id();
    for slot in 0..EXECUTORS {
        let pid = ctx.worker_pid(slot).expect("remote slot has a pid");
        assert_ne!(pid, my_pid, "a worker is a real separate OS process");
        let stats = ctx.worker_stats(slot).expect("worker answers stats");
        assert_eq!(stats.pid, pid as u64);
        assert_eq!(stats.epoch, 0);
    }
    assert_eq!(remote_pagerank(&ctx), reference_pagerank());
    // The blocks live in the worker stores, not the driver.
    let resident: u64 = (0..EXECUTORS)
        .map(|s| ctx.worker_stats(s).expect("stats").bytes)
        .sum();
    assert!(resident > 0, "worker stores hold the partition bytes");
}

#[test]
fn remote_map_echoes_through_worker_stores() {
    let ctx = SpangleContext::builder()
        .executors(2)
        .backend(BackendKind::Proc)
        .build();
    let source = remote_source(&ctx, "pr.init", vec![64, 4], 4);
    let echoed = remote_map(&source, "test.echo", vec![]);
    let direct = remote_collect_pairs(&source).unwrap();
    let roundtripped = remote_collect_pairs(&echoed).unwrap();
    assert_eq!(direct, roundtripped);
    assert_eq!(direct.len(), 64);
}

/// The crash-recovery gate (run by `check.sh proc`): one worker process
/// is `SIGKILL`ed per iteration of the PageRank loop, mid-job. The
/// driver must detect each death purely from missed socket heartbeats,
/// quarantine/kill the slot through the standard health path, replay the
/// dead incarnation's map partitions from lineage, and land on
/// bit-identical final ranks — `kill_executor` is never called.
#[test]
#[ignore = "crash gate: run explicitly via scripts/check.sh proc"]
fn proc_worker_crash_recovery_is_bit_identical() {
    let build = || {
        SpangleContext::builder()
            .executors(EXECUTORS)
            .backend(BackendKind::Proc)
            // Tight heartbeat so each SIGKILL is detected in ~100 ms.
            .heartbeat_interval(Duration::from_millis(25))
            .missed_heartbeat_limit(4)
            // Every reduce partition that trips over a dead worker's
            // buckets charges the per-job resubmission budget once per
            // recovery round; four kills over four chained shuffles need
            // far more than the default 16.
            .max_resubmissions(512)
            .max_task_attempts(8)
            .build()
    };

    let reference = reference_pagerank();
    {
        let clean_ctx = build();
        assert_eq!(clean_ctx.real_worker_slots(), EXECUTORS);
        assert_eq!(remote_pagerank(&clean_ctx), reference, "clean proc run");
    }

    let ctx = build();
    assert_eq!(ctx.real_worker_slots(), EXECUTORS);
    let before = ctx.metrics_snapshot();
    let graph = remote_source(&ctx, "pr.graph", vec![SEED, N_PAGES, PARTS as u64], PARTS);
    let mut ranks = remote_source(&ctx, "pr.init", vec![N_PAGES, PARTS as u64], PARTS);
    let mut killed: Vec<(usize, u32)> = Vec::new();
    for it in 0..ITERS {
        ranks = remote_pagerank_step(&graph, &ranks, N_PAGES, PARTS);
        // SIGKILL a different worker each iteration, mid-materialisation:
        // the killer races the job on purpose.
        let victim = it % EXECUTORS;
        let pid_before = ctx.worker_pid(victim);
        let killer = {
            let ctx = ctx.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(3));
                ctx.sigkill_worker(victim)
            })
        };
        let mid = remote_collect_pairs(&ranks).unwrap();
        assert!(!mid.is_empty());
        if killer.join().unwrap() {
            killed.push((victim, pid_before.expect("victim had a process")));
        }
    }
    assert!(!killed.is_empty(), "at least one SIGKILL must land");

    // One more materialisation after the last kill so every death is
    // flushed through detection + replay, then the verdict.
    let survived = remote_collect_pairs(&ranks).unwrap();
    assert_eq!(survived, reference, "post-crash ranks are bit-identical");

    let delta_lost = ctx.metrics_snapshot().executors_lost - before.executors_lost;
    let delta_missed = ctx.metrics_snapshot().heartbeats_missed - before.heartbeats_missed;
    assert!(
        delta_lost >= 1,
        "the health plane must autonomously declare at least one executor \
         lost (got {delta_lost}) — this test never calls kill_executor"
    );
    assert!(
        delta_missed >= 1,
        "loss must come from missed socket heartbeats (got {delta_missed})"
    );
    // Every *detected* victim was reincarnated as a fresh OS process; the
    // dead incarnation (and every block it held) is gone with its pid.
    // Detection is lazy by design — a kill whose blocks no later task
    // needed may still be undiscovered (stats answers `None`), which is
    // fine: the delta assertions above prove the path fired.
    for (slot, old_pid) in killed {
        if let Some(stats) = ctx.worker_stats(slot) {
            if stats.epoch > 0 {
                assert_ne!(
                    stats.pid, old_pid as u64,
                    "slot {slot} must be served by a fresh process after the kill"
                );
            }
        }
    }
}
