//! Autonomous failure detection: no test here ever calls
//! `kill_executor`. The driver itself must notice trouble — a wedged
//! executor whose heartbeats went silent, a task whose progress counter
//! froze, a flaky executor failing too many recent tasks — and route
//! into the existing recovery paths (kill + lineage recompute,
//! speculation-style duplicate, quarantine + canary re-admission) with
//! results bit-identical to a clean run.
//!
//! Every chaos context pins `health_monitoring(true)` and its intervals
//! explicitly, so the suite keeps testing the layer even under the
//! `SPANGLE_DISABLE_HEALTH=1` CI matrix leg (builder calls win over the
//! environment).

use spangle_dataflow::{
    HashPartitioner, PairRdd, RetryBackoffConfig, SpangleContext, SpeculationConfig,
};
use spangle_testkit::{run_cases, Rng};
use std::sync::Arc;
use std::time::Duration;

/// Live threads of this process (Linux); used to prove nothing leaks.
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task")
        .map(|d| d.flatten().count())
        .unwrap_or(0)
}

/// Waits (bounded) for the process thread count to drop back to
/// `baseline`; detached threads need a moment to fully exit.
fn assert_threads_drain_to(baseline: usize) {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let now = thread_count();
        if now <= baseline {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "leaked threads: {now} live, baseline was {baseline}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Two-stage shuffle job: sum `records` by key over `num_parts`
/// partitions, sorted for bit-exact comparison.
fn sum_by_key(ctx: &SpangleContext, records: &[(u64, u64)], num_parts: usize) -> Vec<(u64, u64)> {
    let partitioner: Arc<HashPartitioner> = Arc::new(HashPartitioner::new(num_parts));
    let mut out = ctx
        .parallelize(records.to_vec(), num_parts)
        .reduce_by_key(partitioner, |a, b| a + b)
        .collect()
        .unwrap();
    out.sort();
    out
}

/// A wedged task on an executor whose heartbeats have gone silent is the
/// classic hard failure: the task spins forever, announces nothing, and
/// only the driver's heartbeat monitor can save the job. The monitor
/// must declare the executor lost after `missed_heartbeat_limit` silent
/// intervals, kill it, and recover through the PR 4 lineage path — with
/// the result bit-identical to a clean run and exactly one loss charged.
#[test]
fn wedged_silent_executor_is_detected_and_recovered_autonomously() {
    let baseline_threads = thread_count();
    run_cases(0x4EA1_7B0A, 4, |rng: &mut Rng| {
        let executors = rng.usize_in(2..5);
        // One partition per executor: every worker pops its own task
        // immediately, so the wedge always runs on the paused victim
        // rather than being stolen by an idle healthy sibling.
        let num_parts = executors;
        let num_keys = rng.u64_in(3..9);
        let records: Vec<(u64, u64)> = (0..rng.u64_in(20..60))
            .map(|_| (rng.u64_in(0..num_keys), rng.u64_in(0..1_000_000)))
            .collect();
        let victim = rng.usize_in(0..executors);

        let expected = sum_by_key(&SpangleContext::new(executors), &records, num_parts);

        let ctx = SpangleContext::builder()
            .executors(executors)
            .health_monitoring(true)
            .heartbeat_interval(Duration::from_millis(20))
            .missed_heartbeat_limit(3)
            // Keep the other detectors out of the race: the pause also
            // suppresses progress ticks, and this scenario must be
            // resolved by loss detection alone.
            .watchdog_interval(Duration::from_secs(30))
            .speculation(SpeculationConfig {
                enabled: false,
                ..SpeculationConfig::default()
            })
            .coalesce_partitions(false)
            .max_resubmissions(10_000)
            .build();
        let before = ctx.metrics_snapshot();

        // The victim's heartbeats go silent, then its map task wedges at
        // a cancellation point: busy forever, stamping nothing. With
        // `num_parts == executors`, partition index == home executor.
        // (Scoped: the RDD handles hold context clones and must drop
        // before the thread-drain check below.)
        let mut got = {
            ctx.failure_injector().pause_heartbeats(victim);
            let pairs = ctx.parallelize(records.clone(), num_parts);
            ctx.failure_injector().wedge_task(pairs.id(), victim, 1);
            let partitioner: Arc<HashPartitioner> = Arc::new(HashPartitioner::new(num_parts));
            pairs
                .reduce_by_key(partitioner, |a, b| a + b)
                .collect()
                .unwrap()
        };
        got.sort();
        assert_eq!(got, expected, "autonomous recovery must be bit-identical");

        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(
            delta.executors_lost, 1,
            "exactly one autonomous kill: {delta:?}"
        );
        assert!(
            delta.heartbeats_missed >= 3,
            "the loss fired after at least `missed_heartbeat_limit` silent intervals: {delta:?}"
        );
        // The kill consumed the wedge and reset the pause with the dead
        // incarnation — nothing armed may be left behind.
        assert!(ctx.failure_injector().is_drained());
        drop(ctx);
        assert_threads_drain_to(baseline_threads);
    });
}

/// A stalled task on an executor that still heartbeats is invisible to
/// loss detection — only the no-progress watchdog can catch it. The
/// frozen progress counter must trip the watchdog, launch a speculative
/// duplicate on another executor, and let first-completion-wins cancel
/// the stalled original, bit-identically and with exact counters.
#[test]
fn stalled_task_trips_the_watchdog_and_loses_to_its_duplicate() {
    let baseline_threads = thread_count();
    run_cases(0x57A1_1BAD, 4, |rng: &mut Rng| {
        let executors = rng.usize_in(2..5);
        let num_parts = executors;
        let num_keys = rng.u64_in(3..9);
        let records: Vec<(u64, u64)> = (0..rng.u64_in(20..60))
            .map(|_| (rng.u64_in(0..num_keys), rng.u64_in(0..1_000_000)))
            .collect();
        let stalled = rng.usize_in(0..num_parts);

        let expected = sum_by_key(&SpangleContext::new(executors), &records, num_parts);

        let ctx = SpangleContext::builder()
            .executors(executors)
            .health_monitoring(true)
            .watchdog_interval(Duration::from_millis(50))
            // The PR 7 median-based scan is off: the duplicate below can
            // only come from the watchdog.
            .speculation(SpeculationConfig {
                enabled: false,
                ..SpeculationConfig::default()
            })
            .coalesce_partitions(false)
            .max_resubmissions(10_000)
            .build();
        let before = ctx.metrics_snapshot();

        // The stalled task spins while stamping heartbeats only: alive to
        // the loss monitor, frozen to the watchdog. (Scoped: the RDD
        // handles hold context clones and must drop before the
        // thread-drain check below.)
        let mut got = {
            let pairs = ctx.parallelize(records.clone(), num_parts);
            ctx.failure_injector()
                .stall_progress(pairs.id(), stalled, 1);
            let partitioner: Arc<HashPartitioner> = Arc::new(HashPartitioner::new(num_parts));
            pairs
                .reduce_by_key(partitioner, |a, b| a + b)
                .collect()
                .unwrap()
        };
        got.sort();
        assert_eq!(got, expected, "the duplicate's win must be bit-identical");

        let delta = ctx.metrics_snapshot() - before;
        let report = ctx.last_job_report().expect("job report");
        assert_eq!(
            (
                report.watchdog_trips(),
                report.tasks_speculated(),
                report.speculation_wins(),
                report.tasks_cancelled()
            ),
            (1, 1, 1, 1),
            "one trip, one duplicate, one win, one cancelled original: {report}"
        );
        assert_eq!(delta.watchdog_trips, 1);
        assert_eq!(delta.executors_lost, 0, "no kill: the executor was healthy");
        assert!(ctx.failure_injector().is_drained());
        drop(ctx);
        assert_threads_drain_to(baseline_threads);
    });
}

/// A seeded 30%-flaky executor must cross the quarantine threshold while
/// every job still completes correctly (failures retry with backoff,
/// placement diverts once drained), and after the fault is healed the
/// probation canary must re-admit it to full placement.
#[test]
fn flaky_executor_is_quarantined_and_rejoins_through_a_canary() {
    let baseline_threads = thread_count();
    let executors = 3;
    let num_parts = 6;
    let victim = 1;
    let records: Vec<(u64, u64)> = (0..40u64).map(|i| (i % 5, i * 7919)).collect();

    let expected = sum_by_key(&SpangleContext::new(executors), &records, num_parts);

    let ctx = SpangleContext::builder()
        .executors(executors)
        .health_monitoring(true)
        .quarantine_threshold(0.3)
        .quarantine_probation(Duration::from_millis(40))
        .retry_backoff(RetryBackoffConfig {
            enabled: true,
            ..RetryBackoffConfig::default()
        })
        .speculation(SpeculationConfig {
            enabled: false,
            ..SpeculationConfig::default()
        })
        .coalesce_partitions(false)
        .max_resubmissions(10_000)
        .build();
    let before = ctx.metrics_snapshot();
    ctx.failure_injector()
        .flaky_executor(victim, 0.3, 0xF1A4_5EED);

    // Run jobs until the driver's failure-rate window benches the victim.
    // The draws are seeded, so the trip point is deterministic; the bound
    // only caps the loop if the implementation regresses.
    let mut quarantined = false;
    for _ in 0..60 {
        assert_eq!(
            sum_by_key(&ctx, &records, num_parts),
            expected,
            "every job through a flaky executor must still be exact"
        );
        if ctx.quarantined_executors().contains(&victim) {
            quarantined = true;
            break;
        }
    }
    assert!(
        quarantined,
        "a 30% failure rate must cross the 0.3 threshold"
    );
    let delta = ctx.metrics_snapshot() - before;
    assert!(delta.executors_quarantined >= 1, "{delta:?}");
    assert!(
        delta.backoff_nanos > 0,
        "every retry before the bench must have been backoff-delayed: {delta:?}"
    );
    assert_eq!(delta.executors_lost, 0, "quarantine drains, it never kills");

    // Heal the fault and keep offering work: once probation opens, the
    // canary task runs on the victim, succeeds, and restores it to full
    // placement.
    ctx.failure_injector().heal_executor(victim);
    let mut rejoined = false;
    for _ in 0..200 {
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(sum_by_key(&ctx, &records, num_parts), expected);
        if ctx.quarantined_executors().is_empty() {
            rejoined = true;
            break;
        }
    }
    assert!(rejoined, "a healed executor must rejoin through its canary");
    assert!(ctx.failure_injector().is_drained());
    drop(ctx);
    assert_threads_drain_to(baseline_threads);
}

/// The kill switch: with `health_monitoring(false)` (the builder twin of
/// `SPANGLE_DISABLE_HEALTH=1`) and backoff disabled, a paused-heartbeat
/// executor running a long quiet task is never declared lost, a flaky
/// executor is never quarantined, and every health counter stays zero —
/// announced-failures-only behavior, exactly as before this layer.
#[test]
fn disabled_health_restores_announced_failures_only() {
    let baseline_threads = thread_count();
    let executors = 2;

    let ctx = SpangleContext::builder()
        .executors(executors)
        .health_monitoring(false)
        // Thresholds aggressive enough that the enabled layer would trip
        // instantly — proving the switch, not the margins.
        .heartbeat_interval(Duration::from_millis(10))
        .missed_heartbeat_limit(1)
        .watchdog_interval(Duration::from_millis(20))
        .quarantine_threshold(0.2)
        .retry_backoff(RetryBackoffConfig {
            enabled: false,
            ..RetryBackoffConfig::default()
        })
        .speculation(SpeculationConfig {
            enabled: false,
            ..SpeculationConfig::default()
        })
        .coalesce_partitions(false)
        .max_resubmissions(10_000)
        .build();
    let before = ctx.metrics_snapshot();

    // Executor 0 goes silent while sleeping far past the loss threshold;
    // executor 1 coin-flips failures that would feed the quarantine
    // window. Neither detector may act.
    ctx.failure_injector().pause_heartbeats(0);
    ctx.failure_injector().flaky_executor(1, 0.5, 0xDEAD_BEEF);
    let got = ctx
        .parallelize(vec![0u64, 1], executors)
        .map(|v| {
            if v == 0 {
                std::thread::sleep(Duration::from_millis(120));
            }
            v * 10
        })
        .collect()
        .unwrap();
    let mut got = got;
    got.sort();
    assert_eq!(got, vec![0, 10]);

    let delta = ctx.metrics_snapshot() - before;
    assert_eq!(delta.executors_lost, 0, "no autonomous kill: {delta:?}");
    assert_eq!(delta.heartbeats_missed, 0);
    assert_eq!(delta.watchdog_trips, 0);
    assert_eq!(delta.tasks_speculated, 0);
    assert_eq!(delta.executors_quarantined, 0);
    assert_eq!(
        delta.backoff_nanos, 0,
        "disabled backoff retries immediately"
    );
    assert!(ctx.quarantined_executors().is_empty());

    ctx.failure_injector().resume_heartbeats(0);
    ctx.failure_injector().heal_executor(1);
    assert!(ctx.failure_injector().is_drained());
    drop(ctx);
    assert_threads_drain_to(baseline_threads);
}
