//! Iterative-workload tests: long lineage chains of shuffles, as produced
//! by PageRank-style loops, must schedule correctly and reuse completed
//! stages.

use spangle_dataflow::{HashPartitioner, PairRdd, Rdd, SpangleContext};
use std::sync::Arc;

#[test]
fn twenty_chained_shuffles_schedule_in_order() {
    let ctx = SpangleContext::new(2);
    let partitioner: Arc<HashPartitioner> = Arc::new(HashPartitioner::new(2));
    let mut current: Rdd<(u64, u64)> = ctx.parallelize((0u64..32).map(|i| (i % 4, 1)).collect(), 4);
    for _ in 0..20 {
        current = current
            .reduce_by_key(partitioner.clone(), |a, b| a + b)
            .map(|(k, v)| (k, v));
    }
    let mut out = current.collect().unwrap();
    out.sort();
    assert_eq!(out, vec![(0, 8), (1, 8), (2, 8), (3, 8)]);
}

#[test]
fn iterative_loop_with_persist_reuses_previous_iterations() {
    let ctx = SpangleContext::new(2);
    let partitioner: Arc<HashPartitioner> = Arc::new(HashPartitioner::new(2));
    let links = ctx
        .parallelize((0u64..16).map(|i| (i % 4, i)).collect(), 4)
        .partition_by(partitioner.clone());
    links.persist();
    links.count().unwrap();

    let mut ranks = ctx
        .parallelize((0u64..4).map(|k| (k, 1.0f64)).collect(), 2)
        .partition_by(partitioner.clone());
    for iteration in 0..5 {
        let joined = links.join(&ranks, partitioner.clone());
        ranks = joined
            .map(|(k, (_, r))| (k, r))
            .reduce_by_key(partitioner.clone(), |a, b| a + b);
        ranks.persist();
        let before = ctx.metrics_snapshot();
        let n = ranks.count().unwrap();
        assert_eq!(n, 4, "iteration {iteration}");
        // Running the same action again must skip every map stage.
        ranks.count().unwrap();
        let delta = ctx.metrics_snapshot() - before;
        assert!(
            delta.stages_skipped >= 1,
            "iteration {iteration}: expected stage reuse, got {delta:?}"
        );
    }
    let mut out = ranks.collect().unwrap();
    out.sort_by_key(|e| e.0);
    // Each key has 4 links; rank multiplies by 4 per iteration: 4^5.
    for (_, r) in out {
        assert_eq!(r, 1024.0);
    }
}

#[test]
fn diamond_lineage_over_a_copartitioned_parent_joins_locally() {
    // Asserts the shuffle-elision rewrite itself, so pin it on regardless
    // of SPANGLE_DISABLE_PLANNER.
    let ctx = SpangleContext::builder()
        .executors(2)
        .elide_shuffles(true)
        .build();
    let partitioner: Arc<HashPartitioner> = Arc::new(HashPartitioner::new(2));
    let base = ctx
        .parallelize((0u64..40).map(|i| (i % 5, i)).collect(), 4)
        .reduce_by_key(partitioner.clone(), |a, b| a + b);
    // Two branches off the same shuffled parent, rejoined on the *same*
    // partitioner: map_values preserves the partitioning, so the join is
    // narrow — only base's map stage and the result stage run.
    let left = base.map_values(|v| v * 2);
    let right = base.map_values(|v| v + 1);
    let rejoined = left.join(&right, partitioner);
    let before = ctx.metrics_snapshot();
    let out = rejoined.collect().unwrap();
    let delta = ctx.metrics_snapshot() - before;
    assert_eq!(out.len(), 5);
    for (k, (double, plus_one)) in out {
        // base[k] = k + (k+5) + ... + (k+35) = 8k + 140.
        assert_eq!(double, (8 * k + 140) * 2);
        assert_eq!(plus_one, 8 * k + 141);
    }
    assert_eq!(delta.stages_run, 2, "co-partitioned diamond: {delta:?}");
}

#[test]
fn diamond_lineage_with_a_different_partitioner_shuffles_both_branches() {
    let ctx = SpangleContext::new(2);
    let base = ctx
        .parallelize((0u64..40).map(|i| (i % 5, i)).collect(), 4)
        .reduce_by_key(Arc::new(HashPartitioner::new(2)), |a, b| a + b);
    let left = base.map_values(|v| v * 2);
    let right = base.map_values(|v| v + 1);
    // Joining on a *different* partition count forces both branches
    // through the shuffle, but the shared ancestor's map stage still runs
    // exactly once.
    let rejoined = left.join(&right, Arc::new(HashPartitioner::new(3)));
    let before = ctx.metrics_snapshot();
    let n = rejoined.count().unwrap();
    let delta = ctx.metrics_snapshot() - before;
    assert_eq!(n, 5);
    // base map (1) + left map (1) + right map (1) + result (1).
    assert_eq!(delta.stages_run, 4, "{delta:?}");
}
