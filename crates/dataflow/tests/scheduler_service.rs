//! Integration tests for the shared scheduler service: many concurrent
//! jobs multiplexed over one driver loop, job priorities, per-job
//! accounting, and clean teardown of aborted jobs.

use spangle_dataflow::{HashPartitioner, JobOutcome, PairRdd, SpangleContext};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn sorted<T: Ord>(mut v: Vec<T>) -> Vec<T> {
    v.sort();
    v
}

/// Threads of this process whose name matches the scheduler driver loop.
fn driver_threads() -> usize {
    std::fs::read_dir("/proc/self/task")
        .expect("procfs task dir")
        .filter(|entry| {
            let Ok(entry) = entry else { return false };
            std::fs::read_to_string(entry.path().join("comm"))
                .map(|comm| comm.trim() == "spangle-driver")
                .unwrap_or(false)
        })
        .count()
}

/// Many driver threads with mixed priorities share one scheduler loop:
/// every job computes the right answer, every job's report is recorded
/// with its own priority and its own busy/steal split, and the per-job
/// steal counts add up to the cluster-wide counter.
#[test]
fn mixed_priority_jobs_share_the_service_with_per_job_accounting() {
    let ctx = SpangleContext::new(4);
    let before = ctx.metrics_snapshot();
    // One job per thread, each with a distinct priority so its report can
    // be identified afterwards without racing on `last_job_report`.
    let priorities = [-1i32, 0, 3, 1, 5, -2];
    let handles: Vec<_> = priorities
        .iter()
        .enumerate()
        .map(|(i, &prio)| {
            let ctx = ctx.clone();
            std::thread::spawn(move || {
                ctx.run_with_priority(prio, || {
                    let modulus = (i as u64) + 2;
                    let rdd = ctx.parallelize((0u64..60).map(|x| (x % modulus, 1u64)).collect(), 4);
                    let reduced =
                        rdd.reduce_by_key(Arc::new(HashPartitioner::new(3)), |a, b| a + b);
                    let out = sorted(reduced.collect().unwrap());
                    let total: u64 = out.iter().map(|(_, v)| v).sum();
                    assert_eq!(total, 60, "job {i} lost records");
                    assert_eq!(out.len(), modulus as usize);
                })
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let delta = ctx.metrics_snapshot() - before;
    let reports = ctx.job_reports();
    assert_eq!(reports.len(), priorities.len(), "one report per job");

    for &prio in &priorities {
        let report = reports
            .iter()
            .find(|r| r.priority == prio)
            .unwrap_or_else(|| panic!("no report stamped with priority {prio}"));
        assert_eq!(report.outcome, JobOutcome::Succeeded);
        assert!(
            report.executor_busy_nanos.iter().sum::<u64>() > 0,
            "job {} must attribute busy time",
            report.job_id
        );
        assert_eq!(report.executor_busy_nanos.len(), 4);
    }
    // Per-job steal accounting partitions the cluster-wide counter.
    let stolen: usize = reports.iter().map(|r| r.tasks_stolen()).sum();
    assert_eq!(delta.tasks_stolen, stolen as u64);
    assert_eq!(delta.tasks_run, priorities.len() as u64 * (4 + 3));
}

/// Priority inversion check: with the lone executor wedged, a
/// high-priority job submitted *after* a low-priority one still runs
/// first, which shows up as a strictly smaller summed queue wait.
#[test]
fn high_priority_job_overtakes_queued_low_priority_work() {
    let ctx = SpangleContext::new(1);
    let gate = Arc::new(AtomicBool::new(false));

    // Wedge the single executor with a job that spins until released.
    let wedge = {
        let ctx = ctx.clone();
        let gate = gate.clone();
        std::thread::spawn(move || {
            let rdd = ctx.parallelize(vec![1u64], 1).map(move |x| {
                while !gate.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                x
            });
            rdd.count().unwrap();
        })
    };
    std::thread::sleep(Duration::from_millis(50));

    // Lower priority first, higher priority second: both queue behind
    // the wedge, so only the priority queue decides who runs first. The
    // reports are fetched by priority afterwards (the wedge job is 0).
    let low = {
        let ctx = ctx.clone();
        std::thread::spawn(move || {
            ctx.run_with_priority(1, || {
                let rdd = ctx.parallelize((0u64..20).collect(), 2);
                assert_eq!(rdd.count().unwrap(), 20);
            })
        })
    };
    std::thread::sleep(Duration::from_millis(50));
    let high = {
        let ctx = ctx.clone();
        std::thread::spawn(move || {
            ctx.run_with_priority(10, || {
                let rdd = ctx.parallelize((0u64..20).collect(), 2);
                assert_eq!(rdd.count().unwrap(), 20);
            })
        })
    };
    std::thread::sleep(Duration::from_millis(50));
    gate.store(true, Ordering::Release);

    wedge.join().unwrap();
    low.join().unwrap();
    high.join().unwrap();
    let reports = ctx.job_reports();
    let by_prio = |p: i32| {
        reports
            .iter()
            .find(|r| r.priority == p)
            .unwrap_or_else(|| panic!("no report with priority {p}"))
    };
    let (low, high) = (by_prio(1), by_prio(10));
    assert!(
        high.queue_wait_nanos < low.queue_wait_nanos,
        "priority 10 must leave the queue first: high waited {} ns, low waited {} ns",
        high.queue_wait_nanos,
        low.queue_wait_nanos
    );
}

/// The acceptance scenario in one piece: of two concurrent jobs over the
/// same shuffle, the one whose result stage is poisoned aborts — with a
/// `JobOutcome::Aborted` report of its own — while the healthy job
/// completes, and once the lineage is dropped no shuffle bytes stay
/// resident (the abort abandoned nothing it shouldn't have).
#[test]
fn aborted_and_healthy_jobs_coexist_and_clean_up() {
    let ctx = SpangleContext::builder()
        .executors(2)
        .max_task_attempts(2)
        .build();
    let base = ctx.parallelize((0u64..60).map(|i| (i % 6, 1u64)).collect(), 4);
    let reduced = base.reduce_by_key(Arc::new(HashPartitioner::new(3)), |a, b| a + b);
    // Poison one job's private result stage, not the shared map stage.
    let poisoned = reduced.map(|(k, v)| {
        assert!(k != 0, "poison key");
        (k, v)
    });

    let healthy = {
        let reduced = reduced.clone();
        std::thread::spawn(move || sorted(reduced.collect().unwrap()))
    };
    let doomed = {
        let poisoned = poisoned.clone();
        std::thread::spawn(move || poisoned.collect().unwrap_err())
    };
    let ok = healthy.join().unwrap();
    let err = doomed.join().unwrap();
    assert_eq!(ok, (0u64..6).map(|k| (k, 10u64)).collect::<Vec<_>>());

    let reports = ctx.job_reports();
    let aborted = reports
        .iter()
        .find(|r| r.job_id == err.job_id)
        .expect("the aborted job must record a report");
    assert_eq!(aborted.outcome, JobOutcome::Aborted);
    let succeeded = reports
        .iter()
        .filter(|r| r.outcome == JobOutcome::Succeeded)
        .count();
    assert_eq!(succeeded, 1, "the healthy job's report must coexist");

    // Dropping the lineage reclaims the shuffle; the abort left no
    // orphaned partial output behind.
    drop((base, reduced, poisoned));
    assert_eq!(ctx.shuffle_resident_bytes(), 0);
}

/// One driver loop per context, joined on drop: contexts don't leak their
/// service thread.
#[test]
fn dropping_the_context_joins_the_driver_loop() {
    let ctx = SpangleContext::new(2);
    // A completed job proves the driver loop ran (and, being scheduled,
    // has set its thread name — it may not have immediately after spawn).
    ctx.parallelize((0u64..10).collect(), 2).count().unwrap();
    assert!(driver_threads() >= 1, "the service thread is live");
    drop(ctx);
    // Other tests in this binary churn their own contexts concurrently,
    // so poll until every driver loop (ours included) is gone rather than
    // asserting a baseline-relative count once.
    let deadline = Instant::now() + Duration::from_secs(10);
    while driver_threads() > 0 {
        assert!(
            Instant::now() < deadline,
            "driver loop thread leaked past context drop"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}
