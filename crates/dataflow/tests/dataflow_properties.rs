//! Property tests: every shuffle operation agrees with a sequential
//! reference on arbitrary inputs.

use proptest::prelude::*;
use spangle_dataflow::{HashPartitioner, PairRdd, SpangleContext};
use std::collections::HashMap;
use std::sync::Arc;

fn sorted<T: Ord>(mut v: Vec<T>) -> Vec<T> {
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn collect_preserves_order_and_content(
        data in proptest::collection::vec(any::<i64>(), 0..300),
        parts in 1usize..9,
    ) {
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize(data.clone(), parts);
        prop_assert_eq!(rdd.collect().unwrap(), data.clone());
        prop_assert_eq!(rdd.count().unwrap(), data.len());
    }

    #[test]
    fn reduce_by_key_matches_hashmap_reference(
        pairs in proptest::collection::vec((0u64..20, -100i64..100), 0..300),
        parts in 1usize..7,
        reducers in 1usize..7,
    ) {
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize(pairs.clone(), parts);
        let got = sorted(
            rdd.reduce_by_key(Arc::new(HashPartitioner::new(reducers)), |a, b| a + b)
                .collect()
                .unwrap(),
        );
        let mut expected: HashMap<u64, i64> = HashMap::new();
        for (k, v) in pairs {
            *expected.entry(k).or_insert(0) += v;
        }
        prop_assert_eq!(got, sorted(expected.into_iter().collect()));
    }

    #[test]
    fn group_by_key_collects_exact_multisets(
        pairs in proptest::collection::vec((0u64..10, 0u32..50), 0..200),
        reducers in 1usize..5,
    ) {
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize(pairs.clone(), 3);
        let grouped = rdd
            .group_by_key(Arc::new(HashPartitioner::new(reducers)))
            .collect()
            .unwrap();
        let mut expected: HashMap<u64, Vec<u32>> = HashMap::new();
        for (k, v) in pairs {
            expected.entry(k).or_default().push(v);
        }
        prop_assert_eq!(grouped.len(), expected.len());
        for (k, vs) in grouped {
            prop_assert_eq!(
                sorted(vs),
                sorted(expected.remove(&k).expect("unexpected key"))
            );
        }
    }

    #[test]
    fn join_matches_nested_loop_reference(
        left in proptest::collection::vec((0u64..8, 0i32..100), 0..60),
        right in proptest::collection::vec((0u64..8, 0i32..100), 0..60),
    ) {
        let ctx = SpangleContext::new(2);
        let l = ctx.parallelize(left.clone(), 3);
        let r = ctx.parallelize(right.clone(), 2);
        let got = sorted(l.join(&r, Arc::new(HashPartitioner::new(3))).collect().unwrap());
        let mut expected = Vec::new();
        for (kl, vl) in &left {
            for (kr, vr) in &right {
                if kl == kr {
                    expected.push((*kl, (*vl, *vr)));
                }
            }
        }
        prop_assert_eq!(got, sorted(expected));
    }

    #[test]
    fn partition_by_is_a_permutation(
        pairs in proptest::collection::vec((0u64..1000, 0u8..255), 0..300),
        reducers in 1usize..6,
    ) {
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize(pairs.clone(), 4);
        let repartitioned = rdd.partition_by(Arc::new(HashPartitioner::new(reducers)));
        prop_assert_eq!(
            sorted(repartitioned.collect().unwrap()),
            sorted(pairs)
        );
        prop_assert_eq!(repartitioned.num_partitions(), reducers);
    }

    #[test]
    fn union_and_filter_compose_with_reference(
        a in proptest::collection::vec(-50i64..50, 0..100),
        b in proptest::collection::vec(-50i64..50, 0..100),
        threshold in -50i64..50,
    ) {
        let ctx = SpangleContext::new(2);
        let u = ctx
            .parallelize(a.clone(), 2)
            .union(&ctx.parallelize(b.clone(), 3))
            .filter(move |x| *x > threshold);
        let expected: Vec<i64> = a
            .into_iter()
            .chain(b)
            .filter(|x| *x > threshold)
            .collect();
        prop_assert_eq!(u.collect().unwrap(), expected);
    }

    #[test]
    fn aggregate_action_matches_fold(
        data in proptest::collection::vec(-1000i64..1000, 0..400),
        parts in 1usize..8,
    ) {
        let ctx = SpangleContext::new(3);
        let rdd = ctx.parallelize(data.clone(), parts);
        let (sum, count) = rdd
            .aggregate((0i64, 0usize), |(s, c), &x| (s + x, c + 1), |a, b| (a.0 + b.0, a.1 + b.1))
            .unwrap();
        prop_assert_eq!(sum, data.iter().sum::<i64>());
        prop_assert_eq!(count, data.len());
    }
}
