//! Property tests: every shuffle operation agrees with a sequential
//! reference on arbitrary inputs.

use spangle_dataflow::{HashPartitioner, PairRdd, SpangleContext};
use spangle_testkit::{run_cases, DEFAULT_CASES};
use std::collections::HashMap;
use std::sync::Arc;

fn sorted<T: Ord>(mut v: Vec<T>) -> Vec<T> {
    v.sort();
    v
}

#[test]
fn collect_preserves_order_and_content() {
    run_cases(0xDA7A_0001, DEFAULT_CASES, |rng| {
        let data = rng.vec_of(0..300, |r| r.next_u64() as i64);
        let parts = rng.usize_in(1..9);
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize(data.clone(), parts);
        assert_eq!(rdd.collect().unwrap(), data);
        assert_eq!(rdd.count().unwrap(), data.len());
    });
}

#[test]
fn reduce_by_key_matches_hashmap_reference() {
    run_cases(0xDA7A_0002, DEFAULT_CASES, |rng| {
        let pairs = rng.vec_of(0..300, |r| (r.u64_in(0..20), r.i64_in(-100..100)));
        let parts = rng.usize_in(1..7);
        let reducers = rng.usize_in(1..7);
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize(pairs.clone(), parts);
        let got = sorted(
            rdd.reduce_by_key(Arc::new(HashPartitioner::new(reducers)), |a, b| a + b)
                .collect()
                .unwrap(),
        );
        let mut expected: HashMap<u64, i64> = HashMap::new();
        for (k, v) in pairs {
            *expected.entry(k).or_insert(0) += v;
        }
        assert_eq!(got, sorted(expected.into_iter().collect()));
    });
}

#[test]
fn group_by_key_collects_exact_multisets() {
    run_cases(0xDA7A_0003, DEFAULT_CASES, |rng| {
        let pairs = rng.vec_of(0..200, |r| (r.u64_in(0..10), r.u32_in(0..50)));
        let reducers = rng.usize_in(1..5);
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize(pairs.clone(), 3);
        let grouped = rdd
            .group_by_key(Arc::new(HashPartitioner::new(reducers)))
            .collect()
            .unwrap();
        let mut expected: HashMap<u64, Vec<u32>> = HashMap::new();
        for (k, v) in pairs {
            expected.entry(k).or_default().push(v);
        }
        assert_eq!(grouped.len(), expected.len());
        for (k, vs) in grouped {
            assert_eq!(
                sorted(vs),
                sorted(expected.remove(&k).expect("unexpected key"))
            );
        }
    });
}

#[test]
fn join_matches_nested_loop_reference() {
    run_cases(0xDA7A_0004, DEFAULT_CASES, |rng| {
        let left = rng.vec_of(0..60, |r| (r.u64_in(0..8), r.i32_in(0..100)));
        let right = rng.vec_of(0..60, |r| (r.u64_in(0..8), r.i32_in(0..100)));
        let ctx = SpangleContext::new(2);
        let l = ctx.parallelize(left.clone(), 3);
        let r = ctx.parallelize(right.clone(), 2);
        let got = sorted(
            l.join(&r, Arc::new(HashPartitioner::new(3)))
                .collect()
                .unwrap(),
        );
        let mut expected = Vec::new();
        for (kl, vl) in &left {
            for (kr, vr) in &right {
                if kl == kr {
                    expected.push((*kl, (*vl, *vr)));
                }
            }
        }
        assert_eq!(got, sorted(expected));
    });
}

#[test]
fn partition_by_is_a_permutation() {
    run_cases(0xDA7A_0005, DEFAULT_CASES, |rng| {
        let pairs = rng.vec_of(0..300, |r| (r.u64_in(0..1000), r.u32_in(0..255) as u8));
        let reducers = rng.usize_in(1..6);
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize(pairs.clone(), 4);
        let repartitioned = rdd.partition_by(Arc::new(HashPartitioner::new(reducers)));
        assert_eq!(sorted(repartitioned.collect().unwrap()), sorted(pairs));
        assert_eq!(repartitioned.num_partitions(), reducers);
    });
}

#[test]
fn union_and_filter_compose_with_reference() {
    run_cases(0xDA7A_0006, DEFAULT_CASES, |rng| {
        let a = rng.vec_of(0..100, |r| r.i64_in(-50..50));
        let b = rng.vec_of(0..100, |r| r.i64_in(-50..50));
        let threshold = rng.i64_in(-50..50);
        let ctx = SpangleContext::new(2);
        let u = ctx
            .parallelize(a.clone(), 2)
            .union(&ctx.parallelize(b.clone(), 3))
            .filter(move |x| *x > threshold);
        let expected: Vec<i64> = a.into_iter().chain(b).filter(|x| *x > threshold).collect();
        assert_eq!(u.collect().unwrap(), expected);
    });
}

#[test]
fn aggregate_action_matches_fold() {
    run_cases(0xDA7A_0007, DEFAULT_CASES, |rng| {
        let data = rng.vec_of(0..400, |r| r.i64_in(-1000..1000));
        let parts = rng.usize_in(1..8);
        let ctx = SpangleContext::new(3);
        let rdd = ctx.parallelize(data.clone(), parts);
        let (sum, count) = rdd
            .aggregate(
                (0i64, 0usize),
                |(s, c), &x| (s + x, c + 1),
                |a, b| (a.0 + b.0, a.1 + b.1),
            )
            .unwrap();
        assert_eq!(sum, data.iter().sum::<i64>());
        assert_eq!(count, data.len());
    });
}
