//! Seeded executor-loss chaos test: a persisted, multi-round
//! PageRank-style job survives one executor kill per iteration with a
//! result identical to the no-failure run.
//!
//! Each kill discards every shuffle block and cached partition the victim
//! produced — across *all* live iterations — so recovery exercises the
//! whole fault-tolerance surface at once: cache misses recompute from
//! lineage, missing shuffle blocks surface as `FetchFailed`, map-stage
//! recovery rebuilds exactly the lost partitions (nesting through older
//! shuffles when a recovery task trips over another hole), and in-flight
//! attempts on the victim replay as `ExecutorLost`. Ranks use u64
//! fixed-point arithmetic so the answer is bit-identical however the
//! recovered merges reorder.
//!
//! Deliberately `#[ignore]`d: `scripts/check.sh stress` (a separate CI
//! job) runs it so its runtime does not slow the default gate.

use spangle_dataflow::{HashPartitioner, PairRdd, Rdd, SpangleContext};
use spangle_testkit::{run_cases, Rng};
use std::sync::Arc;

/// Live threads of this process (Linux); used to prove nothing leaks.
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task")
        .map(|d| d.flatten().count())
        .unwrap_or(0)
}

/// Waits (bounded) for the process thread count to drop back to
/// `baseline`; detached threads need a moment to fully exit.
fn assert_threads_drain_to(baseline: usize) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let now = thread_count();
        if now <= baseline {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "leaked threads: {now} live, baseline was {baseline}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

/// Fixed-point PageRank over `edges`, `iters` rounds. Calls `disrupt`
/// before each round's action — the chaos run kills executors there, the
/// reference run does nothing.
fn pagerank(
    ctx: &SpangleContext,
    edges: Vec<(u64, u64)>,
    num_parts: usize,
    iters: usize,
    mut disrupt: impl FnMut(&SpangleContext, usize),
) -> Vec<(u64, u64)> {
    let partitioner: Arc<HashPartitioner> = Arc::new(HashPartitioner::new(num_parts));
    let links = ctx
        .parallelize(edges, num_parts)
        .group_by_key(partitioner.clone());
    links.persist();
    links.count().unwrap();

    let nodes: Vec<u64> = {
        let mut n: Vec<u64> = links
            .collect()
            .unwrap()
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        n.sort();
        n
    };
    let mut ranks: Rdd<(u64, u64)> = ctx
        .parallelize(
            nodes.iter().map(|&k| (k, 1_000_000u64)).collect(),
            num_parts,
        )
        .partition_by(partitioner.clone());
    for iteration in 0..iters {
        disrupt(ctx, iteration);
        let contribs = links
            .join(&ranks, partitioner.clone())
            .flat_map(|(_, (dests, rank))| {
                let share = rank / dests.len() as u64;
                dests.into_iter().map(|d| (d, share)).collect()
            });
        ranks = contribs
            .reduce_by_key(partitioner.clone(), |a, b| a + b)
            .map_values(|incoming| 150_000 + incoming * 85 / 100);
        ranks.persist();
        ranks.count().unwrap();
    }
    let mut out = ranks.collect().unwrap();
    out.sort();
    out
}

#[test]
#[ignore = "stress gate: run explicitly via scripts/check.sh stress (separate CI job)"]
fn pagerank_survives_one_executor_kill_per_iteration() {
    let baseline_threads = thread_count();
    run_cases(0xC4A0_5CA5, 8, |rng: &mut Rng| {
        let executors = rng.usize_in(2..5);
        let num_parts = executors * rng.usize_in(1..3);
        let num_nodes = rng.u64_in(8..20);
        let iters = rng.usize_in(3..6);
        // A ring so every node has in- and out-edges, plus random chords.
        let mut edges: Vec<(u64, u64)> = (0..num_nodes).map(|i| (i, (i + 1) % num_nodes)).collect();
        for _ in 0..rng.usize_in(0..20) {
            let from = rng.u64_in(0..num_nodes);
            let to = rng.u64_in(0..num_nodes);
            edges.push((from, to));
        }

        // Reference: the same job on a failure-free cluster.
        let expected = {
            let ctx = SpangleContext::new(executors);
            pagerank(&ctx, edges.clone(), num_parts, iters, |_, _| {})
        };

        // Chaos: one executor dies per iteration — directly between
        // rounds, or armed to fire right after the victim's next task
        // body mid-round. The resubmission budget is raised because one
        // kill can poison every live iteration's shuffle at once, and
        // each parked fetch failure charges it.
        let kill_plan: Vec<(usize, bool)> = (0..iters)
            .map(|_| (rng.usize_in(0..executors), rng.usize_in(0..2) == 0))
            .collect();
        let ctx = SpangleContext::builder()
            .executors(executors)
            .max_resubmissions(10_000)
            .build();
        let before = ctx.metrics_snapshot();
        let got = pagerank(&ctx, edges, num_parts, iters, |ctx, iteration| {
            let (victim, mid_round) = kill_plan[iteration];
            if mid_round {
                // `num_parts` is a multiple of the executor count, so
                // every executor runs a task in the round's first stage
                // and the armed kill always fires.
                ctx.failure_injector().kill_executor_after(victim, 1);
            } else {
                ctx.kill_executor(victim);
            }
        });
        assert_eq!(got, expected, "recovered run must match the clean run");

        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(
            delta.executors_lost as usize, iters,
            "one kill per iteration: {delta:?}"
        );
        assert!(
            ctx.failure_injector().is_drained(),
            "every armed executor kill must have fired"
        );
        drop(ctx);
        assert_threads_drain_to(baseline_threads);
    });
}
