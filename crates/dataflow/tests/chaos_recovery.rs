//! Seeded executor-loss chaos test: a persisted, multi-round
//! PageRank-style job survives one executor kill per iteration with a
//! result identical to the no-failure run.
//!
//! Each kill discards every shuffle block and cached partition the victim
//! produced — across *all* live iterations — so recovery exercises the
//! whole fault-tolerance surface at once: cache misses recompute from
//! lineage, missing shuffle blocks surface as `FetchFailed`, map-stage
//! recovery rebuilds exactly the lost partitions (nesting through older
//! shuffles when a recovery task trips over another hole), and in-flight
//! attempts on the victim replay as `ExecutorLost`. Ranks use u64
//! fixed-point arithmetic so the answer is bit-identical however the
//! recovered merges reorder.
//!
//! Deliberately `#[ignore]`d: `scripts/check.sh stress` (a separate CI
//! job) runs it so its runtime does not slow the default gate.

use spangle_dataflow::{HashPartitioner, PairRdd, Rdd, SpangleContext, SpeculationConfig};
use spangle_testkit::{run_cases, Rng};
use std::sync::Arc;
use std::time::Duration;

mod gate;
use gate::{collect_bounded, count_bounded};

/// Live threads of this process (Linux); used to prove nothing leaks.
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task")
        .map(|d| d.flatten().count())
        .unwrap_or(0)
}

/// Waits (bounded) for the process thread count to drop back to
/// `baseline`; detached threads need a moment to fully exit.
fn assert_threads_drain_to(baseline: usize) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let now = thread_count();
        if now <= baseline {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "leaked threads: {now} live, baseline was {baseline}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

/// Fixed-point PageRank over `edges`, `iters` rounds. Calls `disrupt`
/// before each round's action — the chaos run kills executors there, the
/// reference run does nothing.
fn pagerank(
    ctx: &SpangleContext,
    edges: Vec<(u64, u64)>,
    num_parts: usize,
    iters: usize,
    mut disrupt: impl FnMut(&SpangleContext, usize),
) -> Vec<(u64, u64)> {
    let partitioner: Arc<HashPartitioner> = Arc::new(HashPartitioner::new(num_parts));
    let links = ctx
        .parallelize(edges, num_parts)
        .group_by_key(partitioner.clone());
    links.persist();
    count_bounded(&links, "links materialisation").unwrap();

    let nodes: Vec<u64> = {
        let mut n: Vec<u64> = collect_bounded(&links, "node discovery")
            .unwrap()
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        n.sort();
        n
    };
    let mut ranks: Rdd<(u64, u64)> = ctx
        .parallelize(
            nodes.iter().map(|&k| (k, 1_000_000u64)).collect(),
            num_parts,
        )
        .partition_by(partitioner.clone());
    for iteration in 0..iters {
        disrupt(ctx, iteration);
        let contribs = links
            .join(&ranks, partitioner.clone())
            .flat_map(|(_, (dests, rank))| {
                let share = rank / dests.len() as u64;
                dests.into_iter().map(|d| (d, share)).collect()
            });
        ranks = contribs
            .reduce_by_key(partitioner.clone(), |a, b| a + b)
            .map_values(|incoming| 150_000 + incoming * 85 / 100);
        ranks.persist();
        count_bounded(&ranks, "iteration ranks").unwrap();
    }
    let mut out = collect_bounded(&ranks, "final ranks").unwrap();
    out.sort();
    out
}

#[test]
#[ignore = "stress gate: run explicitly via scripts/check.sh stress (separate CI job)"]
fn pagerank_survives_one_executor_kill_per_iteration() {
    let baseline_threads = thread_count();
    run_cases(0xC4A0_5CA5, 8, |rng: &mut Rng| {
        let executors = rng.usize_in(2..5);
        let num_parts = executors * rng.usize_in(1..3);
        let num_nodes = rng.u64_in(8..20);
        let iters = rng.usize_in(3..6);
        // A ring so every node has in- and out-edges, plus random chords.
        let mut edges: Vec<(u64, u64)> = (0..num_nodes).map(|i| (i, (i + 1) % num_nodes)).collect();
        for _ in 0..rng.usize_in(0..20) {
            let from = rng.u64_in(0..num_nodes);
            let to = rng.u64_in(0..num_nodes);
            edges.push((from, to));
        }

        // Reference: the same job on a failure-free cluster.
        let expected = {
            let ctx = SpangleContext::new(executors);
            pagerank(&ctx, edges.clone(), num_parts, iters, |_, _| {})
        };

        // Chaos: one executor dies per iteration — directly between
        // rounds, or armed to fire right after the victim's next task
        // body mid-round. The resubmission budget is raised because one
        // kill can poison every live iteration's shuffle at once, and
        // each parked fetch failure charges it.
        let kill_plan: Vec<(usize, bool)> = (0..iters)
            .map(|_| (rng.usize_in(0..executors), rng.usize_in(0..2) == 0))
            .collect();
        let ctx = SpangleContext::builder()
            .executors(executors)
            .max_resubmissions(10_000)
            .build();
        let before = ctx.metrics_snapshot();
        let got = pagerank(&ctx, edges, num_parts, iters, |ctx, iteration| {
            let (victim, mid_round) = kill_plan[iteration];
            if mid_round {
                // `num_parts` is a multiple of the executor count, so
                // every executor runs a task in the round's first stage
                // and the armed kill always fires.
                ctx.failure_injector().kill_executor_after(victim, 1);
            } else {
                ctx.kill_executor(victim);
            }
        });
        assert_eq!(got, expected, "recovered run must match the clean run");

        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(
            delta.executors_lost as usize, iters,
            "one kill per iteration: {delta:?}"
        );
        assert!(
            ctx.failure_injector().is_drained(),
            "every armed executor kill must have fired"
        );
        drop(ctx);
        assert_threads_drain_to(baseline_threads);
    });
}

/// A context whose speculation fires regardless of the
/// `SPANGLE_DISABLE_SPECULATION` matrix flag, with a threshold low enough
/// for the stress gate but high enough that only a genuinely wedged task
/// (never one briefly parked in a queue) is duplicated.
fn speculating_ctx(executors: usize) -> SpangleContext {
    SpangleContext::builder()
        .executors(executors)
        .speculation(SpeculationConfig {
            enabled: true,
            multiplier: 3.0,
            min_runtime: Duration::from_millis(40),
        })
        // Coalesced task groups share one token and are never speculated;
        // keep every task a singleton so an armed wedge is always
        // eligible for a duplicate.
        .coalesce_partitions(false)
        // One kill can poison the whole shuffle (round 2), and every
        // parked fetch failure charges the resubmission budget.
        .max_resubmissions(10_000)
        .build()
}

/// Seeded straggler chaos: one wedged task per stage of a two-stage
/// shuffle job. The wedged original spins at a cancellation point until
/// the driver's speculative duplicate (which consumes no wedge) wins the
/// partition and the loser is cancelled. The result must be bit-identical
/// to a clean run and the speculation counters exact: one launch, one
/// win, one cancellation per wedge. A second round arms a concurrent
/// executor kill on top, where only bit-identicality is asserted — the
/// kill races the duplicate, so the counters legitimately vary.
#[test]
#[ignore = "stress gate: run explicitly via scripts/check.sh stress (separate CI job)"]
fn speculative_winners_are_bit_identical_with_exact_counters() {
    let baseline_threads = thread_count();
    run_cases(0x57A6_61E5, 6, |rng: &mut Rng| {
        let executors = rng.usize_in(2..4);
        let num_parts = executors * rng.usize_in(2..4);
        let num_keys = rng.u64_in(3..9);
        let records: Vec<(u64, u64)> = (0..rng.u64_in(30..80))
            .map(|_| (rng.u64_in(0..num_keys), rng.u64_in(0..1_000_000)))
            .collect();
        let partitioner: Arc<HashPartitioner> = Arc::new(HashPartitioner::new(num_parts));
        let wedge_map = rng.usize_in(0..num_parts);
        let wedge_reduce = rng.usize_in(0..num_parts);

        let run = |ctx: &SpangleContext, wedge_stages: usize, kill: Option<usize>| {
            let pairs = ctx.parallelize(records.clone(), num_parts);
            let reduced = pairs.reduce_by_key(partitioner.clone(), |a, b| a + b);
            if wedge_stages >= 1 {
                ctx.failure_injector().wedge_task(pairs.id(), wedge_map, 1);
            }
            if wedge_stages >= 2 {
                ctx.failure_injector()
                    .wedge_task(reduced.id(), wedge_reduce, 1);
            }
            if let Some(victim) = kill {
                ctx.failure_injector().kill_executor_after(victim, 1);
            }
            let mut out = collect_bounded(&reduced, "speculated reduce").unwrap();
            out.sort();
            out
        };

        let expected = run(&SpangleContext::new(executors), 0, None);

        // Round 1: one wedge per stage, no kills — exact counters.
        let ctx = speculating_ctx(executors);
        let before = ctx.metrics_snapshot();
        let got = run(&ctx, 2, None);
        assert_eq!(got, expected, "speculative winners must be bit-identical");
        let delta = ctx.metrics_snapshot() - before;
        let report = ctx.last_job_report().expect("job report");
        assert_eq!(
            (
                report.tasks_speculated(),
                report.speculation_wins(),
                report.tasks_cancelled()
            ),
            (2, 2, 2),
            "one launch, one win, one cancelled loser per wedged stage: {report}"
        );
        assert_eq!(delta.tasks_speculated, 2);
        assert_eq!(delta.speculation_wins, 2);
        assert_eq!(delta.tasks_cancelled, 2);
        assert!(ctx.failure_injector().is_drained());
        drop(ctx);

        // Round 2: a wedged map task racing a concurrent executor kill.
        // The kill may take the original, the duplicate, or a bystander —
        // any interleaving must still produce the clean answer. Only the
        // map stage is wedged: the kill can fetch-fail every non-wedged
        // reduce task, and a stage with no completed samples (rightly)
        // never speculates, so a reduce wedge could hang unresolved.
        let ctx = speculating_ctx(executors);
        let victim = rng.usize_in(0..executors);
        let got = run(&ctx, 1, Some(victim));
        assert_eq!(
            got, expected,
            "speculation under an executor kill must stay bit-identical"
        );
        assert!(ctx.failure_injector().is_drained());
        drop(ctx);
        assert_threads_drain_to(baseline_threads);
    });
}
