//! Integration tests for the scheduler's admission-control layer: queued
//! backpressure, priority shedding, per-priority queue bounds, the memory
//! high watermark, job deadlines (queued and running), and the capacity
//! tightening that follows an executor kill while its replacement warms
//! up.
//!
//! Determinism notes: jobs submitted from one thread reach the driver in
//! submission order (one FIFO channel), so "A saturates the scheduler,
//! then B arrives" needs no sleeps on the submission side — only A's
//! tasks sleep, to hold the slot while later submissions are routed.

use spangle_dataflow::{
    submit_job, HashPartitioner, JobHandle, JobOutcome, PairRdd, SpangleContext, SpeculationConfig,
    TaskError,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Submits a job over `parts` one-element partitions whose every task
/// sleeps `ms`; the results are the partition indices.
fn submit_sleepy(ctx: &SpangleContext, parts: usize, ms: u64) -> JobHandle<u64> {
    let rdd = ctx.parallelize((0..parts as u64).collect(), parts);
    submit_job(&rdd, move |_, data: Arc<Vec<u64>>| {
        std::thread::sleep(Duration::from_millis(ms));
        data.iter().sum()
    })
}

fn report_for(ctx: &SpangleContext, job_id: usize) -> spangle_dataflow::JobReport {
    ctx.job_reports()
        .into_iter()
        .find(|r| r.job_id == job_id)
        .expect("every resolved job records a report")
}

#[test]
fn saturated_scheduler_queues_jobs_and_releases_them() {
    let ctx = SpangleContext::builder()
        .executors(2)
        .max_concurrent_jobs(1)
        .build();
    let a = submit_sleepy(&ctx, 2, 80);
    let b = submit_sleepy(&ctx, 2, 0);
    let (a_id, b_id) = (a.job_id(), b.job_id());

    assert_eq!(b.wait().unwrap(), vec![0, 1]);
    assert_eq!(a.wait().unwrap(), vec![0, 1]);

    let ra = report_for(&ctx, a_id);
    let rb = report_for(&ctx, b_id);
    assert_eq!(ra.outcome, JobOutcome::Succeeded);
    assert_eq!(rb.outcome, JobOutcome::Succeeded);
    assert_eq!(ra.admission_wait_nanos, 0, "A found a free slot");
    assert!(rb.admission_wait_nanos > 0, "B was queued behind A: {rb:?}");

    let snap = ctx.metrics_snapshot();
    assert_eq!(snap.jobs_rejected, 0);
    assert_eq!(snap.jobs_deadlined, 0);
    assert!(snap.admission_queue_peak >= 1, "{snap:?}");
    assert!(snap.admission_queue_wait_nanos > 0, "{snap:?}");
}

#[test]
fn low_priority_jobs_are_shed_while_saturated() {
    let ctx = SpangleContext::builder()
        .executors(2)
        .max_concurrent_jobs(1)
        .shed_below_priority(0)
        .build();
    let a = submit_sleepy(&ctx, 2, 80);
    // Below the shed threshold while A holds the only slot: rejected.
    let b = ctx.run_with_priority(-1, || submit_sleepy(&ctx, 2, 0));
    // At the threshold: queued, not shed.
    let c = submit_sleepy(&ctx, 2, 0);
    let b_id = b.job_id();

    let err = b.wait().unwrap_err();
    assert!(matches!(err.last_error, TaskError::Rejected), "{err}");
    assert_eq!(c.wait().unwrap(), vec![0, 1]);
    assert_eq!(a.wait().unwrap(), vec![0, 1]);

    let rb = report_for(&ctx, b_id);
    assert_eq!(rb.outcome, JobOutcome::Rejected);
    assert_eq!(rb.priority, -1);
    assert!(rb.stages.is_empty(), "a shed job never runs a stage");
    assert_eq!(ctx.metrics_snapshot().jobs_rejected, 1);
}

#[test]
fn overflowing_the_per_priority_queue_bound_rejects_the_job() {
    let ctx = SpangleContext::builder()
        .executors(2)
        .max_concurrent_jobs(1)
        .max_queued_tasks_per_priority(2)
        .build();
    let a = submit_sleepy(&ctx, 2, 80);
    let b = submit_sleepy(&ctx, 2, 0); // 2 queued tasks: exactly at the bound
    let c = submit_sleepy(&ctx, 2, 0); // would make 4 > 2: rejected
    let c_id = c.job_id();

    let err = c.wait().unwrap_err();
    assert!(matches!(err.last_error, TaskError::Rejected), "{err}");
    assert_eq!(b.wait().unwrap(), vec![0, 1]);
    assert_eq!(a.wait().unwrap(), vec![0, 1]);

    assert_eq!(report_for(&ctx, c_id).outcome, JobOutcome::Rejected);
    let snap = ctx.metrics_snapshot();
    assert_eq!(snap.jobs_rejected, 1);
    assert_eq!(snap.admission_queue_peak, 1, "only B ever queued");
}

#[test]
fn memory_watermark_gates_admission_until_memory_frees() {
    let ctx = SpangleContext::builder()
        .executors(2)
        .memory_high_watermark_bytes(1)
        // Spilling would demote the cache to disk and defeat the gate this
        // test exercises: the queue-until-memory-frees fallback.
        .spill_to_disk(false)
        .build();
    // Materialise some cached bytes; the caching job itself is admitted
    // (memory was below the watermark when it was submitted).
    let cached = ctx.parallelize((0u64..100).collect(), 2).map(|x| x + 1);
    cached.persist();
    cached.count().unwrap();
    assert!(ctx.cached_bytes() > 0);

    let mut d = submit_sleepy(&ctx, 2, 0);
    let d_id = d.job_id();
    assert!(d.try_wait().is_none(), "still queued");
    assert!(
        d.wait_timeout(Duration::from_millis(50)).is_none(),
        "held at the watermark while the cache is resident"
    );

    // Freeing the memory happens outside the driver loop; the admission
    // poll must notice and release D without any further event.
    cached.unpersist();
    assert_eq!(
        d.wait_timeout(Duration::from_secs(5)).unwrap().unwrap(),
        vec![0, 1]
    );

    let rd = report_for(&ctx, d_id);
    assert_eq!(rd.outcome, JobOutcome::Succeeded);
    assert!(rd.admission_wait_nanos > 0, "{rd:?}");
    let snap = ctx.metrics_snapshot();
    assert_eq!(snap.partitions_evicted, 2, "unpersist dropped both blocks");
    assert!(snap.cache_highwater_bytes > 0, "{snap:?}");
    assert!(snap.memory_highwater_bytes > 0, "{snap:?}");
    assert_eq!(snap.jobs_rejected, 0);
}

#[test]
fn manual_evictions_are_counted() {
    let ctx = SpangleContext::new(2);
    let rdd = ctx.parallelize((0u64..10).collect(), 2);
    rdd.persist();
    assert_eq!(rdd.count().unwrap(), 10);

    let before = ctx.metrics_snapshot();
    assert!(ctx.evict_cached_partition(rdd.id(), 0));
    assert!(!ctx.evict_cached_partition(rdd.id(), 0), "already gone");
    rdd.unpersist();
    let delta = ctx.metrics_snapshot() - before;
    assert_eq!(
        delta.partitions_evicted, 2,
        "one manual eviction + one block left for unpersist"
    );
}

#[test]
fn deadline_expires_while_queued() {
    let ctx = SpangleContext::builder()
        .executors(1)
        .max_concurrent_jobs(1)
        .build();
    let before = ctx.metrics_snapshot();
    let a = submit_sleepy(&ctx, 1, 150);
    let b = ctx.run_with_deadline(Duration::from_millis(30), || submit_sleepy(&ctx, 1, 0));
    let b_id = b.job_id();

    let err = b.wait().unwrap_err();
    assert!(
        matches!(err.last_error, TaskError::DeadlineExceeded),
        "{err}"
    );
    assert_eq!(a.wait().unwrap(), vec![0]);

    let rb = report_for(&ctx, b_id);
    assert_eq!(rb.outcome, JobOutcome::Deadlined);
    assert!(rb.stages.is_empty(), "a queued-deadlined job never ran");
    let delta = ctx.metrics_snapshot() - before;
    assert_eq!(delta.jobs_deadlined, 1);
    assert_eq!(delta.tasks_run, 1, "only A's task ran");
}

/// The poll-boundary race: a queued job's deadline expires in the same
/// 5 ms admission-poll window as the capacity it was waiting for frees
/// up. The driver resolves both on the same iteration, and its order —
/// deadlines expire *before* the queue drains — must make the job
/// `Deadlined` without ever starting; an admit-then-expire interleaving
/// would run (and charge) a job whose caller was already told it missed.
/// The deadline sweep brackets the slot-free instant from well before to
/// well after, so some cases land inside the race window whichever way
/// the scheduler's timing drifts; whatever the outcome, a deadlined job
/// must have run zero stages and zero tasks.
#[test]
fn queued_deadline_racing_a_freed_slot_never_runs() {
    let hold_ms = 60;
    let mut deadlined = 0;
    let mut succeeded = 0;
    for deadline_ms in [10u64, 30, 50, 55, 58, 60, 62, 65, 70, 90, 150] {
        let ctx = SpangleContext::builder()
            .executors(1)
            .max_concurrent_jobs(1)
            .build();
        let before = ctx.metrics_snapshot();
        let a = submit_sleepy(&ctx, 1, hold_ms); // holds the only slot
        let b = ctx.run_with_deadline(Duration::from_millis(deadline_ms), || {
            submit_sleepy(&ctx, 1, 0)
        });
        let b_id = b.job_id();

        let b_result = b.wait();
        assert_eq!(a.wait().unwrap(), vec![0]);
        let rb = report_for(&ctx, b_id);
        let delta = ctx.metrics_snapshot() - before;
        match b_result {
            Err(err) => {
                assert!(
                    matches!(err.last_error, TaskError::DeadlineExceeded),
                    "{err}"
                );
                assert_eq!(rb.outcome, JobOutcome::Deadlined);
                assert!(
                    rb.stages.is_empty(),
                    "a queued-deadlined job must never have started: {rb:?}"
                );
                assert_eq!(
                    delta.tasks_run, 1,
                    "only A's task may have run (deadline {deadline_ms} ms): {delta:?}"
                );
                assert_eq!(delta.jobs_deadlined, 1);
                deadlined += 1;
            }
            Ok(results) => {
                assert_eq!(results, vec![0]);
                assert_eq!(rb.outcome, JobOutcome::Succeeded);
                assert_eq!(delta.tasks_run, 2);
                assert_eq!(delta.jobs_deadlined, 0);
                succeeded += 1;
            }
        }
    }
    // The sweep's extremes are unambiguous whatever the poll alignment:
    // a 10 ms deadline expires long before the 60 ms hold frees the
    // slot, and a 150 ms one leaves ample room to run.
    assert!(
        deadlined >= 1,
        "the short deadlines must expire while queued"
    );
    assert!(succeeded >= 1, "the long deadlines must admit and run");
}

#[test]
fn deadline_aborts_a_running_job_and_reclaims_its_shuffle() {
    let ctx = SpangleContext::new(2);
    let base = ctx.parallelize((0u64..40).map(|i| (i % 4, i)).collect(), 2);
    let slow = base.map(|kv| {
        std::thread::sleep(Duration::from_millis(250));
        kv
    });
    let reduced = slow.reduce_by_key(Arc::new(HashPartitioner::new(2)), |a, b| a + b);

    let started = Instant::now();
    let err = ctx
        .run_with_deadline(Duration::from_millis(40), || reduced.collect())
        .unwrap_err();
    assert!(
        matches!(err.last_error, TaskError::DeadlineExceeded),
        "{err}"
    );
    assert!(
        started.elapsed() < Duration::from_millis(200),
        "the abort must not wait for straggler map tasks"
    );
    let report = ctx.last_job_report().expect("deadlined job report");
    assert_eq!(report.outcome, JobOutcome::Deadlined);
    assert_eq!(ctx.metrics_snapshot().jobs_deadlined, 1);

    // Barrier: one task per executor, and single-entry queues are never
    // stolen, so each barrier task runs only after the straggler sleeping
    // on its executor has deposited (and been dropped or orphaned).
    ctx.parallelize(vec![0u64, 1], 2).count().unwrap();
    drop((reduced, slow, base));
    assert_eq!(
        ctx.shuffle_resident_bytes(),
        0,
        "a deadlined job may leave no shuffle bytes once its lineage drops"
    );
    assert_eq!(ctx.cached_bytes(), 0);
}

/// A deadline must preempt a *running* task body, not just refuse to wait
/// for it: the wedged task below never reaches a completion event, so
/// before cooperative cancellation the job could only resolve after the
/// body gave up on its own (here: never). The deadline abort cancels the
/// attempt's token and the wedge is interrupted at its next cancellation
/// point — within one chunk boundary.
#[test]
fn deadline_preempts_a_wedged_running_task_body() {
    // Speculation off: a clean duplicate of the wedged task would finish
    // the job before its deadline, which is exactly not what this test
    // is about.
    let ctx = SpangleContext::builder()
        .executors(2)
        .speculation(SpeculationConfig {
            enabled: false,
            ..SpeculationConfig::default()
        })
        .build();
    let base = ctx.parallelize((0u64..40).map(|i| (i % 4, i)).collect(), 2);
    let reduced = base.reduce_by_key(Arc::new(HashPartitioner::new(2)), |a, b| a + b);
    // Wedge one map task: it spins at a cancellation point in place of
    // its body and can only stop by being cancelled.
    ctx.failure_injector().wedge_task(base.id(), 0, 1);

    let started = Instant::now();
    let err = ctx
        .run_with_deadline(Duration::from_millis(40), || reduced.collect())
        .unwrap_err();
    assert!(
        matches!(err.last_error, TaskError::DeadlineExceeded),
        "{err}"
    );
    assert!(
        started.elapsed() < Duration::from_millis(500),
        "the deadline must not wait out the wedged body"
    );
    let report = ctx.last_job_report().expect("deadlined job report");
    assert_eq!(report.outcome, JobOutcome::Deadlined);
    assert!(
        ctx.failure_injector().is_drained(),
        "the wedge was consumed by the preempted attempt"
    );

    // Barrier over both executors: it can only complete this quickly if
    // the wedged body actually stopped spinning and freed its worker.
    let barrier_started = Instant::now();
    ctx.parallelize(vec![0u64, 1], 2).count().unwrap();
    assert!(
        barrier_started.elapsed() < Duration::from_millis(500),
        "cancelled wedge must have released its executor"
    );
    drop((reduced, base));
    assert_eq!(
        ctx.shuffle_resident_bytes(),
        0,
        "a preempted job may leave no resident shuffle bytes"
    );
}

#[test]
fn killed_executor_tightens_admission_capacity_until_replacement_warms() {
    let ctx = SpangleContext::builder()
        .executors(2)
        .max_concurrent_jobs(2)
        .build();
    // Healthy pool: two jobs run concurrently, neither is queued.
    let a1 = submit_sleepy(&ctx, 2, 60);
    let b1 = submit_sleepy(&ctx, 2, 60);
    let b1_id = b1.job_id();
    b1.wait().unwrap();
    a1.wait().unwrap();
    assert_eq!(report_for(&ctx, b1_id).admission_wait_nanos, 0);

    // One of two executors killed: capacity scales to 2 * 1/2 = 1 until
    // the replacement has completed its first task.
    ctx.kill_executor(0);
    let a2 = submit_sleepy(&ctx, 2, 60);
    let b2 = submit_sleepy(&ctx, 2, 0);
    let b2_id = b2.job_id();
    assert_eq!(b2.wait().unwrap(), vec![0, 1]);
    assert_eq!(a2.wait().unwrap(), vec![0, 1]);

    let rb2 = report_for(&ctx, b2_id);
    assert_eq!(rb2.outcome, JobOutcome::Succeeded);
    assert!(
        rb2.admission_wait_nanos > 0,
        "B2 had to wait out the warm-up window: {rb2:?}"
    );
    assert_eq!(ctx.metrics_snapshot().jobs_rejected, 0);
}

/// The acceptance scenario: all four overload responses in one run —
/// B *queued* (capacity tightened by a warming replacement), C *shed*
/// ([`JobOutcome::Rejected`]), D *deadlined* while queued — with exact
/// counter deltas and zero resident bytes for every non-completed job
/// (their shuffle lineages are kept alive, so a leak would stay visible).
#[test]
fn all_four_overload_responses_compose() {
    let ctx = SpangleContext::builder()
        .executors(2)
        .max_concurrent_jobs(2)
        .shed_below_priority(0)
        .build();
    let before = ctx.metrics_snapshot();
    // Degraded capacity: one warming replacement halves the two slots.
    ctx.kill_executor(0);

    // C and D get their own shuffle lineages; they stay alive to the end
    // so any bytes a rejected/deadlined job produced would stay resident.
    let make_shuffle = |tag: u64| {
        ctx.parallelize((0u64..40).map(move |i| (i % 4 + 100 * tag, i)).collect(), 2)
            .reduce_by_key(Arc::new(HashPartitioner::new(2)), |a, b| a + b)
    };
    let rc = make_shuffle(1);
    let rd = make_shuffle(2);

    let a = submit_sleepy(&ctx, 2, 150); // admitted into the single slot
    let b = submit_sleepy(&ctx, 2, 0); // queued: capacity is tightened
    let c = ctx.run_with_priority(-1, || {
        submit_job(&rc, |_, data: Arc<Vec<(u64, u64)>>| data.len())
    });
    let d = ctx.run_with_deadline(Duration::from_millis(30), || {
        submit_job(&rd, |_, data: Arc<Vec<(u64, u64)>>| data.len())
    });
    let (a_id, b_id, c_id, d_id) = (a.job_id(), b.job_id(), c.job_id(), d.job_id());

    let c_err = c.wait().unwrap_err();
    assert!(matches!(c_err.last_error, TaskError::Rejected), "{c_err}");
    let d_err = d.wait().unwrap_err();
    assert!(
        matches!(d_err.last_error, TaskError::DeadlineExceeded),
        "{d_err}"
    );
    assert_eq!(b.wait().unwrap(), vec![0, 1]);
    assert_eq!(a.wait().unwrap(), vec![0, 1]);

    assert_eq!(report_for(&ctx, a_id).outcome, JobOutcome::Succeeded);
    let rb = report_for(&ctx, b_id);
    assert_eq!(rb.outcome, JobOutcome::Succeeded);
    assert!(rb.admission_wait_nanos > 0, "{rb:?}");
    assert_eq!(report_for(&ctx, c_id).outcome, JobOutcome::Rejected);
    assert_eq!(report_for(&ctx, d_id).outcome, JobOutcome::Deadlined);

    let delta = ctx.metrics_snapshot() - before;
    assert_eq!(delta.jobs_rejected, 1, "exactly C was shed: {delta:?}");
    assert_eq!(delta.jobs_deadlined, 1, "exactly D deadlined: {delta:?}");
    assert!(delta.admission_queue_wait_nanos > 0);
    assert!(delta.admission_queue_peak >= 1);

    // rc and rd are still alive here: nothing of the shed or deadlined
    // jobs may be resident.
    assert_eq!(ctx.shuffle_resident_bytes(), 0);
    assert_eq!(ctx.cached_bytes(), 0);
}
