//! Tiered-store integration tests: jobs forced under an artificially low
//! memory watermark must complete by demoting cold blocks to the disk
//! tier and rehydrating them on fetch — never by shedding or aborting —
//! and the answers must be bit-identical to an unconstrained run.

use spangle_dataflow::{HashPartitioner, JobOutcome, PairRdd, SpangleContext, SpeculationConfig};
use spangle_testkit::{run_cases, Rng};
use std::sync::Arc;
use std::time::Duration;

/// A tight watermark that any of the jobs below crosses many times over,
/// yet comfortably above any single shuffle block so forward progress
/// never wedges on one unspillable deposit.
const LOW_WATERMARK: usize = 16 * 1024;

fn low_watermark_ctx(executors: usize) -> SpangleContext {
    SpangleContext::builder()
        .executors(executors)
        .memory_high_watermark_bytes(LOW_WATERMARK)
        .build()
}

/// Random keyed records, then a two-stage reduce + join pipeline: enough
/// shuffle traffic that the watermark forces spills on the map side and
/// rehydrates on the reduce side.
fn shuffle_pipeline(
    ctx: &SpangleContext,
    records: Vec<(u64, u64)>,
    num_parts: usize,
) -> Vec<(u64, (u64, u64))> {
    let partitioner: Arc<HashPartitioner> = Arc::new(HashPartitioner::new(num_parts));
    let pairs = ctx.parallelize(records, num_parts);
    let sums = pairs.reduce_by_key(partitioner.clone(), |a, b| a + b);
    let maxes = pairs.reduce_by_key(partitioner.clone(), |a, b| a.max(b));
    let mut out = sums.join(&maxes, partitioner).collect().unwrap();
    out.sort();
    out
}

#[test]
fn forced_low_watermark_completes_via_spill_bit_identically() {
    run_cases(0x5B11_71E5, 6, |rng: &mut Rng| {
        let executors = rng.usize_in(2..5);
        let num_parts = executors * rng.usize_in(1..3);
        // High key cardinality: map-side combine barely shrinks the data,
        // so the shuffle really carries tens of KiB past a 16 KiB watermark.
        let num_keys = rng.u64_in(2_000..4_000);
        let records: Vec<(u64, u64)> = (0..rng.u64_in(4_000..8_000))
            .map(|_| (rng.u64_in(0..num_keys), rng.u64_in(0..1_000_000)))
            .collect();

        let expected =
            shuffle_pipeline(&SpangleContext::new(executors), records.clone(), num_parts);

        let ctx = low_watermark_ctx(executors);
        let got = shuffle_pipeline(&ctx, records, num_parts);
        assert_eq!(got, expected, "spilled run must be bit-identical");

        let snap = ctx.metrics_snapshot();
        assert!(snap.blocks_spilled > 0, "watermark never tripped: {snap:?}");
        assert!(
            snap.blocks_rehydrated > 0,
            "reduce side never read the disk tier: {snap:?}"
        );
        assert!(snap.spill_bytes > 0, "{snap:?}");
        assert!(snap.disk_resident_bytes > 0, "{snap:?}");
        assert_eq!(
            snap.jobs_rejected, 0,
            "spill must pre-empt shedding: {snap:?}"
        );
        // The recorded peak is taken after each deposit's spill sweep;
        // concurrent depositors can overlap inside the sweep window, so
        // allow that bounded overshoot but nothing unbounded.
        assert!(
            snap.memory_highwater_bytes < 2 * LOW_WATERMARK as u64,
            "resident peak never contained by spilling: {snap:?}"
        );
        let report = ctx.last_job_report().expect("job report");
        assert_eq!(report.outcome, JobOutcome::Succeeded);
        assert_eq!(
            (
                report.blocks_spilled() > 0 || report.blocks_rehydrated() > 0,
                snap.blocks_spilled > 0
            ),
            (true, true),
            "spill activity must surface in per-stage reports: {report}"
        );

        // Dropping every lineage handle runs shuffle GC, which must empty
        // the disk tier — spill files do not outlive their shuffle.
        drop(got);
        drop(ctx.last_job_report());
        assert_eq!(
            {
                // The ctx itself holds no lineage; all RDD handles died at
                // the end of shuffle_pipeline.
                ctx.disk_resident_bytes()
            },
            0,
            "shuffle GC must delete spill files"
        );
    });
}

#[test]
fn cached_partitions_round_trip_through_the_disk_tier() {
    let ctx = low_watermark_ctx(2);
    let cached = ctx
        .parallelize((0u64..20_000).collect(), 4)
        .map(|x| x.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    cached.persist();
    let first = cached.collect().unwrap();

    // The materialised cache (~160 KiB) dwarfs the watermark, so most
    // partitions were demoted right after the put.
    let after_put = ctx.metrics_snapshot();
    assert!(after_put.blocks_spilled > 0, "{after_put:?}");
    assert!(ctx.cached_bytes() < LOW_WATERMARK + 4 * 1024);
    assert!(ctx.disk_resident_bytes() > 0);

    // A second action must serve every partition from the cache tiers —
    // rehydrating the spilled ones — and match exactly.
    let second = cached.collect().unwrap();
    assert_eq!(first, second, "rehydrated cache must be bit-identical");
    let delta = ctx.metrics_snapshot() - after_put;
    assert!(
        delta.blocks_rehydrated > 0,
        "second pass never touched the disk tier: {delta:?}"
    );
    assert_eq!(
        delta.recomputations, 0,
        "a spilled partition is a cache hit, not a lineage recompute: {delta:?}"
    );
    assert_eq!(delta.cache_misses, 0, "{delta:?}");

    cached.unpersist();
    assert_eq!(ctx.cached_bytes(), 0);
    assert_eq!(
        ctx.disk_resident_bytes(),
        0,
        "unpersist must clear both tiers"
    );
}

#[test]
fn spill_composes_with_executor_kills() {
    run_cases(0x5B11_0D1E, 4, |rng: &mut Rng| {
        let executors = rng.usize_in(2..4);
        let num_parts = executors * 2;
        let num_keys = rng.u64_in(1_000..2_000);
        let records: Vec<(u64, u64)> = (0..rng.u64_in(3_000..5_000))
            .map(|_| (rng.u64_in(0..num_keys), rng.u64_in(0..1_000_000)))
            .collect();
        let partitioner: Arc<HashPartitioner> = Arc::new(HashPartitioner::new(num_parts));
        let victim = rng.usize_in(0..executors);

        let run = |ctx: &SpangleContext, kill: bool| {
            let pairs = ctx.parallelize(records.clone(), num_parts);
            let sums = pairs.reduce_by_key(partitioner.clone(), |a, b| a + b);
            sums.persist();
            sums.count().unwrap();
            if kill {
                // The kill lands after the map outputs (some of them
                // spilled) are committed: recovery must discard the dead
                // incarnation's blocks in *both* tiers and recompute from
                // lineage, never rehydrate a stale spill file.
                ctx.kill_executor(victim);
            }
            let mut out = sums
                .join(
                    &pairs.reduce_by_key(partitioner.clone(), |a, b| a ^ b),
                    partitioner.clone(),
                )
                .collect()
                .unwrap();
            out.sort();
            out
        };

        let expected = run(&SpangleContext::new(executors), false);

        let ctx = SpangleContext::builder()
            .executors(executors)
            .memory_high_watermark_bytes(LOW_WATERMARK)
            .max_resubmissions(10_000)
            .build();
        let got = run(&ctx, true);
        assert_eq!(got, expected, "kill + spill recovery must be bit-identical");
        let snap = ctx.metrics_snapshot();
        assert!(snap.blocks_spilled > 0, "{snap:?}");
        assert_eq!(snap.executors_lost, 1, "{snap:?}");
        assert_eq!(snap.jobs_rejected, 0, "{snap:?}");
    });
}

#[test]
fn spill_speculation_and_kills_overlap_without_corruption() {
    run_cases(0x5B11_C405, 4, |rng: &mut Rng| {
        let executors = rng.usize_in(2..4);
        let num_parts = executors * 2;
        let num_keys = rng.u64_in(800..1_500);
        let records: Vec<(u64, u64)> = (0..rng.u64_in(2_000..3_000))
            .map(|_| (rng.u64_in(0..num_keys), rng.u64_in(0..1_000_000)))
            .collect();
        let partitioner: Arc<HashPartitioner> = Arc::new(HashPartitioner::new(num_parts));
        let wedge_part = rng.usize_in(0..num_parts);
        let victim = rng.usize_in(0..executors);

        let run = |ctx: &SpangleContext, chaos: bool| {
            let pairs = ctx.parallelize(records.clone(), num_parts);
            let reduced = pairs.reduce_by_key(partitioner.clone(), |a, b| a + b);
            if chaos {
                // One wedged map task (resolved by a speculative duplicate
                // whose commit must lose cleanly if the original already
                // won — or win and see its rival's spilled block ignored)
                // racing an armed executor kill.
                ctx.failure_injector().wedge_task(pairs.id(), wedge_part, 1);
                ctx.failure_injector().kill_executor_after(victim, 1);
            }
            let mut out = reduced.collect().unwrap();
            out.sort();
            out
        };

        let expected = run(&SpangleContext::new(executors), false);

        let ctx = SpangleContext::builder()
            .executors(executors)
            .memory_high_watermark_bytes(LOW_WATERMARK)
            .speculation(SpeculationConfig {
                enabled: true,
                multiplier: 3.0,
                min_runtime: Duration::from_millis(40),
            })
            .coalesce_partitions(false)
            .max_resubmissions(10_000)
            .build();
        let got = run(&ctx, true);
        assert_eq!(
            got, expected,
            "spill + speculation + kill must stay bit-identical"
        );
        assert!(ctx.failure_injector().is_drained());
        let snap = ctx.metrics_snapshot();
        assert!(snap.blocks_spilled > 0, "{snap:?}");
    });
}
