//! Seeded A/B equivalence tests for the adaptive plan layer: every
//! rewrite (narrow-chain fusion, shuffle elision, runtime partition
//! coalescing) must be *purely physical* — toggling it changes how a job
//! executes, never what it computes.
//!
//! The workload is shaped like the fig10/fig11 jobs: a narrow transform
//! chain (fusion candidate), a wide aggregation, an already-partitioned
//! re-aggregation and a co-partitioned join (elision candidates), and a
//! final stage over more partitions than executors (coalescing
//! candidate). All arithmetic is u64 wrapping/commutative, so any
//! execution plan — including one recovering from a mid-job executor
//! kill — must produce bit-identical sorted output.
//!
//! Every context here sets all four planner knobs explicitly, so the
//! comparisons hold regardless of the `SPANGLE_DISABLE_PLANNER`
//! environment (the lever `scripts/check.sh planoff` pulls).

use spangle_dataflow::{HashPartitioner, PairRdd, SpangleContext};
use spangle_testkit::{run_cases, Rng};
use std::sync::Arc;

/// Which rewrites a run enables; applied explicitly so the environment
/// default never leaks into a comparison.
#[derive(Clone, Copy)]
struct Flags {
    fuse: bool,
    elide: bool,
    coalesce: bool,
}

const ALL_ON: Flags = Flags {
    fuse: true,
    elide: true,
    coalesce: true,
};
const ALL_OFF: Flags = Flags {
    fuse: false,
    elide: false,
    coalesce: false,
};

fn cluster(executors: usize, flags: Flags) -> SpangleContext {
    SpangleContext::builder()
        .executors(executors)
        .fuse_narrow_chains(flags.fuse)
        .elide_shuffles(flags.elide)
        .coalesce_partitions(flags.coalesce)
        .max_resubmissions(10_000)
        .build()
}

/// The fig-shaped job. `disrupt` runs before each of the two actions —
/// the chaos test kills executors there, every other run does nothing.
fn workload(
    ctx: &SpangleContext,
    pairs: Vec<(u64, u64)>,
    num_parts: usize,
    mut disrupt: impl FnMut(&SpangleContext, usize),
) -> Vec<(u64, u64)> {
    let partitioner: Arc<HashPartitioner> = Arc::new(HashPartitioner::new(num_parts));
    // Narrow chain: map -> filter -> flat_map fuses into one streaming
    // task body when the rewrite is on.
    let refined = ctx
        .parallelize(pairs, num_parts)
        .map(|(k, v)| (k, v.wrapping_mul(0x9E37_79B9)))
        .filter(|(_, v)| v % 5 != 3)
        .flat_map(|(k, v)| vec![(k, v), (v % 64, k.wrapping_add(v))]);
    // The one unavoidable wide shuffle (commutative merge).
    let sums = refined.reduce_by_key(partitioner.clone(), |a, b| a.wrapping_add(b));
    sums.persist();
    disrupt(ctx, 0);
    sums.count().unwrap();
    // Already carries the target partitioner: elidable re-aggregation.
    let normalised = sums
        .map_values(|v| v | 1)
        .reduce_by_key(partitioner.clone(), |a, b| a ^ b);
    // Co-partitioned join: both sides elide their cogroup shuffles.
    let joined = normalised.join(&sums.map_values(|v| v >> 1), partitioner);
    disrupt(ctx, 1);
    let mut out = joined
        .map(|(k, (a, b))| (k, a.wrapping_mul(3).wrapping_add(b)))
        .collect()
        .unwrap();
    out.sort();
    out
}

fn seeded_pairs(rng: &mut Rng) -> (Vec<(u64, u64)>, usize, usize) {
    let executors = rng.usize_in(2..5);
    // More partitions than executors so runtime coalescing has buckets to
    // merge without dropping below one group per executor.
    let num_parts = executors * rng.usize_in(2..4);
    let num_pairs = rng.usize_in(50..200);
    let key_space = rng.u64_in(4..32);
    let pairs = (0..num_pairs)
        .map(|_| (rng.u64_in(0..key_space), rng.u64_in(0..1_000_000)))
        .collect();
    (pairs, num_parts, executors)
}

/// Runs the workload under `flags` and returns its sorted output.
fn run_with(
    flags: Flags,
    pairs: Vec<(u64, u64)>,
    num_parts: usize,
    executors: usize,
) -> Vec<(u64, u64)> {
    let ctx = cluster(executors, flags);
    workload(&ctx, pairs, num_parts, |_, _| {})
}

#[test]
fn narrow_chain_fusion_is_bit_identical() {
    run_cases(0xF05E_0001, 6, |rng: &mut Rng| {
        let (pairs, num_parts, executors) = seeded_pairs(rng);
        let off = run_with(ALL_OFF, pairs.clone(), num_parts, executors);
        let on = run_with(
            Flags {
                fuse: true,
                ..ALL_OFF
            },
            pairs,
            num_parts,
            executors,
        );
        assert_eq!(on, off, "fusion changed the computed result");
    });
}

#[test]
fn shuffle_elision_is_bit_identical() {
    run_cases(0xF05E_0002, 6, |rng: &mut Rng| {
        let (pairs, num_parts, executors) = seeded_pairs(rng);
        let off = run_with(ALL_OFF, pairs.clone(), num_parts, executors);
        let on = run_with(
            Flags {
                elide: true,
                ..ALL_OFF
            },
            pairs,
            num_parts,
            executors,
        );
        assert_eq!(on, off, "shuffle elision changed the computed result");
    });
}

#[test]
fn partition_coalescing_is_bit_identical() {
    run_cases(0xF05E_0003, 6, |rng: &mut Rng| {
        let (pairs, num_parts, executors) = seeded_pairs(rng);
        let off = run_with(ALL_OFF, pairs.clone(), num_parts, executors);
        // Also squeeze the byte target so grouping decisions vary across
        // cases instead of always collapsing to the executor floor.
        let ctx = SpangleContext::builder()
            .executors(executors)
            .fuse_narrow_chains(false)
            .elide_shuffles(false)
            .coalesce_partitions(true)
            .target_partition_bytes(rng.usize_in(1..10_000))
            .max_resubmissions(10_000)
            .build();
        let on = workload(&ctx, pairs, num_parts, |_, _| {});
        assert_eq!(on, off, "partition coalescing changed the computed result");
    });
}

#[test]
fn full_planner_matches_unoptimised_run_and_reports_rewrites() {
    run_cases(0xF05E_0004, 6, |rng: &mut Rng| {
        let (pairs, num_parts, executors) = seeded_pairs(rng);
        let off = run_with(ALL_OFF, pairs.clone(), num_parts, executors);

        let ctx = cluster(executors, ALL_ON);
        let before = ctx.metrics_snapshot();
        let on = workload(&ctx, pairs, num_parts, |_, _| {});
        assert_eq!(on, off, "the full planner changed the computed result");

        let delta = ctx.metrics_snapshot() - before;
        assert!(
            delta.stages_fused > 0,
            "the narrow chain must fuse: {delta:?}"
        );
        assert!(
            delta.shuffles_elided > 0,
            "the pre-partitioned aggregation and join must elide: {delta:?}"
        );
        assert!(
            delta.partitions_coalesced > 0,
            "small reduce buckets must coalesce: {delta:?}"
        );
    });
}

/// Recovery through the rewritten plan: an executor killed mid-job (its
/// shuffle blocks and cached partitions discarded with it) while fusion,
/// elision, and coalescing are all active must still reproduce the clean
/// unoptimised run bit-for-bit — proving fetch-failure recovery and
/// lineage recomputation survive fused task bodies and coalesced task
/// groups.
#[test]
fn executor_kill_mid_job_recovers_through_fused_and_coalesced_stages() {
    run_cases(0xF05E_C4A5, 6, |rng: &mut Rng| {
        let (pairs, num_parts, executors) = seeded_pairs(rng);
        let expected = run_with(ALL_OFF, pairs.clone(), num_parts, executors);

        let kill_plan: Vec<(usize, bool)> = (0..2)
            .map(|_| (rng.usize_in(0..executors), rng.usize_in(0..2) == 0))
            .collect();
        let ctx = cluster(executors, ALL_ON);
        let before = ctx.metrics_snapshot();
        let got = workload(&ctx, pairs, num_parts, |ctx, action| {
            let (victim, mid_job) = kill_plan[action];
            if mid_job {
                // num_parts is a multiple of the executor count, so every
                // executor runs work in the next action and the armed
                // kill always fires.
                ctx.failure_injector().kill_executor_after(victim, 1);
            } else {
                ctx.kill_executor(victim);
            }
        });
        assert_eq!(got, expected, "recovered run must match the clean run");
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(delta.executors_lost, 2, "one kill per action: {delta:?}");
        assert!(
            ctx.failure_injector().is_drained(),
            "every armed executor kill must have fired"
        );
    });
}
