//! Shared helpers for the `#[ignore]`d chaos/stress gates: every
//! blocking wait is bounded, so a wedged gate fails in minutes with the
//! job id attached instead of hanging the CI job until the runner's
//! global timeout reaps it with no diagnostics.
#![allow(dead_code)] // each gate crate uses a different subset

use spangle_dataflow::{submit_job, Data, JobError, JobHandle, Rdd};
use std::sync::Arc;
use std::time::Duration;

/// Generous ceiling — roughly two orders of magnitude above the worst
/// clean-run materialisation in any gate, so only a genuine wedge trips
/// it.
pub const GATE_DEADLINE: Duration = Duration::from_secs(120);

/// Bounded stand-in for `JobHandle::wait`.
pub fn wait_bounded<R: Send + 'static>(
    mut handle: JobHandle<R>,
    what: &str,
) -> Result<Vec<R>, JobError> {
    let job_id = handle.job_id();
    handle.wait_timeout(GATE_DEADLINE).unwrap_or_else(|| {
        panic!("job {job_id} ({what}) unresolved after {GATE_DEADLINE:?} — wedged gate")
    })
}

/// Bounded stand-in for `Rdd::collect`.
pub fn collect_bounded<T: Data>(rdd: &Rdd<T>, what: &str) -> Result<Vec<T>, JobError> {
    let handle = submit_job(rdd, |_, data: Arc<Vec<T>>| (*data).clone());
    Ok(wait_bounded(handle, what)?.into_iter().flatten().collect())
}

/// Bounded stand-in for `Rdd::count`.
pub fn count_bounded<T: Data>(rdd: &Rdd<T>, what: &str) -> Result<usize, JobError> {
    let handle = submit_job(rdd, |_, data: Arc<Vec<T>>| data.len());
    Ok(wait_bounded(handle, what)?.into_iter().sum())
}
