//! The worker-process side of the multi-process executor backend.
//!
//! A worker is one OS process owning the partition shards of one executor
//! slot. It connects back to the driver's Unix socket, announces itself
//! with a `Hello { slot, epoch }` frame, then serves requests from a
//! sequential frame loop: `Run` a named [`crate::ops`] operator (outputs
//! land in the worker's in-memory block store), `Get` a stored block's
//! bytes (the remote shuffle-fetch path), `Stats`, `Shutdown`. A separate
//! thread writes `Heartbeat` keepalives every half heartbeat interval —
//! those are the *only* liveness signal the driver has, so a `SIGKILL`ed
//! worker goes silent and is detected by missed heartbeats, exactly like
//! a dead executor process in a real cluster.
//!
//! The worker holds no lineage and no recovery logic: it is a dumb,
//! deterministic block holder. Everything it stores can be regenerated
//! bit-identically by re-running the same operators on a replacement
//! incarnation, which is what the driver's lineage replay does.

use crate::ops;
use crate::sync::Mutex;
use crate::wire::{self, BlockKey, BlockMeta, Frame, OpInput, ReplyBody, RequestBody, WireError};
use std::collections::HashMap;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What a worker process needs to come up: where to connect and who it is.
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// Path of the driver's Unix listener socket.
    pub socket: std::path::PathBuf,
    /// Executor slot this worker owns.
    pub slot: u64,
    /// Incarnation it was spawned for.
    pub epoch: u64,
    /// Keepalive spacing (already halved and clamped by the driver).
    pub heartbeat: Duration,
}

/// The worker's in-memory block store plus the op-progress counter its
/// heartbeats report.
struct WorkerState {
    epoch: u64,
    store: HashMap<BlockKey, Arc<Vec<u8>>>,
    op_progress: Arc<AtomicU64>,
}

impl WorkerState {
    fn meta(bytes: &[u8]) -> BlockMeta {
        BlockMeta {
            len: bytes.len() as u64,
            checksum: wire::fnv1a64(bytes),
        }
    }

    fn handle(&mut self, body: RequestBody) -> ReplyBody {
        match body {
            RequestBody::Run {
                op,
                args,
                inputs,
                out_keys,
            } => self.run(&op, &args, inputs, &out_keys),
            RequestBody::Get { key } => match self.store.get(&key) {
                Some(bytes) => ReplyBody::GetOk(bytes.as_ref().clone()),
                None => ReplyBody::NotFound,
            },
            RequestBody::Stats => ReplyBody::StatsOk {
                blocks: self.store.len() as u64,
                bytes: self.store.values().map(|b| b.len() as u64).sum(),
                epoch: self.epoch,
                pid: std::process::id() as u64,
            },
            RequestBody::Shutdown => ReplyBody::ShuttingDown,
        }
    }

    fn run(
        &mut self,
        op: &str,
        args: &[u8],
        inputs: Vec<OpInput>,
        out_keys: &[BlockKey],
    ) -> ReplyBody {
        // Idempotent replay: operators are deterministic, so outputs
        // already stored under every requested key *are* the recompute's
        // bytes — answer from the store. (A replayed narrow chain re-runs
        // its sources this way without duplicating work.)
        if !out_keys.is_empty() && out_keys.iter().all(|k| self.store.contains_key(k)) {
            let metas = out_keys
                .iter()
                .map(|k| Self::meta(&self.store[k]))
                .collect();
            return ReplyBody::RunOk(metas);
        }
        let mut resolved: Vec<Arc<Vec<u8>>> = Vec::with_capacity(inputs.len());
        for input in inputs {
            match input {
                OpInput::Inline(bytes) => resolved.push(Arc::new(bytes)),
                OpInput::Local(key) => match self.store.get(&key) {
                    Some(bytes) => resolved.push(Arc::clone(bytes)),
                    // A missing local input means the driver's view of
                    // this store is stale (e.g. it outlived a crash the
                    // driver has not noticed yet) — a task failure the
                    // driver retries with fresh placement, not a protocol
                    // error.
                    None => return ReplyBody::OpError(format!("missing local input {key:?}")),
                },
            }
        }
        let views: Vec<&[u8]> = resolved.iter().map(|b| b.as_slice()).collect();
        match ops::run_op(op, args, &views, &self.op_progress) {
            Ok(outputs) => {
                if outputs.len() != out_keys.len() {
                    return ReplyBody::OpError(format!(
                        "operator {op:?} produced {} outputs for {} keys",
                        outputs.len(),
                        out_keys.len()
                    ));
                }
                let metas = outputs.iter().map(|b| Self::meta(b)).collect();
                for (key, bytes) in out_keys.iter().zip(outputs) {
                    self.store.insert(*key, Arc::new(bytes));
                }
                ReplyBody::RunOk(metas)
            }
            Err(msg) => ReplyBody::OpError(msg),
        }
    }
}

/// Runs the worker until the driver shuts it down or the connection dies;
/// returns the process exit code. Called by the `spangle_worker` binary.
pub fn worker_main(cfg: &WorkerConfig) -> i32 {
    let stream = match UnixStream::connect(&cfg.socket) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("spangle_worker: connect {:?}: {e}", cfg.socket);
            return 1;
        }
    };
    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("spangle_worker: clone stream: {e}");
            return 1;
        }
    };
    let writer = Arc::new(Mutex::new(stream));
    if wire::write_frame(
        &mut *writer.lock(),
        &Frame::Hello {
            slot: cfg.slot,
            epoch: cfg.epoch,
        },
    )
    .is_err()
    {
        return 1;
    }

    let op_progress = Arc::new(AtomicU64::new(0));
    {
        // Keepalives ride their own thread so a long operator body cannot
        // silence the worker: heartbeat silence must mean the *process*
        // is gone. The thread exits with the process when a write fails
        // (driver gone) — no join needed.
        let writer = Arc::clone(&writer);
        let op_progress = Arc::clone(&op_progress);
        let interval = cfg.heartbeat;
        std::thread::spawn(move || {
            let mut beats = 0u64;
            loop {
                beats += 1;
                let frame = Frame::Heartbeat {
                    beats,
                    op_progress: op_progress.load(Ordering::Relaxed),
                };
                if wire::write_frame(&mut *writer.lock(), &frame).is_err() {
                    std::process::exit(0);
                }
                std::thread::sleep(interval);
            }
        });
    }

    let mut state = WorkerState {
        epoch: cfg.epoch,
        store: HashMap::new(),
        op_progress,
    };
    loop {
        match wire::read_frame(&mut reader) {
            Ok(Frame::Request { req_id, body }) => {
                let reply = state.handle(body);
                let is_shutdown = matches!(reply, ReplyBody::ShuttingDown);
                if wire::write_frame(
                    &mut *writer.lock(),
                    &Frame::Reply {
                        req_id,
                        body: reply,
                    },
                )
                .is_err()
                    || is_shutdown
                {
                    return 0;
                }
            }
            // Workers only expect requests; a stray frame is ignored so a
            // future protocol extension stays backwards-compatible.
            Ok(_) => {}
            // The driver closed the socket (context drop): exit quietly.
            Err(WireError::Eof) => return 0,
            Err(e) => {
                eprintln!("spangle_worker[{}]: {e}", cfg.slot);
                return 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_stores_outputs_and_replays_from_the_store() {
        let mut state = WorkerState {
            epoch: 3,
            store: HashMap::new(),
            op_progress: Arc::new(AtomicU64::new(0)),
        };
        let payload = crate::ops::encode_pairs(&[(1, 2)]);
        let run = RequestBody::Run {
            op: "test.echo".into(),
            args: vec![],
            inputs: vec![OpInput::Inline(payload.clone())],
            out_keys: vec![(9, 0)],
        };
        let ReplyBody::RunOk(metas) = state.handle(run.clone()) else {
            panic!("run must succeed");
        };
        assert_eq!(metas[0].len, payload.len() as u64);

        // The output is fetchable and the re-run answers from the store.
        let ReplyBody::GetOk(bytes) = state.handle(RequestBody::Get { key: (9, 0) }) else {
            panic!("stored block must be fetchable");
        };
        assert_eq!(bytes, payload);
        assert!(matches!(state.handle(run), ReplyBody::RunOk(m) if m == metas));

        let ReplyBody::StatsOk { blocks, epoch, .. } = state.handle(RequestBody::Stats) else {
            panic!("stats must answer");
        };
        assert_eq!((blocks, epoch), (1, 3));
        assert!(matches!(
            state.handle(RequestBody::Get { key: (9, 1) }),
            ReplyBody::NotFound
        ));
    }

    #[test]
    fn missing_local_inputs_and_op_failures_are_op_errors() {
        let mut state = WorkerState {
            epoch: 0,
            store: HashMap::new(),
            op_progress: Arc::new(AtomicU64::new(0)),
        };
        let missing = state.handle(RequestBody::Run {
            op: "test.echo".into(),
            args: vec![],
            inputs: vec![OpInput::Local((1, 1))],
            out_keys: vec![(2, 0)],
        });
        assert!(matches!(missing, ReplyBody::OpError(_)));
        let failed = state.handle(RequestBody::Run {
            op: "test.fail".into(),
            args: b"kaput".to_vec(),
            inputs: vec![],
            out_keys: vec![],
        });
        assert!(matches!(failed, ReplyBody::OpError(msg) if msg == "kaput"));
    }
}
