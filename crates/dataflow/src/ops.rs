//! The registry of named operators the multi-process backend executes.
//!
//! Worker processes cannot receive closures, so the remote data plane
//! ships *names*: an operator is a pure function over encoded byte blocks,
//! registered here under a stable string, and both the driver (in-process
//! backend, local fallback) and the worker binary resolve the same table.
//! Every operator is deterministic in its `(args, inputs)` — that is what
//! makes lineage replay after a worker death bit-identical: re-running the
//! same op on a fresh incarnation regenerates byte-for-byte the blocks the
//! dead process held.
//!
//! Encodings are the PR 8 spill primitives ([`put_len`] +
//! [`SpillCursor`]); the workhorse format is a *pair block*: a `u64` count
//! followed by `(u64, u64)` little-endian pairs. The registered families
//! cover the workloads the fig harnesses exercise: the fixed-point
//! PageRank loop (`pr.*`, the fig11 kernel) and sum-by-key aggregation
//! (`sum.*`), plus two tiny `test.*` ops for plumbing tests.

use crate::health::splitmix64;
use crate::memsize::{put_len, SpillCursor};
use std::sync::atomic::{AtomicU64, Ordering};

/// Signature of a registered operator: `(args, inputs, progress)` to
/// encoded output blocks, or a task-level error message. `progress` must
/// be ticked periodically by long loops — the worker's heartbeat carries
/// it to the driver's no-progress watchdog.
pub type OpFn = fn(&[u8], &[&[u8]], &AtomicU64) -> Result<Vec<Vec<u8>>, String>;

/// The operator table. A static slice (not a mutable global): the set of
/// named operators is part of the binary, exactly like the class path of
/// a real cluster.
pub static OPS: &[(&str, OpFn)] = &[
    ("pr.graph", op_pr_graph),
    ("pr.init", op_pr_init),
    ("pr.contrib", op_pr_contrib),
    ("pr.apply", op_pr_apply),
    ("sum.gen", op_sum_gen),
    ("sum.bucket", op_sum_bucket),
    ("sum.merge", op_sum_merge),
    ("test.echo", op_test_echo),
    ("test.fail", op_test_fail),
];

/// Resolves and runs the operator registered under `name`.
pub fn run_op(
    name: &str,
    args: &[u8],
    inputs: &[&[u8]],
    progress: &AtomicU64,
) -> Result<Vec<Vec<u8>>, String> {
    let op = OPS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, f)| *f)
        .ok_or_else(|| format!("unknown operator {name:?}"))?;
    op(args, inputs, progress)
}

/// Encodes `(u64, u64)` pairs as a count-prefixed little-endian block.
pub fn encode_pairs(pairs: &[(u64, u64)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + pairs.len() * 16);
    put_len(&mut out, pairs.len());
    for &(a, b) in pairs {
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&b.to_le_bytes());
    }
    out
}

/// Decodes a block written by [`encode_pairs`].
pub fn decode_pairs(block: &[u8]) -> Option<Vec<(u64, u64)>> {
    let mut cur = SpillCursor::new(block);
    let n = usize::try_from(cur.u64()?).ok()?;
    if cur.remaining() != n.checked_mul(16)? {
        return None;
    }
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        pairs.push((cur.u64()?, cur.u64()?));
    }
    Some(pairs)
}

fn args_u64s(args: &[u8], n: usize) -> Result<Vec<u64>, String> {
    let mut cur = SpillCursor::new(args);
    let mut vals = Vec::with_capacity(n);
    for _ in 0..n {
        vals.push(cur.u64().ok_or("short operator args")?);
    }
    if cur.remaining() != 0 {
        return Err("trailing operator args".into());
    }
    Ok(vals)
}

/// Packs `u64` operator arguments (the convention every registered op
/// uses).
pub fn pack_args(vals: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 8);
    for &v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn input<'a>(inputs: &[&'a [u8]], idx: usize) -> Result<&'a [u8], String> {
    inputs
        .get(idx)
        .copied()
        .ok_or_else(|| format!("missing operator input {idx}"))
}

fn pairs_input(inputs: &[&[u8]], idx: usize) -> Result<Vec<(u64, u64)>, String> {
    decode_pairs(input(inputs, idx)?).ok_or_else(|| format!("input {idx} is not a pair block"))
}

// The fixed-point PageRank family. Ranks are integers scaled by 1e6
// (initial rank 1_000_000) and the update is
// `new = 150_000 + incoming * 85 / 100` — the same arithmetic as the
// chaos-recovery gate, chosen because integer addition is commutative, so
// bucket merge order cannot perturb the result and bit-identical replay is
// provable rather than hoped for.

/// `pr.graph(seed, n_pages, parts, part) -> [adjacency]`: the out-edge
/// lists of the pages owned by `part` (`page % parts == part`), encoded as
/// `(page, dest)` pairs in ascending page order. Degrees and destinations
/// come from seeded `splitmix64`, so every replay of a partition
/// regenerates identical bytes.
fn op_pr_graph(
    args: &[u8],
    _inputs: &[&[u8]],
    progress: &AtomicU64,
) -> Result<Vec<Vec<u8>>, String> {
    let a = args_u64s(args, 4)?;
    let (seed, n_pages, parts, part) = (a[0], a[1], a[2], a[3]);
    if parts == 0 || part >= parts {
        return Err("pr.graph: bad partition args".into());
    }
    let mut edges = Vec::new();
    let mut page = part;
    while page < n_pages {
        let degree = 1 + splitmix64(seed ^ page.wrapping_mul(0x9E37)) % 3;
        for i in 0..degree {
            let dest = splitmix64(seed ^ page ^ (i + 1).wrapping_mul(0x1234_5678_9ABC)) % n_pages;
            edges.push((page, dest));
        }
        progress.fetch_add(1, Ordering::Relaxed);
        page += parts;
    }
    Ok(vec![encode_pairs(&edges)])
}

/// `pr.init(n_pages, parts, part) -> [ranks]`: every page of `part` at
/// the initial rank `1_000_000`.
fn op_pr_init(
    args: &[u8],
    _inputs: &[&[u8]],
    progress: &AtomicU64,
) -> Result<Vec<Vec<u8>>, String> {
    let a = args_u64s(args, 3)?;
    let (n_pages, parts, part) = (a[0], a[1], a[2]);
    if parts == 0 || part >= parts {
        return Err("pr.init: bad partition args".into());
    }
    let mut ranks = Vec::new();
    let mut page = part;
    while page < n_pages {
        ranks.push((page, 1_000_000));
        page += parts;
    }
    progress.fetch_add(1, Ordering::Relaxed);
    Ok(vec![encode_pairs(&ranks)])
}

/// `pr.contrib(parts; adjacency, ranks) -> [bucket_0 .. bucket_parts-1]`:
/// each page's rank is split evenly over its out-edges and the shares are
/// routed into per-destination-partition buckets (`dest % parts`).
fn op_pr_contrib(
    args: &[u8],
    inputs: &[&[u8]],
    progress: &AtomicU64,
) -> Result<Vec<Vec<u8>>, String> {
    let a = args_u64s(args, 1)?;
    let parts = a[0];
    if parts == 0 {
        return Err("pr.contrib: zero partitions".into());
    }
    let adjacency = pairs_input(inputs, 0)?;
    let ranks = pairs_input(inputs, 1)?;
    let rank_of: std::collections::HashMap<u64, u64> = ranks.into_iter().collect();
    // Count each page's out-degree first, then emit shares in input order.
    let mut degree: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for &(page, _) in &adjacency {
        *degree.entry(page).or_insert(0) += 1;
    }
    let mut buckets: Vec<Vec<(u64, u64)>> = vec![Vec::new(); parts as usize];
    for &(page, dest) in &adjacency {
        let rank = *rank_of.get(&page).ok_or("pr.contrib: rank missing")?;
        let share = rank / degree[&page];
        buckets[(dest % parts) as usize].push((dest, share));
        progress.fetch_add(1, Ordering::Relaxed);
    }
    Ok(buckets.into_iter().map(|b| encode_pairs(&b)).collect())
}

/// `pr.apply(n_pages, parts, part; bucket...) -> [ranks]`: sums the
/// incoming shares of every page owned by `part` across all buckets and
/// applies `new = 150_000 + incoming * 85 / 100`. Addition is commutative
/// over `u64`, so bucket arrival order cannot change the output.
fn op_pr_apply(
    args: &[u8],
    inputs: &[&[u8]],
    progress: &AtomicU64,
) -> Result<Vec<Vec<u8>>, String> {
    let a = args_u64s(args, 3)?;
    let (n_pages, parts, part) = (a[0], a[1], a[2]);
    if parts == 0 || part >= parts {
        return Err("pr.apply: bad partition args".into());
    }
    let mut incoming: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for idx in 0..inputs.len() {
        for (dest, share) in pairs_input(inputs, idx)? {
            if dest % parts != part {
                return Err("pr.apply: misrouted contribution".into());
            }
            *incoming.entry(dest).or_insert(0) += share;
            progress.fetch_add(1, Ordering::Relaxed);
        }
    }
    let mut ranks = Vec::new();
    let mut page = part;
    while page < n_pages {
        let sum = incoming.get(&page).copied().unwrap_or(0);
        ranks.push((page, 150_000 + sum * 85 / 100));
        page += parts;
    }
    Ok(vec![encode_pairs(&ranks)])
}

/// `sum.gen(seed, count, key_mod, part) -> [pairs]`: seeded `(key, value)`
/// pairs for one partition of a synthetic sum-by-key workload.
fn op_sum_gen(
    args: &[u8],
    _inputs: &[&[u8]],
    progress: &AtomicU64,
) -> Result<Vec<Vec<u8>>, String> {
    let a = args_u64s(args, 4)?;
    let (seed, count, key_mod, part) = (a[0], a[1], a[2].max(1), a[3]);
    let mut pairs = Vec::with_capacity(count as usize);
    for i in 0..count {
        let h = splitmix64(seed ^ (part << 32) ^ i);
        pairs.push((h % key_mod, h >> 32));
        progress.fetch_add(1, Ordering::Relaxed);
    }
    Ok(vec![encode_pairs(&pairs)])
}

/// `sum.bucket(parts; pairs) -> [bucket...]`: routes `(key, value)` pairs
/// into `key % parts` buckets.
fn op_sum_bucket(
    args: &[u8],
    inputs: &[&[u8]],
    progress: &AtomicU64,
) -> Result<Vec<Vec<u8>>, String> {
    let a = args_u64s(args, 1)?;
    let parts = a[0];
    if parts == 0 {
        return Err("sum.bucket: zero partitions".into());
    }
    let mut buckets: Vec<Vec<(u64, u64)>> = vec![Vec::new(); parts as usize];
    for (key, value) in pairs_input(inputs, 0)? {
        buckets[(key % parts) as usize].push((key, value));
        progress.fetch_add(1, Ordering::Relaxed);
    }
    Ok(buckets.into_iter().map(|b| encode_pairs(&b)).collect())
}

/// `sum.merge(; bucket...) -> [sums]`: wrapping per-key sums over every
/// input bucket, emitted in ascending key order.
fn op_sum_merge(
    _args: &[u8],
    inputs: &[&[u8]],
    progress: &AtomicU64,
) -> Result<Vec<Vec<u8>>, String> {
    let mut sums: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for idx in 0..inputs.len() {
        for (key, value) in pairs_input(inputs, idx)? {
            let slot = sums.entry(key).or_insert(0);
            *slot = slot.wrapping_add(value);
            progress.fetch_add(1, Ordering::Relaxed);
        }
    }
    Ok(vec![encode_pairs(
        &sums.into_iter().collect::<Vec<(u64, u64)>>(),
    )])
}

/// `test.echo(; block...)`: returns its inputs unchanged.
fn op_test_echo(
    _args: &[u8],
    inputs: &[&[u8]],
    _progress: &AtomicU64,
) -> Result<Vec<Vec<u8>>, String> {
    Ok(inputs.iter().map(|b| b.to_vec()).collect())
}

/// `test.fail(msg)`: always errors with its argument bytes as the message
/// — exercises the op-error (task failure, quarantine-eligible) path.
fn op_test_fail(
    args: &[u8],
    _inputs: &[&[u8]],
    _progress: &AtomicU64,
) -> Result<Vec<Vec<u8>>, String> {
    Err(String::from_utf8_lossy(args).into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(name: &str, args: &[u8], inputs: &[&[u8]]) -> Result<Vec<Vec<u8>>, String> {
        run_op(name, args, inputs, &AtomicU64::new(0))
    }

    #[test]
    fn pair_blocks_roundtrip_and_reject_garbage() {
        let pairs = vec![(1, 2), (3, 4), (u64::MAX, 0)];
        let block = encode_pairs(&pairs);
        assert_eq!(decode_pairs(&block).unwrap(), pairs);
        assert!(decode_pairs(&block[..block.len() - 1]).is_none(), "short");
        let mut long = block.clone();
        long.push(0);
        assert!(decode_pairs(&long).is_none(), "trailing bytes");
    }

    #[test]
    fn unknown_ops_and_op_errors_are_reported() {
        assert!(run("no.such.op", &[], &[]).unwrap_err().contains("unknown"));
        assert_eq!(run("test.fail", b"boom", &[]).unwrap_err(), "boom");
        let echoed = run("test.echo", &[], &[b"abc"]).unwrap();
        assert_eq!(echoed, vec![b"abc".to_vec()]);
    }

    #[test]
    fn pagerank_ops_are_deterministic_and_consistent() {
        let n_pages = 40u64;
        let parts = 4u64;
        let seed = 0xFEED;
        // Graph generation replays byte-identically.
        let g0 = run("pr.graph", &pack_args(&[seed, n_pages, parts, 1]), &[]).unwrap();
        let g1 = run("pr.graph", &pack_args(&[seed, n_pages, parts, 1]), &[]).unwrap();
        assert_eq!(g0, g1);

        // One full iteration: contrib routes every share to the right
        // bucket, apply re-ranks exactly the owned pages.
        let init = run("pr.init", &pack_args(&[n_pages, parts, 1]), &[]).unwrap();
        let buckets = run("pr.contrib", &pack_args(&[parts]), &[&g0[0], &init[0]]).unwrap();
        assert_eq!(buckets.len(), parts as usize);
        for (r, bucket) in buckets.iter().enumerate() {
            for (dest, _) in decode_pairs(bucket).unwrap() {
                assert_eq!(dest % parts, r as u64);
            }
        }
        let ranks = run("pr.apply", &pack_args(&[n_pages, parts, 2]), &[&buckets[2]]).unwrap();
        let decoded = decode_pairs(&ranks[0]).unwrap();
        assert_eq!(decoded.len(), 10, "40 pages over 4 partitions");
        for (page, rank) in decoded {
            assert_eq!(page % parts, 2);
            assert!(rank >= 150_000);
        }
    }

    #[test]
    fn sum_family_aggregates_by_key() {
        let gen = run("sum.gen", &pack_args(&[7, 100, 8, 0]), &[]).unwrap();
        let buckets = run("sum.bucket", &pack_args(&[2]), &[&gen[0]]).unwrap();
        let merged = run("sum.merge", &[], &[&buckets[0], &buckets[1]]).unwrap();
        let sums = decode_pairs(&merged[0]).unwrap();
        // Reference: aggregate the generated pairs directly.
        let mut want: std::collections::BTreeMap<u64, u64> = Default::default();
        for (k, v) in decode_pairs(&gen[0]).unwrap() {
            let slot = want.entry(k).or_insert(0);
            *slot = slot.wrapping_add(v);
        }
        assert_eq!(sums, want.into_iter().collect::<Vec<_>>());
    }
}
