//! Narrow transformations: computed in the same stage as their parent.

use super::{Dependency, Rdd, RddBase, RddNode};
use crate::executor::{cancellation_point, CancelGauge};
use crate::partitioner::PartitionerSig;
use crate::plan::PlanNodeInfo;
use crate::scheduler::TaskContext;
use crate::Data;
use std::sync::Arc;

/// Marker shared by the one-parent streaming operators below: the planner
/// may fuse chains of them into one task without intermediate
/// materialisation.
const FUSABLE: PlanNodeInfo = PlanNodeInfo {
    fusable: true,
    elided_shuffles: 0,
    persisted: false,
};

/// Element-wise `map`.
pub struct MapRdd<T: Data, U: Data> {
    base: RddBase,
    parent: Rdd<T>,
    f: Arc<dyn Fn(T) -> U + Send + Sync>,
}

impl<T: Data, U: Data> MapRdd<T, U> {
    pub(crate) fn create(parent: Rdd<T>, f: impl Fn(T) -> U + Send + Sync + 'static) -> Rdd<U> {
        Rdd::from_node(Arc::new(MapRdd {
            base: RddBase::new(parent.context()),
            parent,
            f: Arc::new(f),
        }))
    }
}

impl<T: Data, U: Data> RddNode<U> for MapRdd<T, U> {
    fn base(&self) -> &RddBase {
        &self.base
    }
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn dependencies(&self) -> Vec<Dependency> {
        vec![Dependency::Narrow(self.parent.lineage())]
    }
    fn compute(&self, split: usize, tc: &TaskContext) -> Vec<U> {
        self.parent
            .iterator(split, tc)
            .iter()
            .cloned()
            .map(|t| (self.f)(t))
            .collect()
    }
    fn compute_into(&self, split: usize, tc: &TaskContext, sink: &mut dyn FnMut(U)) {
        let mut gauge = CancelGauge::new();
        self.parent.stream(split, tc, &mut |t| {
            gauge.tick();
            sink((self.f)(t));
        });
    }
    fn plan_info(&self) -> PlanNodeInfo {
        FUSABLE
    }
}

/// Element-wise `filter`. Keeps the parent's partitioning: dropping
/// elements never moves the survivors.
pub struct FilterRdd<T: Data> {
    base: RddBase,
    parent: Rdd<T>,
    pred: Arc<dyn Fn(&T) -> bool + Send + Sync>,
}

impl<T: Data> FilterRdd<T> {
    pub(crate) fn create(
        parent: Rdd<T>,
        pred: impl Fn(&T) -> bool + Send + Sync + 'static,
    ) -> Rdd<T> {
        Rdd::from_node(Arc::new(FilterRdd {
            base: RddBase::new(parent.context()),
            parent,
            pred: Arc::new(pred),
        }))
    }
}

impl<T: Data> RddNode<T> for FilterRdd<T> {
    fn base(&self) -> &RddBase {
        &self.base
    }
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn dependencies(&self) -> Vec<Dependency> {
        vec![Dependency::Narrow(self.parent.lineage())]
    }
    fn compute(&self, split: usize, tc: &TaskContext) -> Vec<T> {
        self.parent
            .iterator(split, tc)
            .iter()
            .filter(|t| (self.pred)(t))
            .cloned()
            .collect()
    }
    fn compute_into(&self, split: usize, tc: &TaskContext, sink: &mut dyn FnMut(T)) {
        let mut gauge = CancelGauge::new();
        self.parent.stream(split, tc, &mut |t| {
            gauge.tick();
            if (self.pred)(&t) {
                sink(t);
            }
        });
    }
    fn partitioner_sig(&self) -> Option<PartitionerSig> {
        // Filtering keys out of a keyed dataset cannot move keys between
        // partitions, so the parent's partitioning survives.
        self.parent.partitioner_sig()
    }
    fn plan_info(&self) -> PlanNodeInfo {
        FUSABLE
    }
}

/// One-to-many `flat_map`.
pub struct FlatMapRdd<T: Data, U: Data> {
    base: RddBase,
    parent: Rdd<T>,
    f: Arc<dyn Fn(T) -> Vec<U> + Send + Sync>,
}

impl<T: Data, U: Data> FlatMapRdd<T, U> {
    pub(crate) fn create(
        parent: Rdd<T>,
        f: impl Fn(T) -> Vec<U> + Send + Sync + 'static,
    ) -> Rdd<U> {
        Rdd::from_node(Arc::new(FlatMapRdd {
            base: RddBase::new(parent.context()),
            parent,
            f: Arc::new(f),
        }))
    }
}

impl<T: Data, U: Data> RddNode<U> for FlatMapRdd<T, U> {
    fn base(&self) -> &RddBase {
        &self.base
    }
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn dependencies(&self) -> Vec<Dependency> {
        vec![Dependency::Narrow(self.parent.lineage())]
    }
    fn compute(&self, split: usize, tc: &TaskContext) -> Vec<U> {
        self.parent
            .iterator(split, tc)
            .iter()
            .cloned()
            .flat_map(|t| (self.f)(t))
            .collect()
    }
    fn compute_into(&self, split: usize, tc: &TaskContext, sink: &mut dyn FnMut(U)) {
        let mut gauge = CancelGauge::new();
        self.parent.stream(split, tc, &mut |t| {
            gauge.tick();
            for u in (self.f)(t) {
                sink(u);
            }
        });
    }
    fn plan_info(&self) -> PlanNodeInfo {
        FUSABLE
    }
}

/// Whole-partition transformation with the partition index.
pub struct MapPartitionsRdd<T: Data, U: Data> {
    base: RddBase,
    parent: Rdd<T>,
    #[allow(clippy::type_complexity)]
    f: Arc<dyn Fn(usize, &[T]) -> Vec<U> + Send + Sync>,
}

impl<T: Data, U: Data> MapPartitionsRdd<T, U> {
    pub(crate) fn create(
        parent: Rdd<T>,
        f: impl Fn(usize, &[T]) -> Vec<U> + Send + Sync + 'static,
    ) -> Rdd<U> {
        Rdd::from_node(Arc::new(MapPartitionsRdd {
            base: RddBase::new(parent.context()),
            parent,
            f: Arc::new(f),
        }))
    }
}

impl<T: Data, U: Data> RddNode<U> for MapPartitionsRdd<T, U> {
    fn base(&self) -> &RddBase {
        &self.base
    }
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn dependencies(&self) -> Vec<Dependency> {
        vec![Dependency::Narrow(self.parent.lineage())]
    }
    fn compute(&self, split: usize, tc: &TaskContext) -> Vec<U> {
        let data = self.parent.iterator(split, tc);
        cancellation_point();
        (self.f)(split, &data)
    }
    // compute_into keeps the default (drain `compute`): the operator's
    // `&[T]` contract forces its *input* to materialise, but the upstream
    // chain still fuses to a single buffer inside `parent.iterator`, and
    // downstream operators stream from this node's output.
    fn plan_info(&self) -> PlanNodeInfo {
        FUSABLE
    }
}

/// Concatenation of two datasets: child partitions `0..n` come from the
/// left parent, `n..n+m` from the right.
pub struct UnionRdd<T: Data> {
    base: RddBase,
    left: Rdd<T>,
    right: Rdd<T>,
}

impl<T: Data> UnionRdd<T> {
    pub(crate) fn create(left: Rdd<T>, right: Rdd<T>) -> Rdd<T> {
        Rdd::from_node(Arc::new(UnionRdd {
            base: RddBase::new(left.context()),
            left,
            right,
        }))
    }
}

impl<T: Data> RddNode<T> for UnionRdd<T> {
    fn base(&self) -> &RddBase {
        &self.base
    }
    fn num_partitions(&self) -> usize {
        self.left.num_partitions() + self.right.num_partitions()
    }
    fn dependencies(&self) -> Vec<Dependency> {
        vec![
            Dependency::Narrow(self.left.lineage()),
            Dependency::Narrow(self.right.lineage()),
        ]
    }
    fn compute(&self, split: usize, tc: &TaskContext) -> Vec<T> {
        let n = self.left.num_partitions();
        if split < n {
            (*self.left.iterator(split, tc)).clone()
        } else {
            (*self.right.iterator(split - n, tc)).clone()
        }
    }
    fn compute_into(&self, split: usize, tc: &TaskContext, sink: &mut dyn FnMut(T)) {
        let n = self.left.num_partitions();
        if split < n {
            self.left.stream(split, tc, sink);
        } else {
            self.right.stream(split - n, tc, sink);
        }
    }
    fn compute_arc(&self, split: usize, tc: &TaskContext) -> Arc<Vec<T>> {
        // Identity per partition: share the parent's block.
        let n = self.left.num_partitions();
        if split < n {
            self.left.iterator(split, tc)
        } else {
            self.right.iterator(split - n, tc)
        }
    }
}

/// Pairs equal-indexed partitions of two datasets — the narrow join that
/// the local-join optimisation (paper §VI-A) lowers matrix multiplication
/// to when both sides are co-partitioned.
pub struct ZipPartitionsRdd<T: Data, U: Data, O: Data> {
    base: RddBase,
    left: Rdd<T>,
    right: Rdd<U>,
    #[allow(clippy::type_complexity)]
    f: Arc<dyn Fn(&[T], &[U]) -> Vec<O> + Send + Sync>,
}

impl<T: Data, U: Data, O: Data> ZipPartitionsRdd<T, U, O> {
    pub(crate) fn create(
        left: Rdd<T>,
        right: Rdd<U>,
        f: impl Fn(&[T], &[U]) -> Vec<O> + Send + Sync + 'static,
    ) -> Rdd<O> {
        assert_eq!(
            left.num_partitions(),
            right.num_partitions(),
            "zip_partitions requires equal partition counts"
        );
        Rdd::from_node(Arc::new(ZipPartitionsRdd {
            base: RddBase::new(left.context()),
            left,
            right,
            f: Arc::new(f),
        }))
    }
}

impl<T: Data, U: Data, O: Data> RddNode<O> for ZipPartitionsRdd<T, U, O> {
    fn base(&self) -> &RddBase {
        &self.base
    }
    fn num_partitions(&self) -> usize {
        self.left.num_partitions()
    }
    fn dependencies(&self) -> Vec<Dependency> {
        vec![
            Dependency::Narrow(self.left.lineage()),
            Dependency::Narrow(self.right.lineage()),
        ]
    }
    fn compute(&self, split: usize, tc: &TaskContext) -> Vec<O> {
        let l = self.left.iterator(split, tc);
        let r = self.right.iterator(split, tc);
        cancellation_point();
        (self.f)(&l, &r)
    }
}

#[cfg(test)]
mod tests {
    use crate::SpangleContext;

    #[test]
    fn map_filter_flat_map_compose() {
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize((0u64..20).collect(), 4);
        let out = rdd
            .map(|x| x * 2)
            .filter(|x| x % 3 == 0)
            .flat_map(|x| vec![x, x + 1])
            .collect()
            .unwrap();
        let expected: Vec<u64> = (0u64..20)
            .map(|x| x * 2)
            .filter(|x| x % 3 == 0)
            .flat_map(|x| vec![x, x + 1])
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn map_partitions_with_index_sees_every_partition_once() {
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize((0u64..12).collect(), 3);
        let out = rdd
            .map_partitions_with_index(|idx, data| vec![(idx, data.len())])
            .collect()
            .unwrap();
        assert_eq!(out, vec![(0, 4), (1, 4), (2, 4)]);
    }

    #[test]
    fn union_concatenates_in_partition_order() {
        let ctx = SpangleContext::new(2);
        let a = ctx.parallelize(vec![1u64, 2], 1);
        let b = ctx.parallelize(vec![3u64, 4], 2);
        let u = a.union(&b);
        assert_eq!(u.num_partitions(), 3);
        assert_eq!(u.collect().unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn zip_partitions_pairs_equal_indices() {
        let ctx = SpangleContext::new(2);
        let a = ctx.parallelize((0u64..8).collect(), 4);
        let b = ctx.parallelize((100u64..108).collect(), 4);
        let z = a.zip_partitions(&b, |l, r| {
            l.iter().zip(r.iter()).map(|(&x, &y)| x + y).collect()
        });
        assert_eq!(
            z.collect().unwrap(),
            (0u64..8).map(|i| i + 100 + i).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "equal partition counts")]
    fn zip_partitions_rejects_mismatched_counts() {
        let ctx = SpangleContext::new(1);
        let a = ctx.parallelize(vec![1u64], 1);
        let b = ctx.parallelize(vec![1u64], 2);
        let _ = a.zip_partitions(&b, |_, _| Vec::<u64>::new());
    }

    #[test]
    fn reduce_and_aggregate_actions() {
        let ctx = SpangleContext::new(3);
        let rdd = ctx.parallelize((1u64..=100).collect(), 7);
        assert_eq!(rdd.reduce(|a, b| a + b).unwrap(), Some(5050));
        let sum = rdd
            .aggregate(0u64, |acc, &x| acc + x, |a, b| a + b)
            .unwrap();
        assert_eq!(sum, 5050);
        let empty = ctx.parallelize(Vec::<u64>::new(), 2);
        assert_eq!(empty.reduce(|a, b| a + b).unwrap(), None);
    }

    #[test]
    fn key_by_builds_pairs() {
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize(vec![10u64, 21, 32], 2);
        let pairs = rdd.key_by(|x| x % 10).collect().unwrap();
        assert_eq!(pairs, vec![(0, 10), (1, 21), (2, 32)]);
    }
}
