//! Pair-RDD operations: shuffles, joins and co-grouping.
//!
//! These are the wide operations that cut the lineage graph into stages.
//! The one deliberate deviation from vanilla Spark is first-class support
//! for *co-partitioned narrow joins*: when both sides of a
//! [`PairRdd::cogroup`] already carry the target partitioner's signature,
//! the shuffle is elided and the join runs inside one stage — exactly the
//! "local join" Spangle's matrix multiplication relies on (paper §VI-A).

use super::{Dependency, LineageNode, PassThroughRdd, Rdd, RddBase, RddNode};
use crate::executor::{cancellation_point, CancelGauge};
use crate::memsize::MemSize;
use crate::partitioner::{HashPartitioner, Partitioner, PartitionerSig};
use crate::plan::PlanNodeInfo;
use crate::scheduler::TaskContext;
use crate::shuffle::BlockId;
use crate::{Data, Key};
use std::collections::HashMap;
use std::sync::Arc;

/// Type-erased view of a shuffle dependency, used by the DAG scheduler to
/// build and run map stages without knowing key/value types.
pub trait ShuffleDepDyn: Send + Sync {
    /// Identity of the shuffle.
    fn shuffle_id(&self) -> usize;
    /// Number of map-side partitions.
    fn num_map_partitions(&self) -> usize;
    /// RDD id of the map-side parent (failure-injection site of the map
    /// tasks).
    fn parent_rdd_id(&self) -> usize;
    /// Type-erased lineage of the map-side parent.
    fn parent_lineage(&self) -> Arc<dyn LineageNode>;
    /// Runs one map task: computes parent partition `map_id`, routes its
    /// records into per-reduce buckets and writes them to the shuffle
    /// service.
    fn run_map_task(&self, map_id: usize, tc: &TaskContext);
}

/// A shuffle edge from a pair dataset to its re-partitioned child.
///
/// `route` encapsulates both the partitioner and the optional map-side
/// combine: given one partition's records it produces the per-reduce-bucket
/// outputs of type `(K, C)`.
pub struct ShuffleDependency<K: Key, V: Data, C: Data> {
    shuffle_id: usize,
    parent: Rdd<(K, V)>,
    num_reduce_partitions: usize,
    route: RouteFn<K, V, C>,
}

/// One map partition's records, delivered as a push stream: the route
/// calls the feed with a per-record sink. Records arrive by value straight
/// off the parent's (possibly fused) stream, so routing needs no input
/// buffer and no clone.
pub type RecordFeed<'a, K, V> = &'a mut dyn FnMut(&mut dyn FnMut((K, V)));

/// Map-side routing: one partition's record stream in, per-reduce-bucket
/// outputs out.
type RouteFn<K, V, C> =
    Arc<dyn for<'a> Fn(RecordFeed<'a, K, V>, usize) -> Vec<Vec<(K, C)>> + Send + Sync>;

impl<K: Key, V: Data> ShuffleDependency<K, V, V> {
    /// A plain shuffle: records are routed by `partitioner`, duplicates
    /// preserved, no combining.
    pub fn plain(parent: Rdd<(K, V)>, partitioner: Arc<dyn Partitioner<K>>) -> Arc<Self> {
        let shuffle_id = parent.context().new_shuffle_id();
        let num_reduce = partitioner.num_partitions();
        Arc::new(ShuffleDependency {
            shuffle_id,
            parent,
            num_reduce_partitions: num_reduce,
            route: Arc::new(move |feed: RecordFeed<K, V>, n| {
                let mut buckets: Vec<Vec<(K, V)>> = vec![Vec::new(); n];
                feed(&mut |(k, v)| {
                    buckets[partitioner.partition(&k)].push((k, v));
                });
                buckets
            }),
        })
    }
}

impl<K: Key, V: Data, C: Data> ShuffleDependency<K, V, C> {
    /// A combining shuffle: records are pre-aggregated per key on the map
    /// side (Spark's map-side combine), which is what keeps `reduce_by_key`
    /// network volume proportional to distinct keys rather than records.
    pub fn combining(
        parent: Rdd<(K, V)>,
        partitioner: Arc<dyn Partitioner<K>>,
        create: impl Fn(V) -> C + Send + Sync + 'static,
        merge_value: impl Fn(C, V) -> C + Send + Sync + 'static,
    ) -> Arc<Self> {
        let shuffle_id = parent.context().new_shuffle_id();
        let num_reduce = partitioner.num_partitions();
        Arc::new(ShuffleDependency {
            shuffle_id,
            parent,
            num_reduce_partitions: num_reduce,
            route: Arc::new(move |feed: RecordFeed<K, V>, n| {
                let mut buckets: Vec<HashMap<K, C>> = vec![HashMap::new(); n];
                feed(&mut |(k, v)| {
                    let bucket = &mut buckets[partitioner.partition(&k)];
                    match bucket.remove(&k) {
                        Some(c) => {
                            bucket.insert(k, merge_value(c, v));
                        }
                        None => {
                            bucket.insert(k, create(v));
                        }
                    }
                });
                buckets
                    .into_iter()
                    .map(|m| m.into_iter().collect())
                    .collect()
            }),
        })
    }

    fn context(&self) -> &crate::SpangleContext {
        self.parent.context()
    }
}

impl<K: Key, V: Data, C: Data> ShuffleDepDyn for ShuffleDependency<K, V, C> {
    fn shuffle_id(&self) -> usize {
        self.shuffle_id
    }

    fn num_map_partitions(&self) -> usize {
        self.parent.num_partitions()
    }

    fn parent_rdd_id(&self) -> usize {
        self.parent.id()
    }

    fn parent_lineage(&self) -> Arc<dyn LineageNode> {
        self.parent.lineage()
    }

    fn run_map_task(&self, map_id: usize, tc: &TaskContext) {
        let ctx = self.context().clone();
        let mut gauge = CancelGauge::new();
        let mut feed = |sink: &mut dyn FnMut((K, V))| {
            self.parent.stream(map_id, tc, &mut |record| {
                gauge.tick();
                sink(record);
            })
        };
        let buckets = (self.route)(&mut feed, self.num_reduce_partitions);
        cancellation_point();
        // All buckets land in one atomic commit (first-write-wins), so two
        // racing attempts of the same map task — original vs speculative
        // duplicate — can never interleave their output. An all-empty
        // commit still registers the map: the registry is how a
        // reduce-side fetch tells "empty bucket" from "output lost with
        // its executor".
        let deposits: Vec<_> = buckets
            .into_iter()
            .enumerate()
            .filter(|(_, bucket)| !bucket.is_empty())
            .map(|(reduce_id, bucket)| {
                let bytes = bucket.iter().map(MemSize::mem_size).sum();
                (reduce_id, bucket, bytes)
            })
            .collect();
        ctx.inner
            .shuffle
            .commit_map_output(&ctx, self.shuffle_id, map_id, deposits, tc.origin());
    }
}

impl<K: Key, V: Data, C: Data> Drop for ShuffleDependency<K, V, C> {
    fn drop(&mut self) {
        // Free the shuffle outputs when the last reader disappears so that
        // iterative jobs (20 PageRank rounds, hundreds of SGD steps) do not
        // accumulate dead blocks.
        self.context().inner.shuffle.remove_shuffle(self.shuffle_id);
    }
}

/// Where a shuffled dataset's records come from: the shuffle service
/// (wide), or — when the planner proved the parent already follows the
/// target partitioner — straight from the co-partitioned parent partition
/// (the elided-shuffle rewrite: no shuffle id, no blocks, no map stage).
enum ShuffleInput<K: Key, V: Data, C: Data> {
    Wide(Arc<ShuffleDependency<K, V, C>>),
    Elided {
        parent: Rdd<(K, V)>,
        create: Arc<dyn Fn(V) -> C + Send + Sync>,
        merge_value: Arc<dyn Fn(C, V) -> C + Send + Sync>,
    },
}

/// Reduce side of a shuffle. With `merge` set, equal keys are merged
/// (reduce/combine semantics); without it all routed pairs are concatenated
/// (`partition_by` semantics). Element order within a partition is
/// unspecified when merging.
pub struct ShuffledRdd<K: Key, V: Data, C: Data> {
    base: RddBase,
    input: ShuffleInput<K, V, C>,
    merge: Option<Arc<dyn Fn(C, C) -> C + Send + Sync>>,
    sig: PartitionerSig,
}

impl<K: Key, V: Data, C: Data> ShuffledRdd<K, V, C> {
    pub(crate) fn create(
        dep: Arc<ShuffleDependency<K, V, C>>,
        sig: PartitionerSig,
        merge: Option<Arc<dyn Fn(C, C) -> C + Send + Sync>>,
    ) -> Rdd<(K, C)> {
        let base = RddBase::new(dep.parent.context());
        Rdd::from_node(Arc::new(ShuffledRdd {
            base,
            input: ShuffleInput::Wide(dep),
            merge,
            sig,
        }))
    }

    /// The narrow form of a combining shuffle whose parent is already
    /// partitioned by `sig`: every record of reduce partition `i` is
    /// already in parent partition `i`, so the per-key combine runs
    /// locally and nothing touches the shuffle service.
    pub(crate) fn create_elided(
        parent: Rdd<(K, V)>,
        sig: PartitionerSig,
        create: Arc<dyn Fn(V) -> C + Send + Sync>,
        merge_value: Arc<dyn Fn(C, V) -> C + Send + Sync>,
    ) -> Rdd<(K, C)> {
        debug_assert_eq!(parent.partitioner_sig(), Some(sig));
        let base = RddBase::new(parent.context());
        Rdd::from_node(Arc::new(ShuffledRdd {
            base,
            input: ShuffleInput::Elided {
                parent,
                create,
                merge_value,
            },
            merge: None,
            sig,
        }))
    }
}

impl<K: Key, V: Data, C: Data> RddNode<(K, C)> for ShuffledRdd<K, V, C> {
    fn base(&self) -> &RddBase {
        &self.base
    }

    fn num_partitions(&self) -> usize {
        self.sig.num_partitions
    }

    fn dependencies(&self) -> Vec<Dependency> {
        match &self.input {
            ShuffleInput::Wide(dep) => vec![Dependency::Shuffle(dep.clone())],
            ShuffleInput::Elided { parent, .. } => vec![Dependency::Narrow(parent.lineage())],
        }
    }

    fn partitioner_sig(&self) -> Option<PartitionerSig> {
        Some(self.sig)
    }

    fn plan_info(&self) -> PlanNodeInfo {
        PlanNodeInfo {
            fusable: false,
            elided_shuffles: match self.input {
                ShuffleInput::Wide(_) => 0,
                ShuffleInput::Elided { .. } => 1,
            },
            persisted: false,
        }
    }

    fn compute(&self, split: usize, tc: &TaskContext) -> Vec<(K, C)> {
        let dep = match &self.input {
            ShuffleInput::Wide(dep) => dep,
            ShuffleInput::Elided {
                parent,
                create,
                merge_value,
            } => {
                // Per-key combine over the already co-located partition —
                // the map-side and reduce-side combines of the wide path
                // collapse into one local pass.
                let mut merged: HashMap<K, C> = HashMap::new();
                parent.stream(split, tc, &mut |(k, v)| match merged.remove(&k) {
                    Some(c) => {
                        merged.insert(k, merge_value(c, v));
                    }
                    None => {
                        merged.insert(k, create(v));
                    }
                });
                return merged.into_iter().collect();
            }
        };
        let ctx = dep.context().clone();
        // Zero-copy reads: `fetch_block` hands back the map side's block by
        // `Arc`; records are cloned one at a time into the output (or the
        // merge table) — the whole-vector deep copy per fetched block is
        // gone.
        match &self.merge {
            None => {
                let mut out: Vec<(K, C)> = Vec::new();
                for map_id in 0..dep.num_map_partitions() {
                    cancellation_point();
                    let block = ctx.inner.shuffle.fetch_block::<(K, C)>(
                        &ctx,
                        BlockId {
                            shuffle_id: dep.shuffle_id,
                            map_id,
                            reduce_id: split,
                        },
                    );
                    out.extend(block.iter().cloned());
                }
                out
            }
            Some(merge) => {
                let mut merged: HashMap<K, C> = HashMap::new();
                for map_id in 0..dep.num_map_partitions() {
                    cancellation_point();
                    let block = ctx.inner.shuffle.fetch_block::<(K, C)>(
                        &ctx,
                        BlockId {
                            shuffle_id: dep.shuffle_id,
                            map_id,
                            reduce_id: split,
                        },
                    );
                    for (k, c) in block.iter() {
                        match merged.remove(k) {
                            Some(existing) => {
                                merged.insert(k.clone(), merge(existing, c.clone()));
                            }
                            None => {
                                merged.insert(k.clone(), c.clone());
                            }
                        }
                    }
                }
                merged.into_iter().collect()
            }
        }
    }

    fn compute_into(&self, split: usize, tc: &TaskContext, sink: &mut dyn FnMut((K, C))) {
        // The concatenating wide path streams each fetched block straight
        // into the sink — no per-partition output vector at all when this
        // node heads a fused chain. Merging and elided paths need their
        // hash table anyway; they drain the materialising path.
        if let (ShuffleInput::Wide(dep), None) = (&self.input, &self.merge) {
            let ctx = dep.context().clone();
            for map_id in 0..dep.num_map_partitions() {
                cancellation_point();
                let block = ctx.inner.shuffle.fetch_block::<(K, C)>(
                    &ctx,
                    BlockId {
                        shuffle_id: dep.shuffle_id,
                        map_id,
                        reduce_id: split,
                    },
                );
                for pair in block.iter() {
                    sink(pair.clone());
                }
            }
            return;
        }
        for t in self.compute(split, tc) {
            sink(t);
        }
    }
}

/// One input of a co-group: either already co-partitioned (narrow, local)
/// or behind a shuffle.
enum CoSide<K: Key, V: Data> {
    Local(Rdd<(K, V)>),
    Shuffled(Arc<ShuffleDependency<K, V, V>>),
}

impl<K: Key, V: Data> CoSide<K, V> {
    /// Chooses this side's path. The narrow (local) rewrite fires when the
    /// side already carries the target partitioner's signature *and* the
    /// planner's shuffle-elision rewrite is enabled; with it disabled
    /// every side shuffles, which is the unoptimised A/B baseline.
    fn prepare(rdd: &Rdd<(K, V)>, partitioner: &Arc<dyn Partitioner<K>>) -> Self {
        if rdd.context().planner().elide_shuffles
            && rdd.partitioner_sig() == Some(partitioner.sig())
        {
            CoSide::Local(rdd.clone())
        } else {
            CoSide::Shuffled(ShuffleDependency::plain(rdd.clone(), partitioner.clone()))
        }
    }

    fn dependency(&self) -> Dependency {
        match self {
            CoSide::Local(rdd) => Dependency::Narrow(rdd.lineage()),
            CoSide::Shuffled(dep) => Dependency::Shuffle(dep.clone()),
        }
    }

    fn gather_each(&self, split: usize, tc: &TaskContext, sink: &mut dyn FnMut((K, V))) {
        match self {
            CoSide::Local(rdd) => rdd.stream(split, tc, sink),
            CoSide::Shuffled(dep) => {
                let ctx = dep.context().clone();
                for map_id in 0..dep.num_map_partitions() {
                    cancellation_point();
                    let block = ctx.inner.shuffle.fetch_block::<(K, V)>(
                        &ctx,
                        BlockId {
                            shuffle_id: dep.shuffle_id,
                            map_id,
                            reduce_id: split,
                        },
                    );
                    // Clone out of the shared block per record; the block
                    // itself is never copied.
                    for pair in block.iter() {
                        sink(pair.clone());
                    }
                }
            }
        }
    }
}

/// Co-grouping of two pair datasets on a shared partitioner. Each side
/// independently chooses the narrow (local) or shuffled path.
pub struct CoGroupedRdd<K: Key, V: Data, W: Data> {
    base: RddBase,
    left: CoSide<K, V>,
    right: CoSide<K, W>,
    sig: PartitionerSig,
}

/// Result shape of [`PairRdd::cogroup`]: per key, both sides' values.
pub type CoGrouped<K, V, W> = Rdd<(K, (Vec<V>, Vec<W>))>;

impl<K: Key, V: Data, W: Data> CoGroupedRdd<K, V, W> {
    pub(crate) fn create(
        left: &Rdd<(K, V)>,
        right: &Rdd<(K, W)>,
        partitioner: Arc<dyn Partitioner<K>>,
    ) -> CoGrouped<K, V, W> {
        let base = RddBase::new(left.context());
        Rdd::from_node(Arc::new(CoGroupedRdd {
            base,
            left: CoSide::prepare(left, &partitioner),
            right: CoSide::prepare(right, &partitioner),
            sig: partitioner.sig(),
        }))
    }
}

impl<K: Key, V: Data, W: Data> RddNode<(K, (Vec<V>, Vec<W>))> for CoGroupedRdd<K, V, W> {
    fn base(&self) -> &RddBase {
        &self.base
    }

    fn num_partitions(&self) -> usize {
        self.sig.num_partitions
    }

    fn dependencies(&self) -> Vec<Dependency> {
        vec![self.left.dependency(), self.right.dependency()]
    }

    fn partitioner_sig(&self) -> Option<PartitionerSig> {
        Some(self.sig)
    }

    fn plan_info(&self) -> PlanNodeInfo {
        let local_sides = [
            matches!(self.left, CoSide::Local(_)),
            matches!(self.right, CoSide::Local(_)),
        ]
        .iter()
        .filter(|&&local| local)
        .count();
        PlanNodeInfo {
            fusable: false,
            elided_shuffles: local_sides,
            persisted: false,
        }
    }

    fn compute(&self, split: usize, tc: &TaskContext) -> Vec<(K, (Vec<V>, Vec<W>))> {
        let mut groups: HashMap<K, (Vec<V>, Vec<W>)> = HashMap::new();
        self.left.gather_each(split, tc, &mut |(k, v)| {
            groups.entry(k).or_default().0.push(v);
        });
        self.right.gather_each(split, tc, &mut |(k, w)| {
            groups.entry(k).or_default().1.push(w);
        });
        groups.into_iter().collect()
    }
}

/// Key-value operations on `Rdd<(K, V)>`.
pub trait PairRdd<K: Key, V: Data> {
    /// Re-partitions by key, preserving duplicates.
    fn partition_by(&self, partitioner: Arc<dyn Partitioner<K>>) -> Rdd<(K, V)>;

    /// Merges all values of each key with `f`, combining map-side first.
    fn reduce_by_key(
        &self,
        partitioner: Arc<dyn Partitioner<K>>,
        f: impl Fn(V, V) -> V + Send + Sync + Clone + 'static,
    ) -> Rdd<(K, V)>;

    /// General combine: per-key accumulator of type `C`.
    fn combine_by_key<C: Data>(
        &self,
        partitioner: Arc<dyn Partitioner<K>>,
        create: impl Fn(V) -> C + Send + Sync + 'static,
        merge_value: impl Fn(C, V) -> C + Send + Sync + 'static,
        merge_combiners: impl Fn(C, C) -> C + Send + Sync + 'static,
    ) -> Rdd<(K, C)>;

    /// Groups all values of each key.
    fn group_by_key(&self, partitioner: Arc<dyn Partitioner<K>>) -> Rdd<(K, Vec<V>)>;

    /// Groups both datasets' values per key. Sides already partitioned by
    /// an equal partitioner are read locally without a shuffle.
    fn cogroup<W: Data>(
        &self,
        other: &Rdd<(K, W)>,
        partitioner: Arc<dyn Partitioner<K>>,
    ) -> CoGrouped<K, V, W>;

    /// Inner join: the cross product of both sides' values per key.
    fn join<W: Data>(
        &self,
        other: &Rdd<(K, W)>,
        partitioner: Arc<dyn Partitioner<K>>,
    ) -> Rdd<(K, (V, W))>;

    /// Transforms values, keeping keys and partitioning.
    fn map_values<U: Data>(&self, f: impl Fn(V) -> U + Send + Sync + 'static) -> Rdd<(K, U)>;

    /// Convenience `reduce_by_key` with a hash partitioner sized like the
    /// parent.
    fn reduce_by_key_hash(
        &self,
        f: impl Fn(V, V) -> V + Send + Sync + Clone + 'static,
    ) -> Rdd<(K, V)>;

    /// Collects into a `HashMap` (later duplicates of a key win).
    fn collect_as_map(&self) -> Result<HashMap<K, V>, crate::JobError>;
}

impl<K: Key, V: Data> PairRdd<K, V> for Rdd<(K, V)> {
    fn partition_by(&self, partitioner: Arc<dyn Partitioner<K>>) -> Rdd<(K, V)> {
        let sig = partitioner.sig();
        if self.context().planner().elide_shuffles && self.partitioner_sig() == Some(sig) {
            // Already laid out exactly this way: the shuffle is elided to
            // a zero-copy pass-through (marked so the planner counts it).
            return PassThroughRdd::create(self.clone(), sig, 1);
        }
        let dep = ShuffleDependency::plain(self.clone(), partitioner);
        ShuffledRdd::create(dep, sig, None)
    }

    fn reduce_by_key(
        &self,
        partitioner: Arc<dyn Partitioner<K>>,
        f: impl Fn(V, V) -> V + Send + Sync + Clone + 'static,
    ) -> Rdd<(K, V)> {
        let merge = f.clone();
        self.combine_by_key(partitioner, |v| v, f, merge)
    }

    fn combine_by_key<C: Data>(
        &self,
        partitioner: Arc<dyn Partitioner<K>>,
        create: impl Fn(V) -> C + Send + Sync + 'static,
        merge_value: impl Fn(C, V) -> C + Send + Sync + 'static,
        merge_combiners: impl Fn(C, C) -> C + Send + Sync + 'static,
    ) -> Rdd<(K, C)> {
        let sig = partitioner.sig();
        if self.context().planner().elide_shuffles && self.partitioner_sig() == Some(sig) {
            // Every record of each target partition is already local:
            // rewrite the wide edge to a narrow per-partition combine.
            // `merge_combiners` is unreachable on this path — at most one
            // combiner per key ever exists.
            return ShuffledRdd::create_elided(
                self.clone(),
                sig,
                Arc::new(create),
                Arc::new(merge_value),
            );
        }
        let dep = ShuffleDependency::combining(self.clone(), partitioner, create, merge_value);
        ShuffledRdd::create(dep, sig, Some(Arc::new(merge_combiners)))
    }

    fn group_by_key(&self, partitioner: Arc<dyn Partitioner<K>>) -> Rdd<(K, Vec<V>)> {
        self.combine_by_key(
            partitioner,
            |v| vec![v],
            |mut c, v| {
                c.push(v);
                c
            },
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
        )
    }

    fn cogroup<W: Data>(
        &self,
        other: &Rdd<(K, W)>,
        partitioner: Arc<dyn Partitioner<K>>,
    ) -> CoGrouped<K, V, W> {
        CoGroupedRdd::create(self, other, partitioner)
    }

    fn join<W: Data>(
        &self,
        other: &Rdd<(K, W)>,
        partitioner: Arc<dyn Partitioner<K>>,
    ) -> Rdd<(K, (V, W))> {
        self.cogroup(other, partitioner).flat_map(|(k, (vs, ws))| {
            let mut out = Vec::with_capacity(vs.len() * ws.len());
            for v in &vs {
                for w in &ws {
                    out.push((k.clone(), (v.clone(), w.clone())));
                }
            }
            out
        })
    }

    fn map_values<U: Data>(&self, f: impl Fn(V) -> U + Send + Sync + 'static) -> Rdd<(K, U)> {
        // map_values cannot move keys, so the partitioning survives; model
        // it with map_partitions to keep the signature.
        let sig = self.partitioner_sig();
        let mapped = self.map_partitions(move |data| {
            data.iter()
                .map(|(k, v)| (k.clone(), f(v.clone())))
                .collect()
        });
        match sig {
            Some(sig) => PassThroughRdd::create(mapped, sig, 0),
            None => mapped,
        }
    }

    fn reduce_by_key_hash(
        &self,
        f: impl Fn(V, V) -> V + Send + Sync + Clone + 'static,
    ) -> Rdd<(K, V)> {
        let n = self.num_partitions();
        self.reduce_by_key(Arc::new(HashPartitioner::new(n)), f)
    }

    fn collect_as_map(&self) -> Result<HashMap<K, V>, crate::JobError> {
        Ok(self.collect()?.into_iter().collect())
    }
}
