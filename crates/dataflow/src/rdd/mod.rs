//! Typed, lazily evaluated lineage nodes.
//!
//! An [`Rdd<T>`] is a cheap handle on a node of the lineage graph. Calling
//! a transformation builds a new node that remembers its parents; nothing
//! runs until an action ([`Rdd::collect`], [`Rdd::count`], …) hands the
//! graph to the [`crate::scheduler`].

pub mod pair;
pub mod sources;
pub mod transforms;

use crate::cache::CacheKey;
use crate::context::SpangleContext;
use crate::metrics::MetricField;
use crate::partitioner::PartitionerSig;
use crate::plan::PlanNodeInfo;
use crate::scheduler::{self, JobError, TaskContext};
use crate::{Data, MemSize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// State shared by every RDD node: identity, cluster handle, persistence
/// flag.
pub struct RddBase {
    id: usize,
    ctx: SpangleContext,
    persist: AtomicBool,
}

impl RddBase {
    /// Allocates a fresh node identity in `ctx`.
    pub fn new(ctx: &SpangleContext) -> Self {
        RddBase {
            id: ctx.new_rdd_id(),
            ctx: ctx.clone(),
            persist: AtomicBool::new(false),
        }
    }
}

/// A node of the lineage graph producing elements of type `T`.
///
/// Implementations describe *how to compute one partition*; they never run
/// eagerly. `compute` may be invoked multiple times for the same split
/// (task retries, cache eviction) and must be deterministic for
/// fault-tolerant recomputation to be sound.
pub trait RddNode<T: Data>: Send + Sync + 'static {
    /// Shared identity/persistence state.
    fn base(&self) -> &RddBase;
    /// Number of partitions of this dataset.
    fn num_partitions(&self) -> usize;
    /// Lineage dependencies (narrow parents and shuffle dependencies).
    fn dependencies(&self) -> Vec<Dependency>;
    /// Computes the elements of partition `split`.
    fn compute(&self, split: usize, tc: &TaskContext) -> Vec<T>;
    /// Streams the elements of partition `split` into `sink`, one at a
    /// time. Fusable narrow operators override this to pull from their
    /// parent's stream, so a whole chain composes without materialising a
    /// `Vec` per node; the default drains [`RddNode::compute`], which is
    /// the materialising fallback every node must keep correct.
    fn compute_into(&self, split: usize, tc: &TaskContext, sink: &mut dyn FnMut(T)) {
        for t in self.compute(split, tc) {
            sink(t);
        }
    }
    /// Computes partition `split` as a shareable block. Pass-through
    /// nodes override this to hand back their parent's block without
    /// copying; the default materialises — streaming the fused chain when
    /// narrow-chain fusion is on, calling plain [`RddNode::compute`] when
    /// it is off.
    fn compute_arc(&self, split: usize, tc: &TaskContext) -> Arc<Vec<T>> {
        if self.base().ctx.planner().fuse_narrow_chains {
            let mut out = Vec::new();
            self.compute_into(split, tc, &mut |t| out.push(t));
            Arc::new(out)
        } else {
            Arc::new(self.compute(split, tc))
        }
    }
    /// How this dataset is partitioned by key, when known. Used to detect
    /// co-partitioning and elide shuffles (the paper's local join).
    fn partitioner_sig(&self) -> Option<PartitionerSig> {
        None
    }
    /// Planner-visible attributes (fusability, elided shuffle edges).
    /// Nodes that are not narrow streaming operators keep the default.
    fn plan_info(&self) -> PlanNodeInfo {
        PlanNodeInfo::default()
    }
}

/// A type-erased view of a lineage node, enough for the DAG scheduler to
/// walk the graph without knowing element types.
pub trait LineageNode: Send + Sync {
    /// The node's RDD id.
    fn rdd_id(&self) -> usize;
    /// The node's dependencies.
    fn dependencies(&self) -> Vec<Dependency>;
    /// Planner-visible attributes of the node (fusability, elided shuffle
    /// edges, persistence), consumed by the planner's stage analysis
    /// (`plan::analyze_stages`).
    fn plan_info(&self) -> PlanNodeInfo {
        PlanNodeInfo::default()
    }
}

/// One lineage edge.
pub enum Dependency {
    /// Child partitions depend on a bounded set of parent partitions
    /// computed in the same stage (map, filter, union, zip).
    Narrow(Arc<dyn LineageNode>),
    /// Child partitions depend on *all* parent partitions through the
    /// shuffle service; this is where the DAG scheduler cuts stages.
    Shuffle(Arc<dyn pair::ShuffleDepDyn>),
}

struct ErasedRdd<T: Data>(Rdd<T>);

impl<T: Data> LineageNode for ErasedRdd<T> {
    fn rdd_id(&self) -> usize {
        self.0.id()
    }
    fn dependencies(&self) -> Vec<Dependency> {
        self.0.node.dependencies()
    }
    fn plan_info(&self) -> PlanNodeInfo {
        let mut info = self.0.node.plan_info();
        info.persisted = self.0.node.base().persist.load(Ordering::Relaxed);
        info
    }
}

/// A handle on a lineage node. Clones share the node.
pub struct Rdd<T: Data> {
    pub(crate) node: Arc<dyn RddNode<T>>,
}

impl<T: Data> Clone for Rdd<T> {
    fn clone(&self) -> Self {
        Rdd {
            node: self.node.clone(),
        }
    }
}

impl<T: Data> Rdd<T> {
    /// Wraps a node into a handle.
    pub fn from_node(node: Arc<dyn RddNode<T>>) -> Self {
        Rdd { node }
    }

    /// Unique id of this dataset.
    pub fn id(&self) -> usize {
        self.node.base().id
    }

    /// The cluster this dataset lives on.
    pub fn context(&self) -> &SpangleContext {
        &self.node.base().ctx
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.node.num_partitions()
    }

    /// Key-partitioning signature, when known.
    pub fn partitioner_sig(&self) -> Option<PartitionerSig> {
        self.node.partitioner_sig()
    }

    /// Marks this dataset for caching: the first action materialises each
    /// partition into the block manager, later actions reuse it.
    pub fn persist(&self) -> &Self {
        self.node.base().persist.store(true, Ordering::Relaxed);
        self
    }

    /// Drops the cached partitions (the persistence mark stays, so the next
    /// action re-caches).
    pub fn unpersist(&self) {
        let dropped = self.context().inner.cache.evict_rdd(self.id());
        self.context()
            .metrics()
            .add(MetricField::PartitionsEvicted, dropped as u64);
    }

    /// Type-erased lineage view for the scheduler.
    pub fn lineage(&self) -> Arc<dyn LineageNode> {
        Arc::new(ErasedRdd(self.clone()))
    }

    /// Returns partition `split`, from cache when persisted and present,
    /// recomputing from lineage otherwise.
    pub(crate) fn iterator(&self, split: usize, tc: &TaskContext) -> Arc<Vec<T>> {
        let base = self.node.base();
        if base.persist.load(Ordering::Relaxed) {
            let key = CacheKey {
                rdd_id: base.id,
                partition: split,
            };
            if let Some(block) = base.ctx.inner.cache.get::<T>(&base.ctx, key) {
                base.ctx.metrics().add(MetricField::CacheHits, 1);
                return block;
            }
            base.ctx.metrics().add(MetricField::CacheMisses, 1);
            let data = self.node.compute_arc(split, tc);
            let bytes = data.iter().map(MemSize::mem_size).sum();
            // Attribute the block to the computing executor incarnation —
            // and drop it on the floor if that incarnation was killed
            // mid-compute (a replacement attempt will re-cache it).
            if base.ctx.inner.pool.origin_is_live(tc.origin()) {
                base.ctx
                    .inner
                    .cache
                    .put(key, Arc::clone(&data), bytes, tc.origin());
                // Cache deposits count against the memory watermark like
                // shuffle deposits do: spill cold blocks first, then record
                // the post-spill peaks.
                base.ctx.enforce_memory_watermark();
                base.ctx.metrics().raise(
                    MetricField::CacheHighwaterBytes,
                    base.ctx.inner.cache.resident_bytes() as u64,
                );
                base.ctx.metrics().raise(
                    MetricField::MemoryHighwaterBytes,
                    (base.ctx.cached_bytes() + base.ctx.shuffle_resident_bytes()) as u64,
                );
            }
            return data;
        }
        self.node.compute_arc(split, tc)
    }

    /// Streams partition `split` element-by-element into `sink`.
    ///
    /// Persisted datasets go through [`Rdd::iterator`] first (the cache is
    /// a fusion barrier: the materialised block must exist) and clone out
    /// of the shared block. Otherwise, with narrow-chain fusion on, the
    /// node's streaming path runs — a chain of fusable operators composes
    /// here without intermediate `Vec`s; with fusion off the node
    /// materialises via plain `compute` and the result is drained by
    /// value, preserving the unoptimised execution shape.
    pub(crate) fn stream(&self, split: usize, tc: &TaskContext, sink: &mut dyn FnMut(T)) {
        let base = self.node.base();
        if base.persist.load(Ordering::Relaxed) {
            for t in self.iterator(split, tc).iter() {
                sink(t.clone());
            }
        } else if base.ctx.planner().fuse_narrow_chains {
            self.node.compute_into(split, tc, sink);
        } else {
            for t in self.node.compute(split, tc) {
                sink(t);
            }
        }
    }

    // ---- Actions -------------------------------------------------------

    /// Materialises the whole dataset on the driver, partitions in order.
    pub fn collect(&self) -> Result<Vec<T>, JobError> {
        let parts = scheduler::run_job(self, |_, data: Arc<Vec<T>>| (*data).clone())?;
        Ok(parts.into_iter().flatten().collect())
    }

    /// Number of elements.
    pub fn count(&self) -> Result<usize, JobError> {
        let parts = scheduler::run_job(self, |_, data: Arc<Vec<T>>| data.len())?;
        Ok(parts.into_iter().sum())
    }

    /// Reduces all elements with `f`; `None` for an empty dataset.
    pub fn reduce(
        &self,
        f: impl Fn(T, T) -> T + Send + Sync + 'static,
    ) -> Result<Option<T>, JobError> {
        let f = Arc::new(f);
        let g = Arc::clone(&f);
        let parts = scheduler::run_job(self, move |_, data: Arc<Vec<T>>| {
            data.iter().cloned().reduce(|a, b| g(a, b))
        })?;
        Ok(parts.into_iter().flatten().reduce(|a, b| f(a, b)))
    }

    /// Folds every partition from `zero` with `f`, then combines the
    /// per-partition results with `combine` on the driver.
    pub fn aggregate<A>(
        &self,
        zero: A,
        f: impl Fn(A, &T) -> A + Send + Sync + 'static,
        combine: impl Fn(A, A) -> A,
    ) -> Result<A, JobError>
    where
        A: Clone + Send + Sync + 'static,
    {
        let zero2 = zero.clone();
        let parts = scheduler::run_job(self, move |_, data: Arc<Vec<T>>| {
            data.iter().fold(zero2.clone(), &f)
        })?;
        Ok(parts.into_iter().fold(zero, combine))
    }

    /// Runs `f` over each partition's elements, returning one value per
    /// partition (in partition order). The workhorse action for the layers
    /// above.
    pub fn run_partitions<R: Send + 'static>(
        &self,
        f: impl Fn(usize, &[T]) -> R + Send + Sync + 'static,
    ) -> Result<Vec<R>, JobError> {
        scheduler::run_job(self, move |split, data: Arc<Vec<T>>| f(split, &data))
    }

    // ---- Transformations (narrow) --------------------------------------

    /// Element-wise transformation.
    pub fn map<U: Data>(&self, f: impl Fn(T) -> U + Send + Sync + 'static) -> Rdd<U> {
        transforms::MapRdd::create(self.clone(), f)
    }

    /// Keeps elements satisfying `pred`.
    pub fn filter(&self, pred: impl Fn(&T) -> bool + Send + Sync + 'static) -> Rdd<T> {
        transforms::FilterRdd::create(self.clone(), pred)
    }

    /// One-to-many transformation.
    pub fn flat_map<U: Data>(&self, f: impl Fn(T) -> Vec<U> + Send + Sync + 'static) -> Rdd<U> {
        transforms::FlatMapRdd::create(self.clone(), f)
    }

    /// Whole-partition transformation with access to the partition index.
    pub fn map_partitions_with_index<U: Data>(
        &self,
        f: impl Fn(usize, &[T]) -> Vec<U> + Send + Sync + 'static,
    ) -> Rdd<U> {
        transforms::MapPartitionsRdd::create(self.clone(), f)
    }

    /// Whole-partition transformation.
    pub fn map_partitions<U: Data>(
        &self,
        f: impl Fn(&[T]) -> Vec<U> + Send + Sync + 'static,
    ) -> Rdd<U> {
        self.map_partitions_with_index(move |_, data| f(data))
    }

    /// Concatenation of two datasets (their partitions, in order).
    pub fn union(&self, other: &Rdd<T>) -> Rdd<T> {
        transforms::UnionRdd::create(self.clone(), other.clone())
    }

    /// Pairs partition `i` of `self` with partition `i` of `other` and
    /// transforms both together — the narrow, shuffle-free join used by the
    /// local-join optimisation. Panics if partition counts differ.
    pub fn zip_partitions<U: Data, O: Data>(
        &self,
        other: &Rdd<U>,
        f: impl Fn(&[T], &[U]) -> Vec<O> + Send + Sync + 'static,
    ) -> Rdd<O> {
        transforms::ZipPartitionsRdd::create(self.clone(), other.clone(), f)
    }

    /// Keys each element with `f`, producing a pair dataset.
    pub fn key_by<K: crate::Key>(
        &self,
        f: impl Fn(&T) -> K + Send + Sync + 'static,
    ) -> Rdd<(K, T)> {
        self.map(move |t| (f(&t), t))
    }

    /// Asserts that this dataset is already laid out according to `sig`.
    ///
    /// Used by sources that *generate* data directly into its final
    /// placement (e.g. ArrayRDD ingest, which computes each chunk on the
    /// partition its ChunkID hashes to). The caller is responsible for the
    /// invariant: every element's key must map to its partition under the
    /// claimed partitioner, otherwise later co-partitioned joins will
    /// silently pair the wrong data.
    pub fn assert_partitioned(&self, sig: PartitionerSig) -> Rdd<T> {
        assert_eq!(
            self.num_partitions(),
            sig.num_partitions,
            "claimed partitioner does not match the partition count"
        );
        PassThroughRdd::create(self.clone(), sig, 0)
    }
}

/// A zero-copy identity node that re-attaches a partitioner signature to
/// its parent: the data is untouched, only the metadata changes. Used by
/// [`Rdd::assert_partitioned`], by `map_values` (whose transformation
/// cannot move keys), and as the narrow stand-in for a shuffle the planner
/// elided (`partition_by` onto the partitioner the data already follows).
/// `iterator` hands back the parent's block by `Arc` — never a deep clone.
pub(crate) struct PassThroughRdd<T: Data> {
    base: RddBase,
    parent: Rdd<T>,
    sig: PartitionerSig,
    /// 1 when this node stands where a shuffle was elided, 0 for plain
    /// signature bookkeeping.
    elided_shuffles: usize,
}

impl<T: Data> PassThroughRdd<T> {
    pub(crate) fn create(parent: Rdd<T>, sig: PartitionerSig, elided_shuffles: usize) -> Rdd<T> {
        Rdd::from_node(Arc::new(PassThroughRdd {
            base: RddBase::new(parent.context()),
            parent,
            sig,
            elided_shuffles,
        }))
    }
}

impl<T: Data> RddNode<T> for PassThroughRdd<T> {
    fn base(&self) -> &RddBase {
        &self.base
    }
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn dependencies(&self) -> Vec<Dependency> {
        vec![Dependency::Narrow(self.parent.lineage())]
    }
    fn compute(&self, split: usize, tc: &TaskContext) -> Vec<T> {
        (*self.parent.iterator(split, tc)).clone()
    }
    fn compute_into(&self, split: usize, tc: &TaskContext, sink: &mut dyn FnMut(T)) {
        self.parent.stream(split, tc, sink);
    }
    fn compute_arc(&self, split: usize, tc: &TaskContext) -> Arc<Vec<T>> {
        // Identity: share the parent's block instead of copying it. This
        // holds with the planner off too — sharing is unobservable.
        self.parent.iterator(split, tc)
    }
    fn partitioner_sig(&self) -> Option<PartitionerSig> {
        Some(self.sig)
    }
    fn plan_info(&self) -> PlanNodeInfo {
        PlanNodeInfo {
            fusable: true,
            elided_shuffles: self.elided_shuffles,
            persisted: false,
        }
    }
}
