//! Source RDDs: where lineage graphs begin.

use super::{Dependency, Rdd, RddBase, RddNode};
use crate::scheduler::TaskContext;
use crate::{Data, SpangleContext};
use std::sync::Arc;

/// A dataset created from a driver-local vector, split into equal slices.
pub struct ParallelizeRdd<T: Data> {
    base: RddBase,
    /// Pre-sliced partitions; shared, never mutated.
    partitions: Arc<Vec<Vec<T>>>,
}

impl<T: Data> ParallelizeRdd<T> {
    /// Slices `data` into `num_partitions` contiguous, near-equal pieces.
    pub fn create(ctx: &SpangleContext, data: Vec<T>, num_partitions: usize) -> Rdd<T> {
        assert!(num_partitions > 0, "need at least one partition");
        let n = data.len();
        let mut partitions = Vec::with_capacity(num_partitions);
        let mut iter = data.into_iter();
        for p in 0..num_partitions {
            // Contiguous slicing that distributes the remainder evenly.
            let start = p * n / num_partitions;
            let end = (p + 1) * n / num_partitions;
            partitions.push(iter.by_ref().take(end - start).collect());
        }
        Rdd::from_node(Arc::new(ParallelizeRdd {
            base: RddBase::new(ctx),
            partitions: Arc::new(partitions),
        }))
    }
}

impl<T: Data> RddNode<T> for ParallelizeRdd<T> {
    fn base(&self) -> &RddBase {
        &self.base
    }

    fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    fn dependencies(&self) -> Vec<Dependency> {
        Vec::new()
    }

    fn compute(&self, split: usize, _tc: &TaskContext) -> Vec<T> {
        self.partitions[split].clone()
    }
}

/// A dataset whose partitions are generated on demand by a function —
/// the source used by data generators, so that large synthetic inputs are
/// produced *on the executors* instead of being shipped from the driver
/// (the trick Spangle's ingest pipeline relies on).
pub struct GeneratedRdd<T: Data> {
    base: RddBase,
    num_partitions: usize,
    generate: Arc<dyn Fn(usize) -> Vec<T> + Send + Sync>,
}

impl<T: Data> GeneratedRdd<T> {
    /// Creates a dataset whose partition `p` holds `generate(p)`.
    ///
    /// `generate` must be deterministic: it is the lineage used to
    /// recompute lost partitions.
    pub fn create(
        ctx: &SpangleContext,
        num_partitions: usize,
        generate: impl Fn(usize) -> Vec<T> + Send + Sync + 'static,
    ) -> Rdd<T> {
        assert!(num_partitions > 0, "need at least one partition");
        Rdd::from_node(Arc::new(GeneratedRdd {
            base: RddBase::new(ctx),
            num_partitions,
            generate: Arc::new(generate),
        }))
    }
}

impl<T: Data> RddNode<T> for GeneratedRdd<T> {
    fn base(&self) -> &RddBase {
        &self.base
    }

    fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    fn dependencies(&self) -> Vec<Dependency> {
        Vec::new()
    }

    fn compute(&self, split: usize, _tc: &TaskContext) -> Vec<T> {
        (self.generate)(split)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelize_preserves_order_and_cardinality() {
        let ctx = SpangleContext::new(2);
        let data: Vec<u64> = (0..103).collect();
        let rdd = ctx.parallelize(data.clone(), 7);
        assert_eq!(rdd.num_partitions(), 7);
        assert_eq!(rdd.collect().unwrap(), data);
    }

    #[test]
    fn parallelize_handles_fewer_elements_than_partitions() {
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize(vec![1u64, 2], 5);
        assert_eq!(rdd.num_partitions(), 5);
        assert_eq!(rdd.collect().unwrap(), vec![1, 2]);
        assert_eq!(rdd.count().unwrap(), 2);
    }

    #[test]
    fn generated_rdd_builds_partitions_on_demand() {
        let ctx = SpangleContext::new(3);
        let rdd = GeneratedRdd::create(&ctx, 4, |p| vec![p as u64; p + 1]);
        let collected = rdd.collect().unwrap();
        assert_eq!(collected, vec![0, 1, 1, 2, 2, 2, 3, 3, 3, 3]);
    }
}
