//! Executor backends: where the remote data plane's named operators run
//! and where their blocks live.
//!
//! The [`ExecutorBackend`] trait splits the cluster's *data plane* from
//! its scheduling plane. Scheduling (stages, placement, retries,
//! lineage) always runs in the driver process over the thread pool; the
//! backend decides where a named [`crate::ops`] operator executes and
//! which store holds its output blocks:
//!
//! * [`BackendKind::InProc`] (the default) keeps today's single-process
//!   cluster: operators run on the calling executor thread against a
//!   driver-local block store. No sockets, no processes — and no real
//!   failure domains.
//! * [`BackendKind::Proc`] gives every executor slot a real OS *worker
//!   process* owning that slot's shards, spoken to over a Unix-domain
//!   socket with the [`crate::wire`] frame protocol. Worker keepalives
//!   are stamped into the driver's `HealthBoard` by per-session reader
//!   threads, so the PR 9 loss detector fires on genuine process death:
//!   a `SIGKILL`ed worker stops heartbeating, is declared lost, its slot
//!   is killed through the standard recovery path, and this backend
//!   respawns a fresh incarnation — no `kill_executor` call anywhere.
//!
//! Selection: `SPANGLE_BACKEND=proc|inproc` seeds the builder default;
//! [`crate::SpangleContextBuilder::backend`] wins over the environment.
//! Under `proc`, `SPANGLE_PROC_MAX_WORKERS` caps how many slots get real
//! processes (the rest degrade to the in-driver store, covered by a
//! stamper thread so loss detection never fires on them), and
//! `SPANGLE_WORKER_BIN` points at the worker binary when automatic
//! discovery (alongside the current executable) cannot find it.

use crate::env::env_parse;
use crate::health::{jittered_backoff, HealthBoard};
use crate::sync::channel::{unbounded, RecvTimeoutError, Sender};
use crate::sync::Mutex;
use crate::wire::{self, BlockKey, BlockMeta, Frame, OpInput, ReplyBody, RequestBody};
use std::collections::HashMap;
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which executor backend a context runs on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackendKind {
    /// Operators run on the in-process executor threads against a
    /// driver-local block store (the historical behavior).
    #[default]
    InProc,
    /// Every executor slot is a worker *process* reached over a Unix
    /// socket; process death is a real failure domain.
    Proc,
}

impl std::str::FromStr for BackendKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "inproc" | "in-process" | "thread" => Ok(BackendKind::InProc),
            "proc" | "process" | "multiproc" => Ok(BackendKind::Proc),
            other => Err(format!("unknown backend {other:?}")),
        }
    }
}

/// Why a backend call failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BackendError {
    /// The slot's worker is unreachable: never spawned, crashed,
    /// `SIGKILL`ed, or its connection produced a torn frame. The caller
    /// must *wait for the health plane to notice* (or for its own
    /// cancellation), never paper over it.
    WorkerDead,
    /// The call hit its deadline with the worker still connected.
    Timeout,
    /// The calling task was cancelled while waiting.
    Cancelled,
    /// No block is stored under the requested key.
    NotFound,
    /// The operator itself failed — a task-level error on a healthy
    /// worker (quarantine-eligible, like any panicking task body).
    Op(String),
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::WorkerDead => write!(f, "worker process unreachable"),
            BackendError::Timeout => write!(f, "backend call timed out"),
            BackendError::Cancelled => write!(f, "task cancelled while waiting on backend"),
            BackendError::NotFound => write!(f, "block not found"),
            BackendError::Op(msg) => write!(f, "operator failed: {msg}"),
        }
    }
}

/// A worker store snapshot, for tests and diagnostics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerStats {
    /// Blocks resident in the slot's store.
    pub blocks: u64,
    /// Total encoded bytes of those blocks.
    pub bytes: u64,
    /// Incarnation the store belongs to.
    pub epoch: u64,
    /// OS pid of the owning process (the driver's own pid for in-process
    /// and degraded slots).
    pub pid: u64,
}

/// Where named operators execute and where their blocks live; one
/// implementation per [`BackendKind`].
pub trait ExecutorBackend: Send + Sync {
    /// Which kind this backend is.
    fn kind(&self) -> BackendKind;

    /// Whether this backend is the cluster's heartbeat source (socket
    /// keepalives + degraded-slot stamper). When `false`, the pool's
    /// in-process heartbeater thread runs instead.
    fn provides_heartbeats(&self) -> bool;

    /// Runs the named operator on `slot`'s store, depositing its outputs
    /// under `out_keys`. Deterministic ops + keyed outputs make this
    /// idempotent: a replay answers from the store.
    fn run_op(
        &self,
        slot: usize,
        op: &str,
        args: &[u8],
        inputs: Vec<OpInput>,
        out_keys: &[BlockKey],
    ) -> Result<Vec<BlockMeta>, BackendError>;

    /// Fetches a stored block's bytes from `slot` — the remote
    /// shuffle-fetch path under the process backend.
    fn fetch(&self, slot: usize, key: BlockKey) -> Result<Vec<u8>, BackendError>;

    /// Snapshot of `slot`'s store.
    fn stats(&self, slot: usize) -> Result<WorkerStats, BackendError>;

    /// Called by `SpangleContext::kill_executor` after the pool seated a
    /// replacement incarnation: reap the dead worker and bring up a fresh
    /// one for `new_epoch` (or clear the degraded slot's local store).
    fn on_executor_killed(&self, slot: usize, new_epoch: u64);

    /// OS pid of `slot`'s worker process, when one is running.
    fn worker_pid(&self, slot: usize) -> Option<u32>;

    /// Test hook: `SIGKILL` the worker process of `slot` and tell no one
    /// — detection must come from missed heartbeats. Returns whether a
    /// process was actually signalled.
    fn sigkill_worker(&self, slot: usize) -> bool;

    /// Number of slots currently served by real worker processes (0 for
    /// the in-process backend and fully degraded process backends).
    fn real_worker_slots(&self) -> usize;

    /// Stops workers, joins session threads, removes sockets. Idempotent.
    fn shutdown(&self);
}

/// `SPANGLE_BACKEND` seeds the builder default (invalid values warn once
/// through the knob parser and fall back to in-process).
pub(crate) fn backend_kind_from_env() -> BackendKind {
    env_parse::<BackendKind>("SPANGLE_BACKEND").unwrap_or_default()
}

/// Builds the backend for `kind` over `executors` slots.
pub(crate) fn make_backend(
    kind: BackendKind,
    executors: usize,
    board: Arc<HealthBoard>,
    heartbeat_interval: Duration,
) -> Arc<dyn ExecutorBackend> {
    match kind {
        BackendKind::InProc => Arc::new(InProcBackend {
            local: LocalStore::new(executors),
        }),
        BackendKind::Proc => Arc::new(ProcBackend::start(executors, board, heartbeat_interval)),
    }
}

/// The driver-local block store: the whole data plane of the in-process
/// backend, and the degraded tier of the process backend (slots past the
/// worker cap, or slots whose worker could not be spawned).
struct LocalStore {
    slots: Vec<Mutex<HashMap<BlockKey, Arc<Vec<u8>>>>>,
}

impl LocalStore {
    fn new(executors: usize) -> Self {
        LocalStore {
            slots: (0..executors).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn run_op(
        &self,
        slot: usize,
        op: &str,
        args: &[u8],
        inputs: Vec<OpInput>,
        out_keys: &[BlockKey],
    ) -> Result<Vec<BlockMeta>, BackendError> {
        let meta = |bytes: &[u8]| BlockMeta {
            len: bytes.len() as u64,
            checksum: wire::fnv1a64(bytes),
        };
        let mut store = self.slots[slot].lock();
        if !out_keys.is_empty() && out_keys.iter().all(|k| store.contains_key(k)) {
            return Ok(out_keys.iter().map(|k| meta(&store[k])).collect());
        }
        let mut resolved: Vec<Arc<Vec<u8>>> = Vec::with_capacity(inputs.len());
        for input in inputs {
            match input {
                OpInput::Inline(bytes) => resolved.push(Arc::new(bytes)),
                OpInput::Local(key) => match store.get(&key) {
                    Some(bytes) => resolved.push(Arc::clone(bytes)),
                    None => return Err(BackendError::Op(format!("missing local input {key:?}"))),
                },
            }
        }
        let views: Vec<&[u8]> = resolved.iter().map(|b| b.as_slice()).collect();
        let outputs =
            crate::ops::run_op(op, args, &views, &AtomicU64::new(0)).map_err(BackendError::Op)?;
        if outputs.len() != out_keys.len() {
            return Err(BackendError::Op(format!(
                "operator {op:?} produced {} outputs for {} keys",
                outputs.len(),
                out_keys.len()
            )));
        }
        let metas = outputs.iter().map(|b| meta(b)).collect();
        for (key, bytes) in out_keys.iter().zip(outputs) {
            store.insert(*key, Arc::new(bytes));
        }
        Ok(metas)
    }

    fn fetch(&self, slot: usize, key: BlockKey) -> Result<Vec<u8>, BackendError> {
        self.slots[slot]
            .lock()
            .get(&key)
            .map(|b| b.as_ref().clone())
            .ok_or(BackendError::NotFound)
    }

    fn stats(&self, slot: usize, epoch: u64) -> WorkerStats {
        let store = self.slots[slot].lock();
        WorkerStats {
            blocks: store.len() as u64,
            bytes: store.values().map(|b| b.len() as u64).sum(),
            epoch,
            pid: std::process::id() as u64,
        }
    }

    /// A killed incarnation's blocks die with it.
    fn discard(&self, slot: usize) {
        self.slots[slot].lock().clear();
    }
}

/// The in-process backend: the data plane shares the driver's heap.
struct InProcBackend {
    local: LocalStore,
}

impl ExecutorBackend for InProcBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::InProc
    }

    fn provides_heartbeats(&self) -> bool {
        false
    }

    fn run_op(
        &self,
        slot: usize,
        op: &str,
        args: &[u8],
        inputs: Vec<OpInput>,
        out_keys: &[BlockKey],
    ) -> Result<Vec<BlockMeta>, BackendError> {
        self.local.run_op(slot, op, args, inputs, out_keys)
    }

    fn fetch(&self, slot: usize, key: BlockKey) -> Result<Vec<u8>, BackendError> {
        self.local.fetch(slot, key)
    }

    fn stats(&self, slot: usize) -> Result<WorkerStats, BackendError> {
        Ok(self.local.stats(slot, 0))
    }

    fn on_executor_killed(&self, slot: usize, _new_epoch: u64) {
        self.local.discard(slot);
    }

    fn worker_pid(&self, _slot: usize) -> Option<u32> {
        None
    }

    fn sigkill_worker(&self, _slot: usize) -> bool {
        false
    }

    fn real_worker_slots(&self) -> usize {
        0
    }

    fn shutdown(&self) {}
}

/// One live worker connection: a locked writer for requests, a reader
/// thread routing replies by request id and stamping keepalives into the
/// health board.
struct Session {
    writer: Mutex<UnixStream>,
    pending: Mutex<HashMap<u64, Sender<ReplyBody>>>,
    /// Latched by the reader on EOF / torn frame, and by a failed write.
    /// A dead session fails calls immediately; it never kills the slot —
    /// loss detection is the health monitor's job, driven purely by
    /// heartbeat age.
    dead: AtomicBool,
    reader: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Session {
    fn mark_dead(&self) {
        self.dead.store(true, Ordering::SeqCst);
        // Dropping the senders disconnects every waiting call.
        self.pending.lock().clear();
    }
}

/// How one executor slot is served.
enum SlotMode {
    /// A real worker process (the child handle is kept for reaping and
    /// for the `SIGKILL` test hook).
    Remote {
        child: std::process::Child,
        session: Arc<Session>,
    },
    /// Degraded to the driver-local store: past the worker cap, or the
    /// worker binary is unavailable. The stamper thread keeps such slots'
    /// heartbeats fresh so loss detection never fires on them.
    Local,
}

struct SlotState {
    epoch: u64,
    mode: SlotMode,
}

/// The multi-process backend.
struct ProcBackend {
    dir: std::path::PathBuf,
    socket: std::path::PathBuf,
    listener: Mutex<UnixListener>,
    /// Accepted connections whose `Hello` named a different slot than the
    /// spawner waiting on the listener (concurrent respawns): parked here
    /// for the right spawner to claim.
    parked: Mutex<Vec<(u64, u64, UnixStream)>>,
    slots: Vec<Mutex<SlotState>>,
    local: LocalStore,
    board: Arc<HealthBoard>,
    /// Which slots the stamper thread covers (the Local ones); shared
    /// with that thread and flipped on spawn/degrade transitions.
    local_flags: Mutex<Option<Arc<Vec<AtomicBool>>>>,
    /// Keepalive spacing passed to workers (half the heartbeat interval,
    /// clamped like the in-process heartbeater's step).
    keepalive: Duration,
    worker_bin: Option<std::path::PathBuf>,
    max_workers: usize,
    next_req: AtomicU64,
    stop: Arc<AtomicBool>,
    stamper: Mutex<Option<std::thread::JoinHandle<()>>>,
    shut_down: AtomicBool,
}

/// How long a spawner waits for a fresh worker's `Hello` before declaring
/// the spawn failed and degrading the slot.
const SPAWN_DEADLINE: Duration = Duration::from_secs(10);

/// Hard ceiling on one backend call; real waits end far earlier through
/// cancellation or the dead-session latch.
const CALL_DEADLINE: Duration = Duration::from_secs(600);

impl ProcBackend {
    fn start(executors: usize, board: Arc<HealthBoard>, heartbeat_interval: Duration) -> Self {
        static DIR_SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "spangle-proc-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("failed to create backend socket dir");
        let socket = dir.join("driver.sock");
        let listener = UnixListener::bind(&socket).expect("failed to bind backend socket");
        listener
            .set_nonblocking(true)
            .expect("failed to configure backend socket");

        let worker_bin = find_worker_bin();
        if worker_bin.is_none() {
            warn_once(
                "spangle: SPANGLE_BACKEND=proc but no spangle_worker binary found \
                 (set SPANGLE_WORKER_BIN); degrading every slot to the in-driver store",
            );
        }
        let max_workers = env_parse::<usize>("SPANGLE_PROC_MAX_WORKERS").unwrap_or(executors);
        let keepalive =
            (heartbeat_interval / 2).clamp(Duration::from_millis(1), Duration::from_millis(50));

        let backend = ProcBackend {
            dir,
            socket,
            listener: Mutex::new(listener),
            parked: Mutex::new(Vec::new()),
            slots: (0..executors)
                .map(|_| {
                    Mutex::new(SlotState {
                        epoch: 0,
                        mode: SlotMode::Local,
                    })
                })
                .collect(),
            local: LocalStore::new(executors),
            board,
            local_flags: Mutex::new(None),
            keepalive,
            worker_bin,
            max_workers,
            next_req: AtomicU64::new(1),
            stop: Arc::new(AtomicBool::new(false)),
            stamper: Mutex::new(None),
            shut_down: AtomicBool::new(false),
        };

        // Eager spawn: loss detection exempts idle slots, so a slot must
        // have a keepalive source from the start — a lazily spawned
        // worker would leave long closure tasks on a silent slot looking
        // dead. Slots past the cap (or with no binary) stay Local.
        for slot in 0..executors.min(backend.max_workers) {
            if backend.worker_bin.is_some() {
                let mut state = backend.slots[slot].lock();
                backend.spawn_into(&mut state, slot, 0);
            }
        }
        backend.start_stamper(executors);
        backend
    }

    /// The stamper covers Local slots (and only those): they have no
    /// worker process, so without it the health monitor would declare
    /// them lost under any task longer than the loss threshold.
    fn start_stamper(&self, executors: usize) {
        let board = Arc::clone(&self.board);
        let stop = Arc::clone(&self.stop);
        let step = self.keepalive;
        let local_flags: Arc<Vec<AtomicBool>> =
            Arc::new((0..executors).map(|_| AtomicBool::new(true)).collect());
        for slot in 0..executors {
            let is_local = matches!(self.slots[slot].lock().mode, SlotMode::Local);
            local_flags[slot].store(is_local, Ordering::SeqCst);
        }
        self.local_flags.lock().replace(Arc::clone(&local_flags));
        let handle = std::thread::Builder::new()
            .name("spangle-proc-stamper".into())
            .spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    for (slot, flag) in local_flags.iter().enumerate() {
                        if flag.load(Ordering::SeqCst) {
                            board.stamp_heartbeat(slot);
                        }
                    }
                    std::thread::sleep(step);
                }
            })
            .expect("failed to spawn backend stamper thread");
        self.stamper.lock().replace(handle);
    }

    /// Spawns a worker for `(slot, epoch)` into `state`; on any failure
    /// the slot degrades to Local (and the stamper covers it).
    fn spawn_into(&self, state: &mut SlotState, slot: usize, epoch: u64) {
        state.epoch = epoch;
        let Some(bin) = &self.worker_bin else {
            self.set_local(state, slot);
            return;
        };
        let child = std::process::Command::new(bin)
            .arg(&self.socket)
            .arg(slot.to_string())
            .arg(epoch.to_string())
            .arg(self.keepalive.as_millis().to_string())
            .stdin(std::process::Stdio::null())
            .spawn();
        let mut child = match child {
            Ok(c) => c,
            Err(e) => {
                warn_once(&format!(
                    "spangle: failed to spawn worker process ({e}); degrading to in-driver slots"
                ));
                self.set_local(state, slot);
                return;
            }
        };
        match self.accept_hello(slot as u64, epoch) {
            Some(stream) => {
                let session = self.install_session(slot, stream);
                state.mode = SlotMode::Remote { child, session };
                self.set_local_flag(slot, false);
            }
            None => {
                let _ = child.kill();
                let _ = child.wait();
                warn_once(&format!(
                    "spangle: worker for slot {slot} never said hello; degrading the slot"
                ));
                self.set_local(state, slot);
            }
        }
    }

    fn set_local(&self, state: &mut SlotState, slot: usize) {
        state.mode = SlotMode::Local;
        self.set_local_flag(slot, true);
        // A fresh heartbeat keeps the just-degraded slot from being
        // instantly declared lost before the stamper's next pass.
        self.board.stamp_heartbeat(slot);
    }

    fn set_local_flag(&self, slot: usize, local: bool) {
        if let Some(flags) = self.local_flags.lock().as_ref() {
            flags[slot].store(local, Ordering::SeqCst);
        }
    }

    /// Accepts connections until the `Hello` for `(slot, epoch)` arrives
    /// (checking the parked list first), with seeded backoff between
    /// polls — the PR 9 reconnect discipline. Hellos for *other* slots
    /// are parked for their spawners.
    fn accept_hello(&self, slot: u64, epoch: u64) -> Option<UnixStream> {
        let deadline = Instant::now() + SPAWN_DEADLINE;
        let mut attempt = 0usize;
        loop {
            {
                let mut parked = self.parked.lock();
                if let Some(idx) = parked
                    .iter()
                    .position(|(s, e, _)| *s == slot && *e == epoch)
                {
                    return Some(parked.swap_remove(idx).2);
                }
            }
            let accepted = self.listener.lock().accept();
            match accepted {
                Ok((stream, _)) => {
                    stream.set_read_timeout(Some(Duration::from_secs(2))).ok()?;
                    let mut reader = stream.try_clone().ok()?;
                    // Anything but a `Hello` on a fresh connection is a
                    // stranger and is dropped.
                    if let Ok(Frame::Hello { slot: s, epoch: e }) = wire::read_frame(&mut reader) {
                        stream.set_read_timeout(None).ok()?;
                        if s == slot && e == epoch {
                            return Some(stream);
                        }
                        // Someone else's worker: park it (stale epochs
                        // are dropped on claim timeout).
                        self.parked.lock().push((s, e, stream));
                    }
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() > deadline || self.stop.load(Ordering::SeqCst) {
                        return None;
                    }
                    attempt += 1;
                    std::thread::sleep(jittered_backoff(
                        Duration::from_millis(1),
                        Duration::from_millis(20),
                        attempt.min(8),
                        0x5EED_0C0D_u64 ^ slot ^ (epoch << 16) ^ attempt as u64,
                    ));
                }
                Err(_) => return None,
            }
        }
    }

    /// Wraps an accepted stream in a session and spawns its reader
    /// thread: replies route to waiting calls, keepalives stamp the
    /// health board, and connection death only latches the dead flag —
    /// deciding the *executor* is lost stays the health monitor's call.
    fn install_session(&self, slot: usize, stream: UnixStream) -> Arc<Session> {
        let writer = stream;
        let mut read_half = writer.try_clone().expect("failed to clone worker stream");
        let session = Arc::new(Session {
            writer: Mutex::new(writer),
            pending: Mutex::new(HashMap::new()),
            dead: AtomicBool::new(false),
            reader: Mutex::new(None),
        });
        let reader_session = Arc::downgrade(&session);
        let board = Arc::clone(&self.board);
        let op_seen = AtomicU64::new(0);
        let handle = std::thread::Builder::new()
            .name(format!("spangle-worker-io-{slot}"))
            .spawn(move || loop {
                match wire::read_frame(&mut read_half) {
                    Ok(Frame::Heartbeat { op_progress, .. }) => {
                        // A keepalive proves the process is alive; an
                        // advancing op counter additionally proves the
                        // operator body is moving (feeds the watchdog).
                        if op_progress > op_seen.swap(op_progress, Ordering::Relaxed) {
                            board.stamp_progress(slot);
                        } else {
                            board.stamp_heartbeat(slot);
                        }
                    }
                    Ok(Frame::Reply { req_id, body }) => {
                        if let Some(session) = reader_session.upgrade() {
                            if let Some(tx) = session.pending.lock().remove(&req_id) {
                                let _ = tx.send(body);
                            }
                        }
                    }
                    Ok(_) => {}
                    Err(_) => {
                        // EOF or torn frame: the connection is done. Fail
                        // the waiting calls and stop — no stamps, no
                        // kills; silence is the detection signal.
                        if let Some(session) = reader_session.upgrade() {
                            session.mark_dead();
                        }
                        return;
                    }
                }
            })
            .expect("failed to spawn worker io thread");
        session.reader.lock().replace(handle);
        session
    }

    /// The session serving `slot` right now, or `None` for Local slots.
    fn session_of(&self, slot: usize) -> Option<Arc<Session>> {
        match &self.slots[slot].lock().mode {
            SlotMode::Remote { session, .. } => Some(Arc::clone(session)),
            SlotMode::Local => None,
        }
    }

    /// Sends one request and waits for its reply, polling the dead latch
    /// and the calling task's cancellation between channel timeouts.
    fn call(&self, session: &Session, body: RequestBody) -> Result<ReplyBody, BackendError> {
        if session.dead.load(Ordering::SeqCst) {
            return Err(BackendError::WorkerDead);
        }
        let req_id = self.next_req.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = unbounded();
        session.pending.lock().insert(req_id, tx);
        let frame = Frame::Request { req_id, body };
        if wire::write_frame(&mut *session.writer.lock(), &frame).is_err() {
            session.pending.lock().remove(&req_id);
            session.mark_dead();
            return Err(BackendError::WorkerDead);
        }
        let deadline = Instant::now() + CALL_DEADLINE;
        loop {
            match rx.recv_timeout(Duration::from_millis(2)) {
                Ok(reply) => return Ok(reply),
                Err(RecvTimeoutError::Disconnected) => return Err(BackendError::WorkerDead),
                Err(RecvTimeoutError::Timeout) => {
                    if session.dead.load(Ordering::SeqCst) {
                        session.pending.lock().remove(&req_id);
                        return Err(BackendError::WorkerDead);
                    }
                    if crate::executor::is_task_cancelled() {
                        session.pending.lock().remove(&req_id);
                        return Err(BackendError::Cancelled);
                    }
                    if Instant::now() > deadline {
                        session.pending.lock().remove(&req_id);
                        return Err(BackendError::Timeout);
                    }
                }
            }
        }
    }
}

impl ExecutorBackend for ProcBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Proc
    }

    fn provides_heartbeats(&self) -> bool {
        true
    }

    fn run_op(
        &self,
        slot: usize,
        op: &str,
        args: &[u8],
        inputs: Vec<OpInput>,
        out_keys: &[BlockKey],
    ) -> Result<Vec<BlockMeta>, BackendError> {
        match self.session_of(slot) {
            None => self.local.run_op(slot, op, args, inputs, out_keys),
            Some(session) => {
                let body = RequestBody::Run {
                    op: op.to_string(),
                    args: args.to_vec(),
                    inputs,
                    out_keys: out_keys.to_vec(),
                };
                match self.call(&session, body)? {
                    ReplyBody::RunOk(metas) => Ok(metas),
                    ReplyBody::OpError(msg) => Err(BackendError::Op(msg)),
                    _ => Err(BackendError::WorkerDead),
                }
            }
        }
    }

    fn fetch(&self, slot: usize, key: BlockKey) -> Result<Vec<u8>, BackendError> {
        match self.session_of(slot) {
            None => self.local.fetch(slot, key),
            Some(session) => match self.call(&session, RequestBody::Get { key })? {
                ReplyBody::GetOk(bytes) => Ok(bytes),
                ReplyBody::NotFound => Err(BackendError::NotFound),
                _ => Err(BackendError::WorkerDead),
            },
        }
    }

    fn stats(&self, slot: usize) -> Result<WorkerStats, BackendError> {
        let epoch = self.slots[slot].lock().epoch;
        match self.session_of(slot) {
            None => Ok(self.local.stats(slot, epoch)),
            Some(session) => match self.call(&session, RequestBody::Stats)? {
                ReplyBody::StatsOk {
                    blocks,
                    bytes,
                    epoch,
                    pid,
                } => Ok(WorkerStats {
                    blocks,
                    bytes,
                    epoch,
                    pid,
                }),
                _ => Err(BackendError::WorkerDead),
            },
        }
    }

    fn on_executor_killed(&self, slot: usize, new_epoch: u64) {
        let mut state = self.slots[slot].lock();
        match std::mem::replace(&mut state.mode, SlotMode::Local) {
            SlotMode::Remote { mut child, session } => {
                session.mark_dead();
                let _ = child.kill();
                let _ = child.wait();
                if let Some(handle) = session.reader.lock().take() {
                    let _ = handle.join();
                }
            }
            SlotMode::Local => self.local.discard(slot),
        }
        if self.shut_down.load(Ordering::SeqCst) {
            return;
        }
        if slot < self.max_workers {
            self.spawn_into(&mut state, slot, new_epoch);
        } else {
            // Capped slots stay on the in-driver store across kills.
            state.epoch = new_epoch;
            self.set_local(&mut state, slot);
        }
    }

    fn worker_pid(&self, slot: usize) -> Option<u32> {
        match &self.slots[slot].lock().mode {
            SlotMode::Remote { child, .. } => Some(child.id()),
            SlotMode::Local => None,
        }
    }

    fn sigkill_worker(&self, slot: usize) -> bool {
        // Signal only: no reaping, no session teardown, no respawn — the
        // driver must *notice* through missed keepalives, exactly like a
        // machine losing a process.
        match &mut self.slots[slot].lock().mode {
            SlotMode::Remote { child, .. } => child.kill().is_ok(),
            SlotMode::Local => false,
        }
    }

    fn real_worker_slots(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s.lock().mode, SlotMode::Remote { .. }))
            .count()
    }

    fn shutdown(&self) {
        if self.shut_down.swap(true, Ordering::SeqCst) {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        for state in &self.slots {
            let mut state = state.lock();
            if let SlotMode::Remote { mut child, session } =
                std::mem::replace(&mut state.mode, SlotMode::Local)
            {
                // Ask politely (fire and forget), then make sure.
                let frame = Frame::Request {
                    req_id: self.next_req.fetch_add(1, Ordering::Relaxed),
                    body: RequestBody::Shutdown,
                };
                let _ = wire::write_frame(&mut *session.writer.lock(), &frame);
                let deadline = Instant::now() + Duration::from_millis(500);
                loop {
                    match child.try_wait() {
                        Ok(Some(_)) => break,
                        Ok(None) if Instant::now() < deadline => {
                            std::thread::sleep(Duration::from_millis(5))
                        }
                        _ => {
                            let _ = child.kill();
                            let _ = child.wait();
                            break;
                        }
                    }
                }
                session.mark_dead();
                // Closing our end unblocks the reader thread's read.
                let _ = session.writer.lock().shutdown(std::net::Shutdown::Both);
                if let Some(handle) = session.reader.lock().take() {
                    let _ = handle.join();
                }
            }
        }
        if let Some(handle) = self.stamper.lock().take() {
            let _ = handle.join();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

impl Drop for ProcBackend {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Finds the worker binary: `SPANGLE_WORKER_BIN`, else next to the
/// current executable (`target/<profile>/spangle_worker`, probing a few
/// ancestor directories to cover test executables under `deps/`).
fn find_worker_bin() -> Option<std::path::PathBuf> {
    if let Some(path) = std::env::var_os("SPANGLE_WORKER_BIN") {
        let path = std::path::PathBuf::from(path);
        if path.is_file() {
            return Some(path);
        }
        warn_once(&format!(
            "spangle: SPANGLE_WORKER_BIN={path:?} does not exist; trying discovery"
        ));
    }
    let exe = std::env::current_exe().ok()?;
    for dir in exe.ancestors().skip(1).take(4) {
        let candidate = dir.join("spangle_worker");
        if candidate.is_file() {
            return Some(candidate);
        }
    }
    None
}

/// Prints `msg` to stderr once per distinct message per process.
fn warn_once(msg: &str) {
    use std::collections::HashSet;
    use std::sync::OnceLock;
    static SEEN: OnceLock<Mutex<HashSet<String>>> = OnceLock::new();
    let seen = SEEN.get_or_init(|| Mutex::new(HashSet::new()));
    if seen.lock().insert(msg.to_string()) {
        eprintln!("{msg}");
    }
}
