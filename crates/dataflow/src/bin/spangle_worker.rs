//! Entry point of one executor worker process.
//!
//! Spawned by the driver's multi-process backend with
//! `spangle_worker <socket> <slot> <epoch> <heartbeat_ms>`; everything
//! else lives in [`spangle_dataflow::procw`].

use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let parsed = (|| -> Option<spangle_dataflow::procw::WorkerConfig> {
        Some(spangle_dataflow::procw::WorkerConfig {
            socket: std::path::PathBuf::from(args.get(1)?),
            slot: args.get(2)?.parse().ok()?,
            epoch: args.get(3)?.parse().ok()?,
            heartbeat: Duration::from_millis(args.get(4)?.parse().ok()?),
        })
    })();
    let Some(cfg) = parsed else {
        eprintln!("usage: spangle_worker <socket> <slot> <epoch> <heartbeat_ms>");
        std::process::exit(2);
    };
    std::process::exit(spangle_dataflow::procw::worker_main(&cfg));
}
