//! Minimal synchronisation primitives over `std::sync`.
//!
//! The runtime used to depend on `parking_lot` (locks) and `crossbeam`
//! (channels, work-stealing deques). All of it is replaced here with thin
//! wrappers over the standard library so the workspace builds with no
//! external crates at all: the locks expose the `parking_lot`-style
//! non-poisoning API (a panicked holder does not wedge every later job —
//! lineage recomputation assumes the runtime's own state stays usable
//! after a task panic), the channel module re-exports the unbounded MPSC
//! channel under the same names the scheduler and executor pool were
//! written against (plus [`channel::MuxSender`], the tagged sender the
//! shared scheduler service multiplexes every job's events through),
//! [`StealQueues`] provides the executor pool's locality-aware
//! work-stealing priority queues, [`PriorityFifo`] is the single-consumer
//! variant behind the scheduler's admission queue, and [`Subscribers`] is
//! the one-shot callback list behind the shuffle service's event-driven
//! completion notifications.

use std::collections::BTreeMap;
use std::sync::{LockResult, PoisonError};

/// Unwraps a poisoned lock into its inner guard: a panicking task must not
/// take the whole runtime's shared state down with it.
fn ignore_poison<G>(result: LockResult<G>) -> G {
    result.unwrap_or_else(PoisonError::into_inner)
}

/// A mutual-exclusion lock with the `parking_lot` calling convention:
/// `lock()` returns the guard directly and never observes poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        ignore_poison(self.0.lock())
    }
}

/// A readers-writer lock with the `parking_lot` calling convention.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        ignore_poison(self.0.read())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        ignore_poison(self.0.write())
    }
}

/// A condition variable paired with [`Mutex`] guards.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks on the guard until notified.
    pub fn wait<'a, T>(&self, guard: std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T> {
        ignore_poison(self.0.wait(guard))
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Unbounded MPSC channels under the names the runtime was written
/// against (previously `crossbeam::channel`).
pub mod channel {
    pub use std::sync::mpsc::{
        Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
    };

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }

    /// A message labelled with the integer tag of its producer, for many
    /// logical streams multiplexed onto one shared channel (the scheduler
    /// service demultiplexes job events by tag).
    #[derive(Debug)]
    pub struct Tagged<T> {
        /// Producer tag stamped by the [`MuxSender`] (a job id, in the
        /// scheduler's case).
        pub tag: usize,
        /// The message itself.
        pub msg: T,
    }

    /// A sender that stamps a fixed tag on every message before putting it
    /// on a shared `Sender<Tagged<T>>`.
    ///
    /// Handing a `MuxSender` to a producer (an executor task, a shuffle
    /// subscription) lets it post into a multiplexed event loop without
    /// ever knowing — or being able to forge — whose stream it belongs to.
    pub struct MuxSender<T> {
        tag: usize,
        tx: Sender<Tagged<T>>,
    }

    // Manual impl: `T` itself need not be `Clone`.
    impl<T> Clone for MuxSender<T> {
        fn clone(&self) -> Self {
            MuxSender {
                tag: self.tag,
                tx: self.tx.clone(),
            }
        }
    }

    impl<T> MuxSender<T> {
        /// Wraps `tx`, stamping `tag` on every message sent through.
        pub fn new(tx: Sender<Tagged<T>>, tag: usize) -> Self {
            MuxSender { tag, tx }
        }

        /// The tag stamped on every message.
        pub fn tag(&self) -> usize {
            self.tag
        }

        /// Sends `msg` tagged with this sender's tag. Fails only when the
        /// receiving loop is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<Tagged<T>>> {
            self.tx.send(Tagged { tag: self.tag, msg })
        }
    }
}

/// What [`StealQueues::next`] hands a worker.
#[derive(Debug)]
pub enum Next<T> {
    /// An item from the worker's own queue.
    Local(T),
    /// The worker's own queue was empty; this item was stolen from the
    /// back of `victim`'s queue.
    Stolen {
        /// The stolen item.
        item: T,
        /// Queue index the item was taken from.
        victim: usize,
    },
    /// The queues are closed and fully drained; the worker should exit.
    Closed,
}

/// Pushing onto closed [`StealQueues`]; hands the rejected item back.
pub struct Closed<T>(pub T);

impl<T> std::fmt::Debug for Closed<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Closed(..)")
    }
}

/// Ordering key of one queued item: ascending map order is "highest
/// priority first, FIFO within a priority" (priority is negated via
/// [`std::cmp::Reverse`], the sequence number breaks ties submission-first).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct QueueKey {
    priority: std::cmp::Reverse<i32>,
    seq: u64,
}

/// A single-consumer priority queue: highest priority pops first, strict
/// FIFO within a priority.
///
/// This is the ordering discipline of one [`StealQueues`] lane without the
/// worker/steal machinery — the scheduler service uses it as its admission
/// queue, where jobs over the concurrency bound wait for capacity. It is a
/// plain (non-`Sync`) value because the driver loop is the only consumer;
/// callers needing sharing wrap it in a [`Mutex`] themselves.
#[derive(Default)]
pub struct PriorityFifo<T> {
    items: BTreeMap<QueueKey, T>,
    /// Submission counter, the FIFO tie-breaker within a priority.
    next_seq: u64,
}

impl<T> PriorityFifo<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        PriorityFifo {
            items: BTreeMap::new(),
            next_seq: 0,
        }
    }

    /// Enqueues an item (higher priority pops first; FIFO within a
    /// priority).
    pub fn push(&mut self, priority: i32, item: T) {
        let key = QueueKey {
            priority: std::cmp::Reverse(priority),
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.items.insert(key, item);
    }

    /// Removes and returns the highest-priority, oldest item.
    pub fn pop_front(&mut self) -> Option<T> {
        self.items.pop_first().map(|(_, item)| item)
    }

    /// The item [`PriorityFifo::pop_front`] would return, without removing
    /// it.
    pub fn front(&self) -> Option<&T> {
        self.items.first_key_value().map(|(_, item)| item)
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates queued items in pop order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.values()
    }

    /// Removes and returns every item matching `pred`, preserving pop
    /// order among the extracted items (used to pull expired jobs out of
    /// the admission queue without disturbing the rest).
    pub fn extract(&mut self, mut pred: impl FnMut(&T) -> bool) -> Vec<T> {
        let keys: Vec<QueueKey> = self
            .items
            .iter()
            .filter(|(_, item)| pred(item))
            .map(|(key, _)| *key)
            .collect();
        keys.into_iter()
            .map(|key| self.items.remove(&key).expect("key taken from the map"))
            .collect()
    }

    /// Removes and returns every queued item in pop order.
    pub fn drain(&mut self) -> Vec<T> {
        std::mem::take(&mut self.items).into_values().collect()
    }
}

struct QueuesState<T> {
    queues: Vec<BTreeMap<QueueKey, T>>,
    /// Global submission counter, the FIFO tie-breaker within a priority.
    next_seq: u64,
    closed: bool,
    /// Workers banned from stealing (quarantined executors). A banned
    /// worker still drains its own queue, and siblings may still steal
    /// *from* it — the ban only stops it taking new work from others.
    steal_banned: Vec<bool>,
}

/// A fixed set of priority work queues with locality-aware stealing.
///
/// Each worker owns one queue: items pushed for it are popped in priority
/// order (highest first), FIFO within a priority — so equal-priority
/// traffic behaves exactly like the plain FIFO deques this replaced, while
/// a high-priority job's tasks overtake queued lower-priority work instead
/// of waiting out the submission interleaving. A worker whose own queue is
/// empty steals one item from the *back* of the currently longest sibling
/// queue (its lowest-priority, newest item, leaving urgent work to the
/// owner) — but only when that queue holds at least
/// [`StealQueues::MIN_STEAL_LEN`] items, so a victim that is merely
/// keeping up never loses the single task placed on it (the locality
/// guard: perfectly balanced loads see zero steals).
///
/// [`StealQueues::close`] stops accepting pushes and switches the steal
/// threshold to one, so already-queued items are drained exactly once —
/// each by its owner or by any still-live sibling — before workers see
/// [`Next::Closed`]. All queues share one lock; at executor-pool scale
/// (tens of workers, tasks that do real work) the lock is never the
/// bottleneck, and it makes pop/steal trivially race-free.
pub struct StealQueues<T> {
    state: Mutex<QueuesState<T>>,
    /// Signalled on push and on close.
    available: Condvar,
}

impl<T> StealQueues<T> {
    /// Minimum queue length a victim must have before it can be stolen
    /// from (while the queues are open).
    pub const MIN_STEAL_LEN: usize = 2;

    /// Creates `n` empty queues.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "at least one queue is required");
        StealQueues {
            state: Mutex::new(QueuesState {
                queues: (0..n).map(|_| BTreeMap::new()).collect(),
                next_seq: 0,
                closed: false,
                steal_banned: vec![false; n],
            }),
            available: Condvar::new(),
        }
    }

    /// Number of queues.
    pub fn num_queues(&self) -> usize {
        self.state.lock().queues.len()
    }

    /// Appends an item to `owner`'s queue at the default priority (0),
    /// waking idle workers. Fails (returning the item) once the queues are
    /// closed.
    pub fn push(&self, owner: usize, item: T) -> Result<(), Closed<T>> {
        self.push_prio(owner, 0, item)
    }

    /// Enqueues an item on `owner`'s queue with an explicit priority
    /// (higher pops first; FIFO within a priority), waking idle workers.
    /// Fails (returning the item) once the queues are closed.
    pub fn push_prio(&self, owner: usize, priority: i32, item: T) -> Result<(), Closed<T>> {
        let mut st = self.state.lock();
        if st.closed {
            return Err(Closed(item));
        }
        let key = QueueKey {
            priority: std::cmp::Reverse(priority),
            seq: st.next_seq,
        };
        st.next_seq += 1;
        st.queues[owner].insert(key, item);
        drop(st);
        self.available.notify_all();
        Ok(())
    }

    /// Blocks until an item is available for `worker` (own queue first,
    /// then the busiest stealable sibling) or the queues are closed and
    /// drained.
    pub fn next(&self, worker: usize) -> Next<T> {
        let mut st = self.state.lock();
        loop {
            if let Some((_, item)) = st.queues[worker].pop_first() {
                return Next::Local(item);
            }
            let min_len = if st.closed { 1 } else { Self::MIN_STEAL_LEN };
            // A steal-banned worker only serves its own queue while the
            // queues are open; on close it may steal again so the drain
            // guarantee (every queued item runs exactly once) holds even
            // if every unbanned sibling has already exited.
            let victim = if st.steal_banned[worker] && !st.closed {
                None
            } else {
                st.queues
                    .iter()
                    .enumerate()
                    .filter(|(i, q)| *i != worker && q.len() >= min_len)
                    .max_by_key(|(_, q)| q.len())
                    .map(|(i, _)| i)
            };
            if let Some(victim) = victim {
                let (_, item) = st.queues[victim]
                    .pop_last()
                    .expect("victim emptied while the queue lock was held");
                return Next::Stolen { item, victim };
            }
            if st.closed {
                return Next::Closed;
            }
            st = self.available.wait(st);
        }
    }

    /// Stops accepting pushes and wakes every worker so the queues drain.
    /// Idempotent.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.available.notify_all();
    }

    /// Whether [`StealQueues::close`] has run.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }

    /// Bans or re-admits `worker` as a thief (quarantine drain). Banning
    /// never strands work: the worker keeps draining its own queue, and
    /// lifting the ban wakes it in case siblings have stealable backlog.
    pub fn set_steal_ban(&self, worker: usize, banned: bool) {
        self.state.lock().steal_banned[worker] = banned;
        if !banned {
            self.available.notify_all();
        }
    }

    /// Current length of queue `i` (racy; for reporting only).
    pub fn len(&self, i: usize) -> usize {
        self.state.lock().queues[i].len()
    }
}

/// A drain-on-fire list of one-shot callbacks.
///
/// The shuffle service keeps one `Subscribers<bool>` per in-flight map
/// stage; completion fires `true`, abandonment fires `false`. The list is
/// meant to be *taken out* of whatever lock guards it (`std::mem::take`)
/// and fired after the lock is released, so callbacks may freely call back
/// into the guarded structure.
pub struct Subscribers<A>(Vec<Box<dyn FnOnce(A) + Send>>);

impl<A> Default for Subscribers<A> {
    fn default() -> Self {
        Subscribers(Vec::new())
    }
}

impl<A: Clone> Subscribers<A> {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers one callback.
    pub fn push(&mut self, callback: Box<dyn FnOnce(A) + Send>) {
        self.0.push(callback);
    }

    /// Number of registered callbacks.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether no callbacks are registered.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Invokes every callback with `arg`, consuming the list.
    pub fn fire(self, arg: A) {
        for callback in self.0 {
            callback(arg.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_survives_a_panicked_holder() {
        let lock = Arc::new(Mutex::new(1u64));
        let l2 = Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _guard = l2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*lock.lock(), 1, "lock must stay usable after poisoning");
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let lock = RwLock::new(7u64);
        let a = lock.read();
        let b = lock.read();
        assert_eq!(*a + *b, 14);
    }

    #[test]
    fn channel_roundtrip() {
        let (tx, rx) = channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1u64).unwrap();
        tx2.send(2u64).unwrap();
        assert_eq!(rx.recv().unwrap() + rx.recv().unwrap(), 3);
    }

    #[test]
    fn own_queue_is_served_fifo_before_stealing() {
        let q = StealQueues::new(2);
        q.push(0, 1u64).unwrap();
        q.push(0, 2).unwrap();
        q.push(1, 9).unwrap();
        assert!(matches!(q.next(0), Next::Local(1)));
        assert!(matches!(q.next(0), Next::Local(2)));
        assert!(matches!(q.next(1), Next::Local(9)));
    }

    #[test]
    fn idle_worker_steals_from_the_back_of_the_busiest_queue() {
        let q = StealQueues::new(3);
        q.push(0, 1u64).unwrap();
        q.push(0, 2).unwrap();
        q.push(0, 3).unwrap();
        q.push(1, 4).unwrap();
        // Worker 2 owns nothing; queue 0 (len 3) beats queue 1 (len 1,
        // below the steal threshold), and the steal comes from the back.
        match q.next(2) {
            Next::Stolen { item, victim } => {
                assert_eq!(item, 3);
                assert_eq!(victim, 0);
            }
            other => panic!("expected a steal, got {other:?}"),
        }
    }

    #[test]
    fn lone_items_are_never_stolen_while_open() {
        let q = Arc::new(StealQueues::new(2));
        q.push(0, 7u64).unwrap();
        // Worker 1 must not steal queue 0's only item; it blocks until its
        // own arrives.
        let t = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.next(1))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(1, 8).unwrap();
        assert!(matches!(t.join().unwrap(), Next::Local(8)));
        assert!(matches!(q.next(0), Next::Local(7)));
    }

    #[test]
    fn close_drains_every_item_exactly_once_even_lone_ones() {
        let q = StealQueues::new(2);
        q.push(0, 1u64).unwrap();
        q.push(1, 2).unwrap();
        q.close();
        assert!(q.push(0, 3).is_err(), "closed queues reject pushes");
        // After close the steal threshold drops to one: worker 1 drains
        // its own item and then steals worker 0's lone leftover.
        let mut seen = vec![];
        loop {
            match q.next(1) {
                Next::Local(v) => seen.push(v),
                Next::Stolen { item, .. } => seen.push(item),
                Next::Closed => break,
            }
        }
        seen.sort();
        assert_eq!(seen, vec![1, 2]);
        assert!(matches!(q.next(0), Next::Closed));
    }

    #[test]
    fn steal_ban_stops_thieving_but_not_draining() {
        let q = Arc::new(StealQueues::new(2));
        q.push(0, 1u64).unwrap();
        q.push(0, 2).unwrap();
        q.push(0, 3).unwrap();
        q.push(1, 9).unwrap();
        // Banned worker 1 still serves its own queue but must not steal
        // from queue 0's stealable backlog; it blocks instead.
        q.set_steal_ban(1, true);
        assert!(matches!(q.next(1), Next::Local(9)));
        let t = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.next(1))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!t.is_finished(), "banned worker must not steal");
        // Siblings may still steal *from* the banned worker's queue.
        q.push(1, 10).unwrap();
        q.push(1, 11).unwrap();
        assert!(matches!(t.join().unwrap(), Next::Local(10)));
        match q.next(0) {
            Next::Local(1) => {}
            other => panic!("owner keeps its queue, got {other:?}"),
        }
        // Lifting the ban re-admits the thief.
        q.set_steal_ban(1, false);
        assert!(matches!(q.next(1), Next::Local(11)));
        assert!(matches!(q.next(1), Next::Stolen { item: 3, victim: 0 }));
        // On close the ban is overridden so the drain guarantee holds.
        q.set_steal_ban(1, true);
        q.close();
        assert!(matches!(q.next(1), Next::Stolen { item: 2, victim: 0 }));
        assert!(matches!(q.next(1), Next::Closed));
    }

    #[test]
    fn mux_sender_tags_every_message() {
        let (tx, rx) = channel::unbounded();
        let a = channel::MuxSender::new(tx.clone(), 7);
        let b = channel::MuxSender::new(tx, 9);
        let a2 = a.clone();
        assert_eq!(a.tag(), 7);
        assert_eq!(a2.tag(), 7);
        a.send("x").unwrap();
        b.send("y").unwrap();
        a2.send("z").unwrap();
        let got: Vec<(usize, &str)> = (0..3)
            .map(|_| rx.recv().map(|t| (t.tag, t.msg)).unwrap())
            .collect();
        assert_eq!(got, vec![(7, "x"), (9, "y"), (7, "z")]);
    }

    #[test]
    fn higher_priority_items_overtake_queued_work() {
        let q = StealQueues::new(1);
        q.push_prio(0, 0, "low-1").unwrap();
        q.push_prio(0, 0, "low-2").unwrap();
        q.push_prio(0, 5, "high").unwrap();
        q.push_prio(0, 0, "low-3").unwrap();
        fn pop(q: &StealQueues<&'static str>) -> &'static str {
            match q.next(0) {
                Next::Local(v) => v,
                other => panic!("expected local pop, got {other:?}"),
            }
        }
        assert_eq!(pop(&q), "high", "priority 5 overtakes the queued backlog");
        // Equal priorities keep strict FIFO order.
        assert_eq!(pop(&q), "low-1");
        assert_eq!(pop(&q), "low-2");
        assert_eq!(pop(&q), "low-3");
    }

    #[test]
    fn steals_take_the_lowest_priority_newest_item() {
        let q = StealQueues::new(2);
        q.push_prio(0, 3, "urgent").unwrap();
        q.push_prio(0, 0, "bulk-1").unwrap();
        q.push_prio(0, 0, "bulk-2").unwrap();
        // Worker 1 is idle: its steal must leave the owner's urgent work
        // alone and take the back of the queue (lowest priority, newest).
        match q.next(1) {
            Next::Stolen { item, victim } => {
                assert_eq!(item, "bulk-2");
                assert_eq!(victim, 0);
            }
            other => panic!("expected a steal, got {other:?}"),
        }
        assert!(matches!(q.next(0), Next::Local("urgent")));
    }

    #[test]
    fn priority_fifo_orders_by_priority_then_fifo() {
        let mut q = PriorityFifo::new();
        q.push(0, "low-1");
        q.push(5, "high");
        q.push(0, "low-2");
        q.push(-1, "bulk");
        assert_eq!(q.len(), 4);
        assert_eq!(q.front(), Some(&"high"));
        assert_eq!(q.pop_front(), Some("high"));
        assert_eq!(q.pop_front(), Some("low-1"));
        assert_eq!(q.pop_front(), Some("low-2"));
        assert_eq!(q.pop_front(), Some("bulk"));
        assert!(q.is_empty());
        assert_eq!(q.pop_front(), None);
    }

    #[test]
    fn priority_fifo_extract_pulls_matching_items_only() {
        let mut q = PriorityFifo::new();
        for v in [1u64, 2, 3, 4] {
            q.push(0, v);
        }
        let evens = q.extract(|v| v % 2 == 0);
        assert_eq!(evens, vec![2, 4]);
        assert_eq!(q.iter().copied().collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(q.drain(), vec![1, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn subscribers_fire_once_with_the_argument() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = Arc::new(AtomicUsize::new(0));
        let mut subs = Subscribers::new();
        assert!(subs.is_empty());
        for _ in 0..3 {
            let hits = Arc::clone(&hits);
            subs.push(Box::new(move |ok: bool| {
                if ok {
                    hits.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        assert_eq!(subs.len(), 3);
        subs.fire(true);
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }
}
