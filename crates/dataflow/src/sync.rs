//! Minimal synchronisation primitives over `std::sync`.
//!
//! The runtime used to depend on `parking_lot` (locks) and `crossbeam`
//! (channels). Both are replaced here with thin wrappers over the standard
//! library so the workspace builds with no external crates at all: the
//! locks expose the `parking_lot`-style non-poisoning API (a panicked
//! holder does not wedge every later job — lineage recomputation assumes
//! the runtime's own state stays usable after a task panic), and the
//! channel module re-exports the unbounded MPSC channel under the same
//! names the scheduler and executor pool were written against.

use std::sync::{LockResult, PoisonError};

/// Unwraps a poisoned lock into its inner guard: a panicking task must not
/// take the whole runtime's shared state down with it.
fn ignore_poison<G>(result: LockResult<G>) -> G {
    result.unwrap_or_else(PoisonError::into_inner)
}

/// A mutual-exclusion lock with the `parking_lot` calling convention:
/// `lock()` returns the guard directly and never observes poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        ignore_poison(self.0.lock())
    }
}

/// A readers-writer lock with the `parking_lot` calling convention.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        ignore_poison(self.0.read())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        ignore_poison(self.0.write())
    }
}

/// A condition variable paired with [`Mutex`] guards.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks on the guard until notified.
    pub fn wait<'a, T>(&self, guard: std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T> {
        ignore_poison(self.0.wait(guard))
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Unbounded MPSC channels under the names the runtime was written
/// against (previously `crossbeam::channel`).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender};

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_survives_a_panicked_holder() {
        let lock = Arc::new(Mutex::new(1u64));
        let l2 = Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _guard = l2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*lock.lock(), 1, "lock must stay usable after poisoning");
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let lock = RwLock::new(7u64);
        let a = lock.read();
        let b = lock.read();
        assert_eq!(*a + *b, 14);
    }

    #[test]
    fn channel_roundtrip() {
        let (tx, rx) = channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1u64).unwrap();
        tx2.send(2u64).unwrap();
        assert_eq!(rx.recv().unwrap() + rx.recv().unwrap(), 3);
    }
}
