#![warn(missing_docs)]

//! An in-memory distributed dataflow runtime — the Apache Spark substitute
//! that Spangle runs on.
//!
//! The Spangle paper builds on Spark's Resilient Distributed Datasets
//! (RDDs): lazily evaluated, partitioned, fault-tolerant collections whose
//! lineage graph is cut into *stages* at shuffle boundaries by a DAG
//! scheduler. This crate reproduces that execution model inside one
//! process so that every experiment in the paper can run without a cluster:
//!
//! * a [`SpangleContext`] owns a simulated cluster of *executors* (worker
//!   threads) with deterministic partition placement;
//! * [`Rdd<T>`] is a typed, lazily evaluated lineage node supporting the
//!   Spark transformations Spangle uses (`map`, `filter`, `flat_map`,
//!   `map_partitions`, `union`, `zip_partitions`) and pair-RDD shuffles
//!   (`reduce_by_key`, `group_by_key`, `partition_by`, `join`, `cogroup`);
//! * actions (`collect`, `count`, `reduce`, …) trigger the
//!   [`scheduler`], which splits the lineage into stages at
//!   [`shuffle`] dependencies and runs tasks on the executor pool;
//! * all shuffled records pass through an in-memory shuffle service that
//!   charges their deep size ([`MemSize`]) to job [`metrics`], so the
//!   paper's network-volume arguments stay measurable;
//! * partitions may be cached ([`Rdd::persist`]) in the block manager, and
//!   lost blocks or failed task attempts (see [`failure`]) are recovered by
//!   lineage recomputation, exactly like Spark's fault-tolerance story;
//! * the whole *executor* is a failure domain: every shuffle block and
//!   cached partition is attributed to the executor incarnation that
//!   produced it, [`SpangleContext::kill_executor`] discards all of it and
//!   seats a replacement, and a reduce task that then finds a shuffle
//!   block missing fails with [`TaskError::FetchFailed`] — the scheduler
//!   re-runs exactly the lost map partitions from lineage (never the
//!   survivors) under a per-job resubmission budget before replaying the
//!   reduce, so iterative jobs survive executor deaths mid-flight.
//!
//! The runtime is intentionally conservative about what it models: there is
//! no serialization format and no real network. What *is* modelled — stage
//! boundaries, shuffle volume, task scheduling, caching, recomputation — is
//! precisely the set of mechanisms the Spangle evaluation reasons about.

pub mod backend;
pub mod cache;
pub mod context;
pub(crate) mod env;
pub mod executor;
pub mod failure;
pub mod health;
pub mod memsize;
pub mod metrics;
pub mod ops;
pub mod partitioner;
pub mod plan;
pub mod procw;
pub mod rdd;
pub mod remote;
pub mod scheduler;
pub mod shuffle;
pub(crate) mod spill;
pub mod sync;
pub mod wire;

pub use backend::{BackendKind, ExecutorBackend, WorkerStats};
pub use context::{Broadcast, ExecutorLoss, SpangleContext, SpangleContextBuilder};
pub use executor::{
    cancellation_point, is_task_cancelled, BlockOrigin, CancelGauge, CancelToken, CancelledError,
};
pub use health::{HealthConfig, RetryBackoffConfig};
pub use memsize::{put_len, MemSize, SpillCursor};
pub use metrics::{JobOutcome, JobReport, MetricsSnapshot, StageOutcome, StageReport};
pub use partitioner::{
    HashPartitioner, ModPartitioner, Partitioner, PartitionerSig, RangePartitioner,
};
pub use plan::PlanNodeInfo;
pub use rdd::pair::PairRdd;
pub use rdd::Rdd;
pub use remote::{
    remote_collect_pairs, remote_exchange, remote_map, remote_pagerank_step, remote_source,
    remote_zip, BucketRef, ShardHandle,
};
pub use scheduler::{submit_job, JobError, JobHandle, SpeculationConfig, TaskError};

/// Marker for types that can be elements of an [`Rdd`].
///
/// Elements must be cheap-ish to clone (they move between lineage stages by
/// value), sendable across executor threads, and able to report their deep
/// memory size for shuffle-volume accounting.
pub trait Data: Clone + Send + Sync + MemSize + 'static {}
impl<T: Clone + Send + Sync + MemSize + 'static> Data for T {}

/// Marker for types usable as shuffle keys.
pub trait Key: Data + std::hash::Hash + Eq {}
impl<T: Data + std::hash::Hash + Eq> Key for T {}
