//! The length-prefixed wire protocol spoken between the driver and the
//! worker processes of the multi-process executor backend.
//!
//! Frames are hand-rolled over the PR 8 spill primitives (`put_len` and
//! `SpillCursor`) — no serialization framework, std only. Every frame is
//!
//! ```text
//! "SPW1" | type: u8 | len: u64 LE | crc: u64 LE | payload (len bytes)
//! ```
//!
//! where `crc` is the FNV-1a64 of the payload (the same hash the spill
//! files use). A frame that is short, oversized, carries a bad magic, an
//! unknown type, a mismatched checksum, or a payload its type cannot
//! decode is *torn*: the reader reports `WireError::Torn` and the
//! connection is considered broken — the failure discipline above this
//! layer turns that into a typed fetch failure or a worker-loss wait,
//! never into silently truncated data.
//!
//! The protocol is deliberately small: a worker announces itself with
//! `Hello`, keeps itself alive with `Heartbeat` (stamped into the
//! driver's `HealthBoard` by the session reader thread), and otherwise
//! answers driver `Request`s (`Run` a named operator, `Get` a stored
//! block, `Stats`, `Shutdown`) with correlated `Reply` frames.

use crate::memsize::{put_len, SpillCursor};
use std::io::{Read, Write};

/// Frame preamble, first on the wire.
pub(crate) const MAGIC: [u8; 4] = *b"SPW1";

/// Upper bound a reader accepts for one payload; anything larger is torn
/// (a corrupted length prefix would otherwise ask for an absurd
/// allocation).
pub(crate) const MAX_FRAME_PAYLOAD: u64 = 1 << 32;

const FRAME_HELLO: u8 = 1;
const FRAME_HEARTBEAT: u8 = 2;
const FRAME_REQUEST: u8 = 3;
const FRAME_REPLY: u8 = 4;

const REQ_RUN: u8 = 1;
const REQ_GET: u8 = 2;
const REQ_STATS: u8 = 3;
const REQ_SHUTDOWN: u8 = 4;

const REPLY_RUN_OK: u8 = 0;
const REPLY_GET_OK: u8 = 1;
const REPLY_STATS_OK: u8 = 2;
const REPLY_NOT_FOUND: u8 = 3;
const REPLY_OP_ERROR: u8 = 4;
const REPLY_SHUTTING_DOWN: u8 = 5;

const INPUT_INLINE: u8 = 0;
const INPUT_LOCAL: u8 = 1;

/// FNV-1a64 of `bytes` — the frame checksum (identical to the spill-file
/// hash, so a torn frame and a corrupt spill page fail the same way).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Identity of one block in a worker's store. The remote data plane keys
/// blocks `(namespace, index)` where the namespace is a driver-allocated
/// RDD-id-like tag, so deterministic replay regenerates the same key.
pub type BlockKey = (u64, u64);

/// Size and checksum of one stored block, as reported by the worker that
/// holds it. The fetch path verifies the checksum end to end.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockMeta {
    /// Encoded length of the block in bytes.
    pub len: u64,
    /// FNV-1a64 of the encoded block.
    pub checksum: u64,
}

/// One operator input: bytes shipped inline with the request, or a key
/// into the worker's own store (the local fast path).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpInput {
    /// The encoded input travels with the request.
    Inline(Vec<u8>),
    /// The input is already resident on the worker under this key.
    Local(BlockKey),
}

/// A driver-to-worker request body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum RequestBody {
    /// Run the named registry operator over `inputs`, storing its outputs
    /// under `out_keys` and replying with their [`BlockMeta`]s. Re-running
    /// with outputs already stored is answered from the store (operators
    /// are deterministic, so the cached bytes are the recompute's bytes).
    Run {
        /// Registry name of the operator.
        op: String,
        /// Operator argument bytes (the operator defines the encoding).
        args: Vec<u8>,
        /// Operator inputs, in operator-defined order.
        inputs: Vec<OpInput>,
        /// Store keys for the operator's outputs, one per output.
        out_keys: Vec<BlockKey>,
    },
    /// Fetch one stored block's bytes.
    Get {
        /// Key of the block to fetch.
        key: BlockKey,
    },
    /// Report the worker's store size, epoch, and pid.
    Stats,
    /// Drain and exit.
    Shutdown,
}

/// A worker-to-driver reply body, correlated by request id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum ReplyBody {
    /// `Run` succeeded; one meta per requested output key.
    RunOk(Vec<BlockMeta>),
    /// `Get` found the block.
    GetOk(Vec<u8>),
    /// `Stats` snapshot.
    StatsOk {
        /// Blocks resident in the worker's store.
        blocks: u64,
        /// Total encoded bytes of those blocks.
        bytes: u64,
        /// Incarnation the worker was spawned for.
        epoch: u64,
        /// OS pid of the worker process.
        pid: u64,
    },
    /// `Get` found nothing under the key.
    NotFound,
    /// The operator returned an error (a *task* failure, not a transport
    /// failure: the worker is healthy and the message explains the op).
    OpError(String),
    /// Acknowledges `Shutdown`; the worker exits after sending this.
    ShuttingDown,
}

/// One decoded frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Frame {
    /// First frame a worker sends: which slot and incarnation it serves.
    Hello {
        /// Executor slot the worker owns.
        slot: u64,
        /// Incarnation it was spawned for.
        epoch: u64,
    },
    /// Periodic keepalive. `beats` increments per frame; `op_progress`
    /// increments only while an operator body is advancing, so the
    /// driver's no-progress watchdog keeps working through this backend.
    Heartbeat {
        /// Monotone keepalive counter.
        beats: u64,
        /// Monotone operator-progress counter.
        op_progress: u64,
    },
    /// A driver request.
    Request {
        /// Correlates the eventual reply.
        req_id: u64,
        /// What to do.
        body: RequestBody,
    },
    /// A worker reply.
    Reply {
        /// The request this answers.
        req_id: u64,
        /// The answer.
        body: ReplyBody,
    },
}

/// Why a frame could not be read.
#[derive(Debug)]
pub(crate) enum WireError {
    /// Clean end of stream at a frame boundary (peer closed).
    Eof,
    /// Transport error mid-frame.
    Io(std::io::Error),
    /// The bytes on the wire do not decode to a frame: short read,
    /// bad magic, oversized length, checksum mismatch, or an undecodable
    /// payload. The connection is unusable from here on.
    Torn(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Eof => write!(f, "connection closed"),
            WireError::Io(e) => write!(f, "transport error: {e}"),
            WireError::Torn(why) => write!(f, "torn frame: {why}"),
        }
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_len(out, bytes.len());
    out.extend_from_slice(bytes);
}

fn take_bytes(cur: &mut SpillCursor<'_>) -> Option<Vec<u8>> {
    let n = cur.len_prefix()?;
    cur.take(n).map(|b| b.to_vec())
}

fn put_key(out: &mut Vec<u8>, key: BlockKey) {
    put_u64(out, key.0);
    put_u64(out, key.1);
}

fn take_key(cur: &mut SpillCursor<'_>) -> Option<BlockKey> {
    Some((cur.u64()?, cur.u64()?))
}

impl Frame {
    fn frame_type(&self) -> u8 {
        match self {
            Frame::Hello { .. } => FRAME_HELLO,
            Frame::Heartbeat { .. } => FRAME_HEARTBEAT,
            Frame::Request { .. } => FRAME_REQUEST,
            Frame::Reply { .. } => FRAME_REPLY,
        }
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Frame::Hello { slot, epoch } => {
                put_u64(&mut out, *slot);
                put_u64(&mut out, *epoch);
            }
            Frame::Heartbeat { beats, op_progress } => {
                put_u64(&mut out, *beats);
                put_u64(&mut out, *op_progress);
            }
            Frame::Request { req_id, body } => {
                put_u64(&mut out, *req_id);
                match body {
                    RequestBody::Run {
                        op,
                        args,
                        inputs,
                        out_keys,
                    } => {
                        out.push(REQ_RUN);
                        put_bytes(&mut out, op.as_bytes());
                        put_bytes(&mut out, args);
                        put_len(&mut out, out_keys.len());
                        for &key in out_keys {
                            put_key(&mut out, key);
                        }
                        put_len(&mut out, inputs.len());
                        for input in inputs {
                            match input {
                                OpInput::Inline(bytes) => {
                                    out.push(INPUT_INLINE);
                                    put_bytes(&mut out, bytes);
                                }
                                OpInput::Local(key) => {
                                    out.push(INPUT_LOCAL);
                                    put_key(&mut out, *key);
                                }
                            }
                        }
                    }
                    RequestBody::Get { key } => {
                        out.push(REQ_GET);
                        put_key(&mut out, *key);
                    }
                    RequestBody::Stats => out.push(REQ_STATS),
                    RequestBody::Shutdown => out.push(REQ_SHUTDOWN),
                }
            }
            Frame::Reply { req_id, body } => {
                put_u64(&mut out, *req_id);
                match body {
                    ReplyBody::RunOk(metas) => {
                        out.push(REPLY_RUN_OK);
                        put_len(&mut out, metas.len());
                        for meta in metas {
                            put_u64(&mut out, meta.len);
                            put_u64(&mut out, meta.checksum);
                        }
                    }
                    ReplyBody::GetOk(bytes) => {
                        out.push(REPLY_GET_OK);
                        put_bytes(&mut out, bytes);
                    }
                    ReplyBody::StatsOk {
                        blocks,
                        bytes,
                        epoch,
                        pid,
                    } => {
                        out.push(REPLY_STATS_OK);
                        put_u64(&mut out, *blocks);
                        put_u64(&mut out, *bytes);
                        put_u64(&mut out, *epoch);
                        put_u64(&mut out, *pid);
                    }
                    ReplyBody::NotFound => out.push(REPLY_NOT_FOUND),
                    ReplyBody::OpError(msg) => {
                        out.push(REPLY_OP_ERROR);
                        put_bytes(&mut out, msg.as_bytes());
                    }
                    ReplyBody::ShuttingDown => out.push(REPLY_SHUTTING_DOWN),
                }
            }
        }
        out
    }

    fn decode_payload(frame_type: u8, payload: &[u8]) -> Option<Frame> {
        let mut cur = SpillCursor::new(payload);
        let frame = match frame_type {
            FRAME_HELLO => Frame::Hello {
                slot: cur.u64()?,
                epoch: cur.u64()?,
            },
            FRAME_HEARTBEAT => Frame::Heartbeat {
                beats: cur.u64()?,
                op_progress: cur.u64()?,
            },
            FRAME_REQUEST => {
                let req_id = cur.u64()?;
                let body = match cur.u8()? {
                    REQ_RUN => {
                        let op = String::from_utf8(take_bytes(&mut cur)?).ok()?;
                        let args = take_bytes(&mut cur)?;
                        let n_keys = cur.len_prefix()?;
                        let mut out_keys = Vec::with_capacity(n_keys.min(1024));
                        for _ in 0..n_keys {
                            out_keys.push(take_key(&mut cur)?);
                        }
                        let n_inputs = cur.len_prefix()?;
                        let mut inputs = Vec::with_capacity(n_inputs.min(1024));
                        for _ in 0..n_inputs {
                            inputs.push(match cur.u8()? {
                                INPUT_INLINE => OpInput::Inline(take_bytes(&mut cur)?),
                                INPUT_LOCAL => OpInput::Local(take_key(&mut cur)?),
                                _ => return None,
                            });
                        }
                        RequestBody::Run {
                            op,
                            args,
                            inputs,
                            out_keys,
                        }
                    }
                    REQ_GET => RequestBody::Get {
                        key: take_key(&mut cur)?,
                    },
                    REQ_STATS => RequestBody::Stats,
                    REQ_SHUTDOWN => RequestBody::Shutdown,
                    _ => return None,
                };
                Frame::Request { req_id, body }
            }
            FRAME_REPLY => {
                let req_id = cur.u64()?;
                let body = match cur.u8()? {
                    REPLY_RUN_OK => {
                        let n = cur.len_prefix()?;
                        let mut metas = Vec::with_capacity(n.min(1024));
                        for _ in 0..n {
                            metas.push(BlockMeta {
                                len: cur.u64()?,
                                checksum: cur.u64()?,
                            });
                        }
                        ReplyBody::RunOk(metas)
                    }
                    REPLY_GET_OK => ReplyBody::GetOk(take_bytes(&mut cur)?),
                    REPLY_STATS_OK => ReplyBody::StatsOk {
                        blocks: cur.u64()?,
                        bytes: cur.u64()?,
                        epoch: cur.u64()?,
                        pid: cur.u64()?,
                    },
                    REPLY_NOT_FOUND => ReplyBody::NotFound,
                    REPLY_OP_ERROR => {
                        ReplyBody::OpError(String::from_utf8(take_bytes(&mut cur)?).ok()?)
                    }
                    REPLY_SHUTTING_DOWN => ReplyBody::ShuttingDown,
                    _ => return None,
                };
                Frame::Reply { req_id, body }
            }
            _ => return None,
        };
        (cur.remaining() == 0).then_some(frame)
    }

    /// Encodes the full frame (header + payload) into one buffer, ready
    /// for a single `write_all`.
    pub(crate) fn encode(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(21 + payload.len());
        out.extend_from_slice(&MAGIC);
        out.push(self.frame_type());
        put_u64(&mut out, payload.len() as u64);
        put_u64(&mut out, fnv1a64(&payload));
        out.extend_from_slice(&payload);
        out
    }
}

/// Writes one frame. A single buffered `write_all` keeps frames atomic
/// with respect to interleaved writers sharing the stream behind a lock.
pub(crate) fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    w.write_all(&frame.encode())?;
    w.flush()
}

fn read_exact_or(r: &mut impl Read, buf: &mut [u8], torn: &'static str) -> Result<(), WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 {
                    WireError::Eof
                } else {
                    // The peer died mid-frame: a short read, not a clean
                    // close.
                    WireError::Torn(torn)
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(())
}

/// Reads and validates one frame. [`WireError::Eof`] means the peer
/// closed cleanly between frames; everything else means the connection is
/// broken and must not be read again.
pub(crate) fn read_frame(r: &mut impl Read) -> Result<Frame, WireError> {
    let mut header = [0u8; 21];
    read_exact_or(r, &mut header, "short header")?;
    if header[..4] != MAGIC {
        return Err(WireError::Torn("bad magic"));
    }
    let frame_type = header[4];
    let len = u64::from_le_bytes(header[5..13].try_into().unwrap());
    let crc = u64::from_le_bytes(header[13..21].try_into().unwrap());
    if len > MAX_FRAME_PAYLOAD {
        return Err(WireError::Torn("oversized payload"));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_or(r, &mut payload, "short payload")?;
    if fnv1a64(&payload) != crc {
        return Err(WireError::Torn("checksum mismatch"));
    }
    Frame::decode_payload(frame_type, &payload).ok_or(WireError::Torn("undecodable payload"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let bytes = frame.encode();
        let mut cursor = std::io::Cursor::new(bytes);
        let back = read_frame(&mut cursor).expect("frame must decode");
        assert_eq!(back, frame);
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(Frame::Hello { slot: 3, epoch: 7 });
        roundtrip(Frame::Heartbeat {
            beats: 42,
            op_progress: 9,
        });
        roundtrip(Frame::Request {
            req_id: 11,
            body: RequestBody::Run {
                op: "pr.contrib".into(),
                args: vec![1, 2, 3],
                inputs: vec![OpInput::Inline(vec![4, 5]), OpInput::Local((8, 9))],
                out_keys: vec![(1, 0), (1, 1)],
            },
        });
        roundtrip(Frame::Request {
            req_id: 12,
            body: RequestBody::Get { key: (5, 6) },
        });
        roundtrip(Frame::Request {
            req_id: 13,
            body: RequestBody::Stats,
        });
        roundtrip(Frame::Request {
            req_id: 14,
            body: RequestBody::Shutdown,
        });
        roundtrip(Frame::Reply {
            req_id: 11,
            body: ReplyBody::RunOk(vec![BlockMeta {
                len: 10,
                checksum: 0xDEAD,
            }]),
        });
        roundtrip(Frame::Reply {
            req_id: 12,
            body: ReplyBody::GetOk(vec![7; 100]),
        });
        roundtrip(Frame::Reply {
            req_id: 13,
            body: ReplyBody::StatsOk {
                blocks: 2,
                bytes: 64,
                epoch: 1,
                pid: 4242,
            },
        });
        roundtrip(Frame::Reply {
            req_id: 14,
            body: ReplyBody::NotFound,
        });
        roundtrip(Frame::Reply {
            req_id: 15,
            body: ReplyBody::OpError("boom".into()),
        });
        roundtrip(Frame::Reply {
            req_id: 16,
            body: ReplyBody::ShuttingDown,
        });
    }

    #[test]
    fn clean_eof_at_frame_boundary_is_eof_not_torn() {
        let mut cursor = std::io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(read_frame(&mut cursor), Err(WireError::Eof)));
    }

    #[test]
    fn short_frames_are_torn_not_eof() {
        let full = Frame::Hello { slot: 1, epoch: 2 }.encode();
        // Truncate inside the header and inside the payload.
        for cut in [1, 10, full.len() - 1] {
            let mut cursor = std::io::Cursor::new(full[..cut].to_vec());
            assert!(
                matches!(read_frame(&mut cursor), Err(WireError::Torn(_))),
                "cut at {cut} must be torn"
            );
        }
    }

    #[test]
    fn corrupted_frames_are_torn() {
        let mut bad_magic = Frame::Hello { slot: 1, epoch: 2 }.encode();
        bad_magic[0] = b'X';
        let mut cursor = std::io::Cursor::new(bad_magic);
        assert!(matches!(read_frame(&mut cursor), Err(WireError::Torn(_))));

        // Flip one payload byte: the checksum must catch it.
        let mut bad_crc = Frame::Heartbeat {
            beats: 1,
            op_progress: 2,
        }
        .encode();
        let last = bad_crc.len() - 1;
        bad_crc[last] ^= 0xFF;
        let mut cursor = std::io::Cursor::new(bad_crc);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::Torn("checksum mismatch"))
        ));

        // An absurd length prefix must be refused before allocating.
        let mut oversized = Frame::Hello { slot: 1, epoch: 2 }.encode();
        oversized[5..13].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut cursor = std::io::Cursor::new(oversized);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::Torn("oversized payload"))
        ));
    }

    #[test]
    fn unknown_frame_types_and_trailing_bytes_are_torn() {
        let mut unknown = Frame::Hello { slot: 1, epoch: 2 }.encode();
        unknown[4] = 200;
        let mut cursor = std::io::Cursor::new(unknown);
        assert!(matches!(read_frame(&mut cursor), Err(WireError::Torn(_))));

        // A payload with trailing garbage (but a matching checksum) is
        // still refused: every byte must be consumed by the decoder.
        let inner = Frame::Hello { slot: 1, epoch: 2 };
        let mut payload = vec![];
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&2u64.to_le_bytes());
        payload.push(99);
        let mut framed = Vec::new();
        framed.extend_from_slice(&MAGIC);
        framed.push(inner.frame_type());
        framed.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        framed.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        framed.extend_from_slice(&payload);
        let mut cursor = std::io::Cursor::new(framed);
        assert!(matches!(read_frame(&mut cursor), Err(WireError::Torn(_))));
    }
}
