//! The driver-side entry point: a handle on the simulated cluster.

use crate::backend::{backend_kind_from_env, make_backend, BackendKind, ExecutorBackend};
use crate::cache::BlockManager;
use crate::env::env_parse;
use crate::executor::ExecutorPool;
use crate::failure::FailureInjector;
use crate::health::{HealthConfig, RetryBackoffConfig};
use crate::memsize::MemSize;
use crate::metrics::{MetricField, Metrics, MetricsSnapshot, DEFAULT_JOB_REPORT_HISTORY};
use crate::plan::PlannerConfig;
use crate::rdd::sources::ParallelizeRdd;
use crate::rdd::Rdd;
use crate::scheduler::{SchedulerService, SpeculationConfig};
use crate::shuffle::ShuffleService;
use crate::Data;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Admission-control bounds evaluated by the scheduler service on every
/// job submission; configured through [`SpangleContextBuilder`]. The
/// defaults are all "unbounded": admission control is opt-in and a context
/// built without the knobs behaves exactly as before.
#[derive(Clone, Copy, Debug)]
pub(crate) struct AdmissionConfig {
    /// Jobs allowed to run concurrently at full cluster health. Further
    /// submissions wait in the admission queue (FIFO within priority).
    pub(crate) max_concurrent_jobs: usize,
    /// Upper bound on a priority level's queued task backlog: a job whose
    /// planned tasks would push its priority's queued-task total past this
    /// is shed outright ([`crate::JobOutcome::Rejected`]) instead of
    /// growing the queue without bound.
    pub(crate) max_queued_tasks_per_priority: usize,
    /// Memory saturation threshold, compared against
    /// `cached_bytes() + shuffle_resident_bytes()` at admission time. At
    /// or above it the system counts as saturated: no queued job is
    /// admitted, and sheddable submissions are rejected.
    pub(crate) memory_high_watermark_bytes: usize,
    /// While the system is saturated, submissions with priority strictly
    /// below this threshold are shed ([`crate::JobOutcome::Rejected`])
    /// instead of queued. `None` means never shed on priority.
    pub(crate) shed_below_priority: Option<i32>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_concurrent_jobs: usize::MAX,
            max_queued_tasks_per_priority: usize::MAX,
            memory_high_watermark_bytes: usize::MAX,
            shed_below_priority: None,
        }
    }
}

/// Shared state of one simulated cluster.
pub(crate) struct ContextInner {
    /// Declared before `pool` so the driver loop shuts down and joins
    /// before the executor workers do on drop.
    pub(crate) scheduler: SchedulerService,
    pub(crate) pool: ExecutorPool,
    /// Declared after `pool` so worker processes outlive the executor
    /// threads that talk to them, and are torn down right after those
    /// threads join on drop.
    pub(crate) backend: Arc<dyn ExecutorBackend>,
    pub(crate) shuffle: ShuffleService,
    pub(crate) cache: BlockManager,
    pub(crate) metrics: Metrics,
    pub(crate) failures: FailureInjector,
    next_rdd_id: AtomicUsize,
    next_shuffle_id: AtomicUsize,
    next_stage_id: AtomicUsize,
    next_job_id: AtomicUsize,
    /// Maximum attempts per task before the job fails.
    pub(crate) max_task_attempts: usize,
    /// Per-job budget of executor-loss / fetch-failure resubmissions
    /// before the job aborts.
    pub(crate) max_resubmissions: usize,
    /// Admission-control bounds enforced by the scheduler service.
    pub(crate) admission: AdmissionConfig,
    /// Which plan rewrites (fusion / elision / coalescing) are active.
    pub(crate) planner: PlannerConfig,
    /// When the driver duplicates straggling task attempts.
    pub(crate) speculation: SpeculationConfig,
    /// Whether crossing the memory watermark demotes cold blocks to the
    /// on-disk spill tier (instead of only shedding/queueing work).
    pub(crate) spill_enabled: bool,
    /// Heartbeat/watchdog/quarantine thresholds for the driver's health
    /// monitor.
    pub(crate) health: HealthConfig,
    /// Seeded exponential backoff applied to every retry path.
    pub(crate) backoff: RetryBackoffConfig,
}

/// A handle on the simulated cluster; the analogue of Spark's
/// `SparkContext`. Cloning is cheap and shares the cluster.
#[derive(Clone)]
pub struct SpangleContext {
    pub(crate) inner: Arc<ContextInner>,
}

/// Configures and starts a [`SpangleContext`]; obtained from
/// [`SpangleContext::builder`].
///
/// ```
/// use spangle_dataflow::{SpangleContext, SpeculationConfig};
/// use std::time::Duration;
///
/// let ctx = SpangleContext::builder()
///     .executors(4)
///     .max_task_attempts(2)
///     .max_resubmissions(8)
///     .job_report_history(16)
///     .max_concurrent_jobs(8)
///     .max_queued_tasks_per_priority(1024)
///     .memory_high_watermark_bytes(64 << 20)
///     .spill_to_disk(true)
///     .shed_below_priority(0)
///     .fuse_narrow_chains(true)
///     .elide_shuffles(true)
///     .coalesce_partitions(true)
///     .target_partition_bytes(1 << 20)
///     .speculation(SpeculationConfig {
///         enabled: true,
///         multiplier: 3.0,
///         min_runtime: Duration::from_millis(5),
///     })
///     .heartbeat_interval(Duration::from_millis(50))
///     .missed_heartbeat_limit(8)
///     .watchdog_interval(Duration::from_secs(5))
///     .quarantine_threshold(0.4)
///     .quarantine_probation(Duration::from_millis(200))
///     .build();
/// assert_eq!(ctx.num_executors(), 4);
/// assert_eq!(ctx.max_task_attempts(), 2);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct SpangleContextBuilder {
    executors: usize,
    max_task_attempts: usize,
    max_resubmissions: usize,
    job_report_history: usize,
    admission: AdmissionConfig,
    planner: PlannerConfig,
    speculation: SpeculationConfig,
    spill_to_disk: bool,
    health: HealthConfig,
    backoff: RetryBackoffConfig,
    backend: Option<BackendKind>,
}

impl Default for SpangleContextBuilder {
    fn default() -> Self {
        let mut admission = AdmissionConfig::default();
        // `SPANGLE_MEMORY_WATERMARK_BYTES` seeds the watermark default so a
        // whole test/bench run can be forced under memory pressure without
        // touching code; an explicit builder call still wins (it is applied
        // after this default).
        if let Some(bytes) = env_parse::<usize>("SPANGLE_MEMORY_WATERMARK_BYTES") {
            admission.memory_high_watermark_bytes = bytes;
        }
        SpangleContextBuilder {
            executors: 2,
            max_task_attempts: 4,
            max_resubmissions: 16,
            job_report_history: DEFAULT_JOB_REPORT_HISTORY,
            admission,
            planner: PlannerConfig::default(),
            speculation: SpeculationConfig::default(),
            spill_to_disk: std::env::var_os("SPANGLE_DISABLE_SPILL").is_none_or(|v| v == "0"),
            health: HealthConfig::default(),
            backoff: RetryBackoffConfig::default(),
            backend: None,
        }
    }
}

impl SpangleContextBuilder {
    /// Number of single-threaded executors in the cluster (default 2).
    pub fn executors(mut self, num_executors: usize) -> Self {
        self.executors = num_executors;
        self
    }

    /// Maximum attempts per task before the job aborts (default 4).
    pub fn max_task_attempts(mut self, attempts: usize) -> Self {
        assert!(attempts > 0, "a task needs at least one attempt");
        self.max_task_attempts = attempts;
        self
    }

    /// Per-job budget of recovery resubmissions — attempts replayed after
    /// an executor loss or a fetch failure, which do not charge the
    /// per-task attempt budget — before the job aborts instead of chasing
    /// a permanently poisoned shuffle (default 16).
    pub fn max_resubmissions(mut self, resubmissions: usize) -> Self {
        self.max_resubmissions = resubmissions;
        self
    }

    /// How many recent [`crate::metrics::JobReport`]s the context retains
    /// (default 256, clamped to at least 1).
    pub fn job_report_history(mut self, depth: usize) -> Self {
        self.job_report_history = depth;
        self
    }

    /// Bounds how many jobs run concurrently (default unbounded).
    /// Submissions past the bound wait in the scheduler's admission queue,
    /// highest priority first, FIFO within a priority. The bound scales
    /// down with cluster health: while a replacement executor seated by
    /// [`SpangleContext::kill_executor`] has not yet completed its first
    /// task, capacity is derated by `healthy / num_executors` (floored at
    /// one running job, so admission never deadlocks).
    pub fn max_concurrent_jobs(mut self, jobs: usize) -> Self {
        assert!(jobs > 0, "at least one concurrent job is required");
        self.admission.max_concurrent_jobs = jobs;
        self
    }

    /// Bounds the task backlog a single priority level may queue for
    /// admission (default unbounded). A job whose planned tasks would push
    /// its priority's queued-task total past the bound is shed with
    /// [`crate::JobOutcome::Rejected`] — hard backpressure instead of an
    /// unbounded queue.
    pub fn max_queued_tasks_per_priority(mut self, tasks: usize) -> Self {
        self.admission.max_queued_tasks_per_priority = tasks;
        self
    }

    /// Memory saturation threshold in bytes, compared against
    /// `cached_bytes() + shuffle_resident_bytes()` at every admission
    /// decision and every block deposit (default unbounded; the
    /// `SPANGLE_MEMORY_WATERMARK_BYTES` environment variable overrides the
    /// default, an explicit call here wins). Crossing the watermark first
    /// spills cold blocks to disk (see
    /// [`SpangleContextBuilder::spill_to_disk`]); only if spilling cannot
    /// bring residency back down does the system count as saturated —
    /// queued jobs then wait for memory to drain and sheddable submissions
    /// are rejected.
    pub fn memory_high_watermark_bytes(mut self, bytes: usize) -> Self {
        self.admission.memory_high_watermark_bytes = bytes;
        self
    }

    /// While the system is saturated, shed submissions whose priority is
    /// strictly below `threshold` with [`crate::JobOutcome::Rejected`]
    /// instead of queueing them (default: never shed on priority).
    pub fn shed_below_priority(mut self, threshold: i32) -> Self {
        self.admission.shed_below_priority = Some(threshold);
        self
    }

    /// Enables or disables the on-disk spill tier (default on; the
    /// `SPANGLE_DISABLE_SPILL` environment variable flips the default off,
    /// an explicit call here wins). With spilling on, crossing the memory
    /// watermark demotes the least-recently-fetched shuffle blocks and
    /// cached partitions to accounted spill files and rehydrates them on
    /// demand; with it off the watermark falls back to shedding and
    /// queueing work, the pre-spill behavior.
    pub fn spill_to_disk(mut self, enabled: bool) -> Self {
        self.spill_to_disk = enabled;
        self
    }

    /// Enables or disables narrow-chain fusion: chains of one-parent
    /// narrow transforms (map / filter / flat_map / map_partitions)
    /// execute as one fused streaming task instead of materialising an
    /// intermediate `Vec` per lineage node. Persisted RDDs and
    /// multi-consumer nodes are fusion barriers, so cache semantics and
    /// lineage recovery are unchanged. Default on; the
    /// `SPANGLE_DISABLE_PLANNER` environment variable flips the default
    /// off (explicit calls always win).
    pub fn fuse_narrow_chains(mut self, enabled: bool) -> Self {
        self.planner.fuse_narrow_chains = enabled;
        self
    }

    /// Enables or disables plan-time shuffle elision: a shuffle whose
    /// map-side parent already carries the target
    /// [`crate::PartitionerSig`] is rewritten into a narrow pass-through
    /// — no shuffle id, no blocks, no map stage. Applies to every shuffle
    /// site (`partition_by`, `reduce_by_key`, `group_by_key`,
    /// `combine_by_key`, `cogroup`, `join`). Default on; see
    /// [`SpangleContextBuilder::fuse_narrow_chains`] for the environment
    /// override.
    pub fn elide_shuffles(mut self, enabled: bool) -> Self {
        self.planner.elide_shuffles = enabled;
        self
    }

    /// Enables or disables runtime partition coalescing: when a reduce
    /// stage becomes ready, adjacent buckets whose recorded shuffle bytes
    /// fall below the [`SpangleContextBuilder::target_partition_bytes`]
    /// target are packed into shared executor tasks. Logical partitions
    /// (and therefore fetch-failure recovery) are unchanged — only the
    /// scheduling granularity coarsens. Default on; see
    /// [`SpangleContextBuilder::fuse_narrow_chains`] for the environment
    /// override.
    pub fn coalesce_partitions(mut self, enabled: bool) -> Self {
        self.planner.coalesce_partitions = enabled;
        self
    }

    /// Byte target one coalesced reduce task aims to cover (default
    /// 1 MiB). Balanced stages never coalesce below one group per
    /// executor regardless of the target.
    pub fn target_partition_bytes(mut self, bytes: usize) -> Self {
        assert!(bytes > 0, "the coalescing target must be positive");
        self.planner.target_partition_bytes = bytes;
        self
    }

    /// Configures speculative execution for straggling task attempts (see
    /// [`SpeculationConfig`]): a running original whose elapsed time
    /// exceeds the configured multiple of its stage's median completed
    /// duration is duplicated on an idle executor; the first completion
    /// wins and the loser is cancelled through its token. Default on at
    /// 4× the median with a 10 ms floor; the `SPANGLE_DISABLE_SPECULATION`
    /// environment variable flips the default off (an explicit call here
    /// always wins).
    pub fn speculation(mut self, config: SpeculationConfig) -> Self {
        assert!(
            config.multiplier >= 1.0,
            "a speculation multiplier below 1 would duplicate faster-than-median tasks"
        );
        self.speculation = config;
        self
    }

    /// Expected spacing of executor heartbeats (default 100 ms; the
    /// `SPANGLE_HEARTBEAT_MS` environment variable overrides the default,
    /// an explicit call here wins). Heartbeats come from the pool's
    /// dedicated heartbeater thread — not from task bodies, so a body
    /// deep in a long compute kernel never looks dead. Together with
    /// [`SpangleContextBuilder::missed_heartbeat_limit`] this sets the
    /// loss threshold: a *busy* executor silent for
    /// `heartbeat_interval * missed_heartbeat_limit` is declared lost by
    /// the driver's monitor and killed through the normal
    /// [`SpangleContext::kill_executor`] recovery path. Idle executors
    /// (blocked on their queues) are exempt.
    pub fn heartbeat_interval(mut self, interval: std::time::Duration) -> Self {
        assert!(
            !interval.is_zero(),
            "a zero heartbeat interval would declare everything lost"
        );
        self.health.heartbeat_interval = interval;
        self
    }

    /// Consecutive missed heartbeats before a busy executor is declared
    /// lost (default 10). The defaults keep the loss threshold well above
    /// any transient stall of the heartbeater itself.
    pub fn missed_heartbeat_limit(mut self, limit: u32) -> Self {
        assert!(limit > 0, "at least one heartbeat must be missable");
        self.health.missed_heartbeat_limit = limit;
        self
    }

    /// No-progress watchdog: a running task whose executor still
    /// heartbeats but whose chunk-boundary progress counter has not moved
    /// for this long is duplicated through the speculation path (default
    /// 10 s; the `SPANGLE_WATCHDOG_MS` environment variable overrides the
    /// default, an explicit call here wins).
    pub fn watchdog_interval(mut self, interval: std::time::Duration) -> Self {
        assert!(
            !interval.is_zero(),
            "a zero watchdog would duplicate every task"
        );
        self.health.watchdog_interval = interval;
        self
    }

    /// Recent task-failure rate at or above which an executor is
    /// quarantined: drained, excluded from placement/steals/speculation,
    /// re-admitted after probation with one canary task (default 0.5).
    pub fn quarantine_threshold(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "a failure rate is in [0, 1]");
        self.health.quarantine_threshold = rate;
        self
    }

    /// How long a quarantined executor is drained before probation offers
    /// it a canary task (default 250 ms; doubled with seeded jitter each
    /// time a canary fails).
    pub fn quarantine_probation(mut self, probation: std::time::Duration) -> Self {
        self.health.probation = probation;
        self
    }

    /// Enables or disables the whole health-monitoring layer — heartbeat
    /// loss detection, the no-progress watchdog, and quarantine (default
    /// on; the `SPANGLE_DISABLE_HEALTH` environment variable flips the
    /// default off, an explicit call here wins). Off restores the
    /// announced-failures-only behavior: only `kill_executor` and
    /// injected failures trigger recovery.
    pub fn health_monitoring(mut self, enabled: bool) -> Self {
        self.health.enabled = enabled;
        self
    }

    /// Seeded deterministic exponential backoff with jitter applied
    /// before every re-submitted task attempt — failure retries and
    /// executor-loss/fetch-failure resubmissions (see
    /// [`RetryBackoffConfig`]). Default on at 1 ms base, 64 ms cap;
    /// `SPANGLE_DISABLE_HEALTH=1` flips the default off so the kill
    /// switch restores immediate-retry behavior exactly.
    pub fn retry_backoff(mut self, config: RetryBackoffConfig) -> Self {
        self.backoff = config;
        self
    }

    /// Which executor backend the cluster runs on (default: the
    /// `SPANGLE_BACKEND` environment knob, falling back to
    /// [`BackendKind::InProc`]). Under [`BackendKind::Proc`] every
    /// executor slot is served by a real worker *process* whose
    /// keepalives feed the health plane — see the "Executor backends"
    /// section of DESIGN.md.
    pub fn backend(mut self, kind: BackendKind) -> Self {
        self.backend = Some(kind);
        self
    }

    /// Starts the cluster.
    pub fn build(self) -> SpangleContext {
        let pool = ExecutorPool::new(self.executors);
        let backend = make_backend(
            self.backend.unwrap_or_else(backend_kind_from_env),
            self.executors,
            pool.health_board(),
            self.health.heartbeat_interval,
        );
        // A backend that stamps heartbeats itself (worker keepalives +
        // the degraded-slot stamper) replaces the in-process heartbeater:
        // running both would let driver threads vouch for dead processes.
        if self.health.enabled && !backend.provides_heartbeats() {
            pool.start_heartbeater(self.health.heartbeat_interval);
        }
        let failures = FailureInjector::default();
        failures.attach_health(pool.health_board());
        SpangleContext {
            inner: Arc::new(ContextInner {
                scheduler: SchedulerService::new(),
                pool,
                backend,
                shuffle: ShuffleService::default(),
                cache: BlockManager::default(),
                metrics: Metrics::with_history(self.job_report_history),
                failures,
                next_rdd_id: AtomicUsize::new(0),
                next_shuffle_id: AtomicUsize::new(0),
                next_stage_id: AtomicUsize::new(0),
                next_job_id: AtomicUsize::new(0),
                max_task_attempts: self.max_task_attempts,
                max_resubmissions: self.max_resubmissions,
                admission: self.admission,
                planner: self.planner,
                speculation: self.speculation,
                spill_enabled: self.spill_to_disk,
                health: self.health,
                backoff: self.backoff,
            }),
        }
    }
}

impl SpangleContext {
    /// Starts a cluster of `num_executors` single-threaded executors with
    /// default settings; see [`SpangleContext::builder`] for the knobs.
    pub fn new(num_executors: usize) -> Self {
        SpangleContext::builder().executors(num_executors).build()
    }

    /// A builder for a cluster with non-default fault-tolerance or
    /// observability settings.
    pub fn builder() -> SpangleContextBuilder {
        SpangleContextBuilder::default()
    }

    /// Maximum attempts per task before a job aborts, as configured at
    /// build time.
    pub fn max_task_attempts(&self) -> usize {
        self.inner.max_task_attempts
    }

    /// Runs `f` with every job submitted from this thread scheduled at
    /// `priority` (higher is served first; everything outside such a scope
    /// runs in the default FIFO pool at priority 0). Queued tasks of a
    /// higher-priority job overtake lower-priority work on the executors;
    /// [`crate::metrics::JobReport::queue_wait_nanos`] shows the effect.
    /// Scopes nest, and the previous priority is restored on exit.
    pub fn run_with_priority<O>(&self, priority: i32, f: impl FnOnce() -> O) -> O {
        crate::scheduler::with_job_priority(priority, f)
    }

    /// Runs `f` with every job submitted from this thread carrying a
    /// wall-clock `budget`: a job that has not finished when the budget
    /// elapses is aborted through the normal abort path (partial shuffle
    /// output abandoned, a [`crate::JobOutcome::Deadlined`] report
    /// recorded) and its action returns a
    /// [`crate::TaskError::DeadlineExceeded`] error. A job still waiting
    /// in the admission queue when its deadline passes never runs at all.
    /// Scopes nest (the inner budget wins for jobs submitted inside it),
    /// and the previous deadline is restored on exit.
    pub fn run_with_deadline<O>(&self, budget: std::time::Duration, f: impl FnOnce() -> O) -> O {
        crate::scheduler::with_job_deadline(budget, f)
    }

    /// Number of executors in the cluster.
    pub fn num_executors(&self) -> usize {
        self.inner.pool.num_executors()
    }

    /// Distributes a local vector over `num_partitions` partitions,
    /// preserving element order across partition boundaries.
    pub fn parallelize<T: Data>(&self, data: Vec<T>, num_partitions: usize) -> Rdd<T> {
        ParallelizeRdd::create(self, data, num_partitions)
    }

    /// Ships a read-only value to every executor.
    ///
    /// In-process this is an `Arc` clone; its deep size is charged once per
    /// executor to the broadcast metric, mirroring a real torrent broadcast.
    pub fn broadcast<T: MemSize + Send + Sync>(&self, value: T) -> Broadcast<T> {
        let bytes = value.mem_size() as u64 * self.num_executors() as u64;
        self.metrics().add(MetricField::BroadcastBytes, bytes);
        Broadcast {
            value: Arc::new(value),
        }
    }

    /// Cumulative metric counters.
    pub(crate) fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// The plan rewrites active for this cluster (fixed at build time).
    pub(crate) fn planner(&self) -> &PlannerConfig {
        &self.inner.planner
    }

    /// Snapshot of the cumulative counters; subtract two to cost a job.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    /// The failure injector used by fault-tolerance tests.
    pub fn failure_injector(&self) -> &FailureInjector {
        &self.inner.failures
    }

    /// Kills an executor: its current incarnation is retired (any attempt
    /// still running on it will report [`crate::TaskError::ExecutorLost`]
    /// and its deposits are refused), every shuffle block and cached
    /// partition it produced is discarded, and a replacement incarnation
    /// is seated in the same slot — placement stays deterministic and
    /// queued tasks simply run on the replacement. Dependent jobs discover
    /// the lost shuffle output through
    /// [`crate::TaskError::FetchFailed`] and rebuild exactly the missing
    /// map partitions from lineage.
    ///
    /// Callable from any thread, including (via the failure injector's
    /// `kill_executor_after`) from the dying executor itself right after a
    /// task body finishes.
    pub fn kill_executor(&self, executor: usize) -> ExecutorLoss {
        assert!(
            executor < self.num_executors(),
            "executor {executor} out of range (cluster has {})",
            self.num_executors()
        );
        let incarnation = self.inner.pool.kill(executor);
        let (shuffle_blocks_dropped, shuffle_bytes_dropped) =
            self.inner.shuffle.discard_executor(executor);
        let (cached_partitions_dropped, cached_bytes_dropped) =
            self.inner.cache.discard_executor(executor);
        // The dead incarnation's worker process (and every block it held)
        // goes with it; the backend seats a replacement for the new epoch.
        self.inner.backend.on_executor_killed(executor, incarnation);
        self.metrics().add(MetricField::ExecutorsLost, 1);
        ExecutorLoss {
            executor,
            incarnation,
            shuffle_blocks_dropped,
            shuffle_bytes_dropped,
            cached_partitions_dropped,
            cached_bytes_dropped,
        }
    }

    /// Which executor backend this cluster runs on.
    pub fn backend_kind(&self) -> BackendKind {
        self.inner.backend.kind()
    }

    /// OS pid of `executor`'s worker process, when the backend runs one.
    pub fn worker_pid(&self, executor: usize) -> Option<u32> {
        self.inner.backend.worker_pid(executor)
    }

    /// Snapshot of `executor`'s backend block store, when reachable.
    pub fn worker_stats(&self, executor: usize) -> Option<crate::backend::WorkerStats> {
        self.inner.backend.stats(executor).ok()
    }

    /// Number of executor slots currently served by real worker
    /// processes (0 under the in-process backend).
    pub fn real_worker_slots(&self) -> usize {
        self.inner.backend.real_worker_slots()
    }

    /// Chaos hook: `SIGKILL` the worker process serving `executor` and
    /// tell no part of the driver about it. Detection must come from the
    /// health plane noticing the missed socket keepalives — this is how
    /// the crash-recovery gate simulates a machine losing a process.
    /// Returns whether a process was actually signalled (always `false`
    /// under the in-process backend and for degraded slots).
    pub fn sigkill_worker(&self, executor: usize) -> bool {
        self.inner.backend.sigkill_worker(executor)
    }

    /// Drops a cached partition, simulating the loss of an executor's
    /// block; the next access recomputes it from lineage. Counted in the
    /// `partitions_evicted` metric when a block was actually present.
    pub fn evict_cached_partition(&self, rdd_id: usize, partition: usize) -> bool {
        let evicted = self
            .inner
            .cache
            .evict(crate::cache::CacheKey { rdd_id, partition });
        if evicted {
            self.metrics().add(MetricField::PartitionsEvicted, 1);
        }
        evicted
    }

    /// Total bytes currently held by the block manager.
    pub fn cached_bytes(&self) -> usize {
        self.inner.cache.resident_bytes()
    }

    /// Total bytes currently held by the shuffle service.
    pub fn shuffle_resident_bytes(&self) -> usize {
        self.inner.shuffle.resident_bytes()
    }

    /// Bytes currently held by the on-disk spill tiers of the shuffle
    /// service and the block manager together (framed file sizes). This is
    /// the live gauge; the monotone high-water mark is
    /// [`crate::MetricsSnapshot::disk_resident_bytes`].
    pub fn disk_resident_bytes(&self) -> usize {
        self.inner.shuffle.disk_bytes() + self.inner.cache.disk_bytes()
    }

    /// Brings resident cache + shuffle memory back under the admission
    /// watermark by demoting cold blocks to the spill tier: shuffle blocks
    /// first (their reads already pay a fetch), then cached partitions.
    /// Spills down to a quarter below the watermark so one deposit does
    /// not thrash the tier boundary. Returns whether residency is below
    /// the watermark afterwards — `false` means the remaining blocks are
    /// unspillable (or spilling is disabled) and admission control should
    /// treat memory as saturated.
    pub(crate) fn enforce_memory_watermark(&self) -> bool {
        let watermark = self.inner.admission.memory_high_watermark_bytes;
        if watermark == usize::MAX {
            return true;
        }
        let resident = self.cached_bytes() + self.shuffle_resident_bytes();
        if resident < watermark {
            return true;
        }
        if !self.inner.spill_enabled {
            return false;
        }
        let target = watermark - watermark / 4;
        let need = resident - target;
        let freed = self.inner.shuffle.spill_up_to(self, need);
        if freed < need {
            self.inner.cache.spill_up_to(self, need - freed);
        }
        self.cached_bytes() + self.shuffle_resident_bytes() < watermark
    }

    /// Cumulative nanoseconds each executor has spent running task bodies
    /// since the cluster started, indexed by executor id. Per-job busy
    /// times live in [`crate::metrics::JobReport::executor_busy_nanos`].
    pub fn executor_busy_nanos(&self) -> Vec<u64> {
        self.inner.pool.busy_nanos()
    }

    /// Cumulative tasks each executor stole from a sibling since the
    /// cluster started, indexed by the thief.
    pub fn executor_steals(&self) -> Vec<u64> {
        self.inner.pool.steals_per_executor()
    }

    /// Executors currently excluded from placement by the failure-rate
    /// quarantine: drained, on probation, or mid-canary. Empty on a
    /// healthy cluster (and always empty with health monitoring off).
    pub fn quarantined_executors(&self) -> Vec<usize> {
        self.inner.pool.health_board().quarantined_executors()
    }

    pub(crate) fn new_rdd_id(&self) -> usize {
        self.inner.next_rdd_id.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn new_shuffle_id(&self) -> usize {
        self.inner.next_shuffle_id.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn new_stage_id(&self) -> usize {
        self.inner.next_stage_id.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn new_job_id(&self) -> usize {
        self.inner.next_job_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Scheduler reports of recent jobs, oldest first (bounded history).
    pub fn job_reports(&self) -> Vec<crate::metrics::JobReport> {
        self.inner.metrics.job_reports()
    }

    /// The most recently finished job's scheduler report.
    pub fn last_job_report(&self) -> Option<crate::metrics::JobReport> {
        self.inner.metrics.last_job_report()
    }
}

/// What [`SpangleContext::kill_executor`] destroyed: the retired slot and
/// incarnation plus everything discarded with it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecutorLoss {
    /// Slot of the killed executor.
    pub executor: usize,
    /// Incarnation now seated in the slot (the replacement's epoch).
    pub incarnation: u64,
    /// Shuffle blocks dropped with the dead incarnation.
    pub shuffle_blocks_dropped: usize,
    /// Deep bytes of those shuffle blocks.
    pub shuffle_bytes_dropped: usize,
    /// Cached partitions dropped with the dead incarnation.
    pub cached_partitions_dropped: usize,
    /// Deep bytes of those cached partitions.
    pub cached_bytes_dropped: usize,
}

/// A read-only value replicated to every executor.
pub struct Broadcast<T: ?Sized> {
    value: Arc<T>,
}

impl<T: ?Sized> Clone for Broadcast<T> {
    fn clone(&self) -> Self {
        Broadcast {
            value: self.value.clone(),
        }
    }
}

impl<T: ?Sized> Broadcast<T> {
    /// The broadcast value.
    pub fn value(&self) -> &T {
        &self.value
    }
}

impl<T: ?Sized> std::ops::Deref for Broadcast<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_hands_out_unique_ids() {
        let ctx = SpangleContext::new(2);
        let a = ctx.new_rdd_id();
        let b = ctx.new_rdd_id();
        assert_ne!(a, b);
        assert_ne!(ctx.new_shuffle_id(), ctx.new_shuffle_id());
    }

    #[test]
    fn broadcast_charges_bytes_per_executor() {
        let ctx = SpangleContext::new(4);
        let before = ctx.metrics_snapshot();
        let b = ctx.broadcast(vec![0u64; 100]);
        assert_eq!(b.value().len(), 100);
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(delta.broadcast_bytes, 4 * (800 + 24));
    }

    #[test]
    fn broadcast_is_shared_not_copied() {
        let ctx = SpangleContext::new(2);
        let b = ctx.broadcast(String::from("shared"));
        let c = b.clone();
        assert!(std::ptr::eq(b.value(), c.value()));
    }
}
