//! The block manager: cached (persisted) RDD partitions.
//!
//! `rdd.persist()` stores each computed partition the first time an action
//! needs it; later jobs reuse the block instead of recomputing the lineage.
//! Evicting a block (as a failure simulation, or for memory pressure)
//! silently falls back to lineage recomputation — the Spark fault-tolerance
//! contract the paper's iterative algorithms (PageRank, SGD) lean on.
//!
//! Every block is attributed to the executor incarnation
//! ([`BlockOrigin`]) that computed it; killing an executor
//! ([`crate::SpangleContext::kill_executor`]) discards its blocks via
//! [`BlockManager::discard_executor`] and the next access recomputes them,
//! exactly like a single-block eviction.
//!
//! Like the shuffle service, the cache is tiered: under memory pressure
//! (see [`crate::SpangleContext`]'s watermark enforcement) cold blocks are
//! encoded with the spill codec and demoted to disk, and a later `get`
//! rehydrates them instead of recomputing lineage. This slots a rung into
//! the degradation ladder — resident hit, then disk hit, then lineage
//! recompute — so crossing the watermark costs IO before it costs CPU. A
//! spilled block whose file turns out torn simply misses (returns `None`)
//! and lineage recomputes it: the cache's usual contract.

use crate::executor::BlockOrigin;
use crate::metrics::MetricField;
use crate::spill::{SpillCodec, SpillStore};
use crate::sync::RwLock;
use crate::{Data, SpangleContext};
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Key of a cached partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The persisted RDD.
    pub rdd_id: usize,
    /// Partition index.
    pub partition: usize,
}

type CachedBlock = Arc<dyn Any + Send + Sync>;

/// Where one cached partition's records currently live.
enum StoredBlock {
    /// On the heap; `get` clones the `Arc`, not the records.
    Resident(CachedBlock),
    /// Encoded in the manager's spill store.
    Spilled { file: u64, disk_len: usize },
}

/// One cached partition with its tier, accounting, and spill identity.
struct CacheEntry {
    data: StoredBlock,
    /// Deep size of the records (counted in `resident_bytes` while
    /// resident).
    bytes: usize,
    origin: BlockOrigin,
    /// Captured at `put`, where the element type is still concrete; `None`
    /// pins the block resident.
    codec: Option<SpillCodec>,
    /// Last-access tick; spilling evicts the smallest first.
    touch: AtomicU64,
}

/// In-memory store of persisted partitions with an on-disk spill tier.
#[derive(Default)]
pub struct BlockManager {
    blocks: RwLock<HashMap<CacheKey, CacheEntry>>,
    /// Bytes of the `Resident` tier, maintained under the `blocks` write
    /// lock (O(1) reads instead of a map walk; debug builds assert it
    /// against the walk in every mutating op).
    resident: AtomicUsize,
    /// Monotone access clock feeding each entry's `touch`.
    clock: AtomicU64,
    /// On-disk tier for spilled partitions.
    spill: SpillStore,
}

impl BlockManager {
    /// See [`crate::shuffle::ShuffleService`]'s counterpart: exact because
    /// the counter only moves under the blocks write lock.
    fn debug_check_resident(&self, blocks: &HashMap<CacheKey, CacheEntry>) {
        debug_assert_eq!(
            self.resident.load(Ordering::Relaxed),
            blocks
                .values()
                .filter(|e| matches!(e.data, StoredBlock::Resident(_)))
                .map(|e| e.bytes)
                .sum::<usize>(),
            "cache resident-bytes counter drifted from the block map"
        );
    }

    /// Releases one entry's accounting (resident bytes or spill file).
    fn release(&self, entry: &CacheEntry) {
        match entry.data {
            StoredBlock::Resident(_) => {
                self.resident.fetch_sub(entry.bytes, Ordering::Relaxed);
            }
            StoredBlock::Spilled { file, disk_len } => self.spill.remove(file, disk_len),
        }
    }

    /// Looks up a cached partition, downcasting to its element vector. A
    /// spilled partition is rehydrated transparently; a torn spill file
    /// reads as a miss (`None`) and the caller recomputes from lineage.
    pub fn get<T: Data>(&self, ctx: &SpangleContext, key: CacheKey) -> Option<Arc<Vec<T>>> {
        loop {
            let (file, disk_len, codec) = {
                let guard = self.blocks.read();
                let entry = guard.get(&key)?;
                match &entry.data {
                    StoredBlock::Resident(block) => {
                        entry.touch.store(
                            self.clock.fetch_add(1, Ordering::Relaxed),
                            Ordering::Relaxed,
                        );
                        return Some(
                            block
                                .clone()
                                .downcast::<Vec<T>>()
                                .expect("cached block type mismatch"),
                        );
                    }
                    StoredBlock::Spilled { file, disk_len } => (
                        *file,
                        *disk_len,
                        entry.codec.expect("spilled cache block without a codec"),
                    ),
                }
            };
            let decoded = self
                .spill
                .read(file)
                .and_then(|payload| codec.decode(&payload));
            let mut blocks = self.blocks.write();
            let entry = blocks.get_mut(&key)?;
            match entry.data {
                StoredBlock::Resident(_) => continue,
                StoredBlock::Spilled { file: f, .. } if f != file => continue,
                StoredBlock::Spilled { .. } => {}
            }
            let Some(payload) = decoded else {
                // Torn spill file: drop the entry; the caller falls back to
                // lineage recomputation, the cache's normal miss path.
                let entry = blocks.remove(&key).expect("entry checked above");
                self.release(&entry);
                self.debug_check_resident(&blocks);
                return None;
            };
            entry.data = StoredBlock::Resident(payload.clone());
            entry.touch.store(
                self.clock.fetch_add(1, Ordering::Relaxed),
                Ordering::Relaxed,
            );
            let bytes = entry.bytes;
            self.resident.fetch_add(bytes, Ordering::Relaxed);
            self.spill.remove(file, disk_len);
            self.debug_check_resident(&blocks);
            drop(blocks);
            ctx.metrics().add(MetricField::BlocksRehydrated, 1);
            ctx.enforce_memory_watermark();
            return Some(
                payload
                    .downcast::<Vec<T>>()
                    .expect("cached block type mismatch after rehydrate"),
            );
        }
    }

    /// Stores a computed partition with its deep size in bytes, attributed
    /// to the executor incarnation that computed it.
    pub fn put<T: Data>(
        &self,
        key: CacheKey,
        data: Arc<Vec<T>>,
        bytes: usize,
        origin: BlockOrigin,
    ) {
        let entry = CacheEntry {
            data: StoredBlock::Resident(data),
            bytes,
            origin,
            codec: SpillCodec::of::<T>(),
            touch: AtomicU64::new(self.clock.fetch_add(1, Ordering::Relaxed)),
        };
        let mut blocks = self.blocks.write();
        self.resident.fetch_add(bytes, Ordering::Relaxed);
        if let Some(old) = blocks.insert(key, entry) {
            self.release(&old);
        }
        self.debug_check_resident(&blocks);
    }

    /// Demotes cold resident partitions to the disk tier until roughly
    /// `need` resident bytes are freed; least-recently-accessed first.
    /// Returns the bytes actually freed.
    pub(crate) fn spill_up_to(&self, ctx: &SpangleContext, need: usize) -> usize {
        let mut freed = 0usize;
        let mut spilled_blocks = 0u64;
        let mut spilled_disk = 0u64;
        {
            let mut blocks = self.blocks.write();
            let mut candidates: Vec<(CacheKey, u64)> = blocks
                .iter()
                .filter(|(_, e)| e.codec.is_some() && matches!(e.data, StoredBlock::Resident(_)))
                .map(|(key, e)| (*key, e.touch.load(Ordering::Relaxed)))
                .collect();
            candidates.sort_unstable_by_key(|&(_, touch)| touch);
            for (key, _) in candidates {
                if freed >= need {
                    break;
                }
                let entry = blocks
                    .get(&key)
                    .expect("candidate vanished under write lock");
                let StoredBlock::Resident(payload) = &entry.data else {
                    continue;
                };
                let codec = entry.codec.expect("candidates are filtered on codec");
                let encoded = codec.encode(payload.as_ref());
                let Ok((file, disk_len)) = self.spill.write(&encoded) else {
                    break;
                };
                let entry = blocks.get_mut(&key).expect("still under the write lock");
                entry.data = StoredBlock::Spilled { file, disk_len };
                self.resident.fetch_sub(entry.bytes, Ordering::Relaxed);
                freed += entry.bytes;
                spilled_blocks += 1;
                spilled_disk += disk_len as u64;
            }
            self.debug_check_resident(&blocks);
        }
        if spilled_blocks > 0 {
            ctx.metrics()
                .add(MetricField::BlocksSpilled, spilled_blocks);
            ctx.metrics().add(MetricField::SpillBytes, spilled_disk);
            ctx.metrics().raise(
                MetricField::DiskResidentBytes,
                ctx.disk_resident_bytes() as u64,
            );
        }
        freed
    }

    /// Discards every cached partition the given executor produced (any
    /// incarnation), spilled ones included — a dead incarnation's data is
    /// stale on disk too. Returns `(partitions_dropped, bytes_dropped)`
    /// with logical record bytes for both tiers.
    pub fn discard_executor(&self, executor: usize) -> (usize, usize) {
        let mut blocks = self.blocks.write();
        let before = blocks.len();
        let mut bytes_dropped = 0;
        blocks.retain(|_, entry| {
            let keep = !entry.origin.lives_on(executor);
            if !keep {
                bytes_dropped += entry.bytes;
                self.release(entry);
            }
            keep
        });
        self.debug_check_resident(&blocks);
        (before - blocks.len(), bytes_dropped)
    }

    /// Removes one block (simulating executor loss of that partition).
    /// Returns true when a block was present.
    pub fn evict(&self, key: CacheKey) -> bool {
        let mut blocks = self.blocks.write();
        match blocks.remove(&key) {
            Some(entry) => {
                self.release(&entry);
                self.debug_check_resident(&blocks);
                true
            }
            None => false,
        }
    }

    /// Removes every cached partition of an RDD (`unpersist`), returning
    /// how many blocks were dropped (so callers can charge the
    /// `partitions_evicted` metric).
    pub fn evict_rdd(&self, rdd_id: usize) -> usize {
        let mut blocks = self.blocks.write();
        let before = blocks.len();
        blocks.retain(|k, entry| {
            let keep = k.rdd_id != rdd_id;
            if !keep {
                self.release(entry);
            }
            keep
        });
        self.debug_check_resident(&blocks);
        before - blocks.len()
    }

    /// Number of cached blocks (both tiers).
    pub fn num_blocks(&self) -> usize {
        self.blocks.read().len()
    }

    /// Total bytes of cached data resident in memory (O(1); spilled
    /// partitions freed their heap bytes and do not count).
    pub fn resident_bytes(&self) -> usize {
        self.resident.load(Ordering::Relaxed)
    }

    /// Bytes currently held by the cache's on-disk spill tier (framed file
    /// sizes).
    pub fn disk_bytes(&self) -> usize {
        self.spill.disk_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_evict_roundtrip() {
        let ctx = SpangleContext::new(1);
        let bm = BlockManager::default();
        let key = CacheKey {
            rdd_id: 3,
            partition: 1,
        };
        assert!(bm.get::<u64>(&ctx, key).is_none());
        bm.put(key, Arc::new(vec![1u64, 2, 3]), 24, BlockOrigin::DRIVER);
        assert_eq!(*bm.get::<u64>(&ctx, key).unwrap(), vec![1, 2, 3]);
        assert_eq!(bm.resident_bytes(), 24);
        assert!(bm.evict(key));
        assert!(bm.get::<u64>(&ctx, key).is_none());
        assert!(!bm.evict(key));
        assert_eq!(bm.resident_bytes(), 0);
    }

    #[test]
    fn evict_rdd_removes_all_its_partitions() {
        let bm = BlockManager::default();
        for p in 0..4 {
            bm.put(
                CacheKey {
                    rdd_id: 7,
                    partition: p,
                },
                Arc::new(vec![p as u64]),
                8,
                BlockOrigin::DRIVER,
            );
        }
        bm.put(
            CacheKey {
                rdd_id: 8,
                partition: 0,
            },
            Arc::new(vec![0u64]),
            8,
            BlockOrigin::DRIVER,
        );
        assert_eq!(bm.evict_rdd(7), 4);
        assert_eq!(bm.num_blocks(), 1);
        assert_eq!(bm.evict_rdd(7), 0, "second eviction finds nothing");
        assert_eq!(bm.resident_bytes(), 8);
    }

    #[test]
    fn discard_executor_drops_only_its_partitions() {
        let ctx = SpangleContext::new(1);
        let bm = BlockManager::default();
        for p in 0..4 {
            bm.put(
                CacheKey {
                    rdd_id: 2,
                    partition: p,
                },
                Arc::new(vec![p as u64]),
                8,
                BlockOrigin::executor(p % 2, 0),
            );
        }
        assert_eq!(bm.discard_executor(1), (2, 16));
        assert_eq!(bm.num_blocks(), 2);
        for p in 0..4 {
            let key = CacheKey {
                rdd_id: 2,
                partition: p,
            };
            assert_eq!(bm.get::<u64>(&ctx, key).is_some(), p % 2 == 0);
        }
        assert_eq!(
            bm.discard_executor(5),
            (0, 0),
            "unknown executor is a no-op"
        );
    }

    #[test]
    fn spilled_partitions_rehydrate_on_get() {
        let ctx = SpangleContext::new(1);
        let bm = BlockManager::default();
        let records: Vec<(u64, f64)> = (0..50).map(|i| (i, i as f64)).collect();
        for p in 0..3 {
            bm.put(
                CacheKey {
                    rdd_id: 1,
                    partition: p,
                },
                Arc::new(records.clone()),
                800,
                BlockOrigin::DRIVER,
            );
        }
        let freed = bm.spill_up_to(&ctx, 1000);
        assert_eq!(freed, 1600, "two coldest partitions demoted");
        assert_eq!(bm.resident_bytes(), 800);
        assert!(bm.disk_bytes() > 0);
        assert_eq!(bm.num_blocks(), 3, "spilled partitions stay cached");
        let before = ctx.metrics_snapshot();
        for p in 0..3 {
            let got = bm
                .get::<(u64, f64)>(
                    &ctx,
                    CacheKey {
                        rdd_id: 1,
                        partition: p,
                    },
                )
                .expect("spilled partition must still hit");
            assert_eq!(*got, records);
        }
        assert_eq!((ctx.metrics_snapshot() - before).blocks_rehydrated, 2);
        assert_eq!(bm.resident_bytes(), 2400);
        assert_eq!(bm.disk_bytes(), 0, "rehydrated files are deleted");
    }

    #[test]
    fn discarding_an_executor_deletes_its_spilled_partitions() {
        let ctx = SpangleContext::new(2);
        let bm = BlockManager::default();
        bm.put(
            CacheKey {
                rdd_id: 1,
                partition: 0,
            },
            Arc::new(vec![1u64, 2]),
            16,
            BlockOrigin::executor(0, 0),
        );
        bm.spill_up_to(&ctx, usize::MAX);
        assert!(bm.disk_bytes() > 0);
        assert_eq!(bm.discard_executor(0), (1, 16));
        assert_eq!(bm.disk_bytes(), 0, "the spill file goes with the block");
        assert!(bm
            .get::<u64>(
                &ctx,
                CacheKey {
                    rdd_id: 1,
                    partition: 0
                }
            )
            .is_none());
    }
}
