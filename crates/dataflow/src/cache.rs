//! The block manager: cached (persisted) RDD partitions.
//!
//! `rdd.persist()` stores each computed partition the first time an action
//! needs it; later jobs reuse the block instead of recomputing the lineage.
//! Evicting a block (as a failure simulation, or for memory pressure)
//! silently falls back to lineage recomputation — the Spark fault-tolerance
//! contract the paper's iterative algorithms (PageRank, SGD) lean on.

use crate::sync::RwLock;
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

/// Key of a cached partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The persisted RDD.
    pub rdd_id: usize,
    /// Partition index.
    pub partition: usize,
}

type CachedBlock = Arc<dyn Any + Send + Sync>;

/// In-memory store of persisted partitions.
#[derive(Default)]
pub struct BlockManager {
    blocks: RwLock<HashMap<CacheKey, (CachedBlock, usize)>>,
}

impl BlockManager {
    /// Looks up a cached partition, downcasting to its element vector.
    pub fn get<T: Send + Sync + 'static>(&self, key: CacheKey) -> Option<Arc<Vec<T>>> {
        let guard = self.blocks.read();
        let (block, _) = guard.get(&key)?;
        Some(
            block
                .clone()
                .downcast::<Vec<T>>()
                .expect("cached block type mismatch"),
        )
    }

    /// Stores a computed partition with its deep size in bytes.
    pub fn put<T: Send + Sync + 'static>(&self, key: CacheKey, data: Arc<Vec<T>>, bytes: usize) {
        self.blocks.write().insert(key, (data, bytes));
    }

    /// Removes one block (simulating executor loss of that partition).
    /// Returns true when a block was present.
    pub fn evict(&self, key: CacheKey) -> bool {
        self.blocks.write().remove(&key).is_some()
    }

    /// Removes every cached partition of an RDD (`unpersist`).
    pub fn evict_rdd(&self, rdd_id: usize) {
        self.blocks.write().retain(|k, _| k.rdd_id != rdd_id);
    }

    /// Number of cached blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.read().len()
    }

    /// Total bytes of cached data.
    pub fn resident_bytes(&self) -> usize {
        self.blocks.read().values().map(|(_, b)| *b).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_evict_roundtrip() {
        let bm = BlockManager::default();
        let key = CacheKey {
            rdd_id: 3,
            partition: 1,
        };
        assert!(bm.get::<u64>(key).is_none());
        bm.put(key, Arc::new(vec![1u64, 2, 3]), 24);
        assert_eq!(*bm.get::<u64>(key).unwrap(), vec![1, 2, 3]);
        assert_eq!(bm.resident_bytes(), 24);
        assert!(bm.evict(key));
        assert!(bm.get::<u64>(key).is_none());
        assert!(!bm.evict(key));
    }

    #[test]
    fn evict_rdd_removes_all_its_partitions() {
        let bm = BlockManager::default();
        for p in 0..4 {
            bm.put(
                CacheKey {
                    rdd_id: 7,
                    partition: p,
                },
                Arc::new(vec![p as u64]),
                8,
            );
        }
        bm.put(
            CacheKey {
                rdd_id: 8,
                partition: 0,
            },
            Arc::new(vec![0u64]),
            8,
        );
        bm.evict_rdd(7);
        assert_eq!(bm.num_blocks(), 1);
    }
}
