//! The block manager: cached (persisted) RDD partitions.
//!
//! `rdd.persist()` stores each computed partition the first time an action
//! needs it; later jobs reuse the block instead of recomputing the lineage.
//! Evicting a block (as a failure simulation, or for memory pressure)
//! silently falls back to lineage recomputation — the Spark fault-tolerance
//! contract the paper's iterative algorithms (PageRank, SGD) lean on.
//!
//! Every block is attributed to the executor incarnation
//! ([`BlockOrigin`]) that computed it; killing an executor
//! ([`crate::SpangleContext::kill_executor`]) discards its blocks via
//! [`BlockManager::discard_executor`] and the next access recomputes them,
//! exactly like a single-block eviction.

use crate::executor::BlockOrigin;
use crate::sync::RwLock;
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

/// Key of a cached partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The persisted RDD.
    pub rdd_id: usize,
    /// Partition index.
    pub partition: usize,
}

type CachedBlock = Arc<dyn Any + Send + Sync>;

/// In-memory store of persisted partitions.
#[derive(Default)]
pub struct BlockManager {
    blocks: RwLock<HashMap<CacheKey, (CachedBlock, usize, BlockOrigin)>>,
}

impl BlockManager {
    /// Looks up a cached partition, downcasting to its element vector.
    pub fn get<T: Send + Sync + 'static>(&self, key: CacheKey) -> Option<Arc<Vec<T>>> {
        let guard = self.blocks.read();
        let (block, _, _) = guard.get(&key)?;
        Some(
            block
                .clone()
                .downcast::<Vec<T>>()
                .expect("cached block type mismatch"),
        )
    }

    /// Stores a computed partition with its deep size in bytes, attributed
    /// to the executor incarnation that computed it.
    pub fn put<T: Send + Sync + 'static>(
        &self,
        key: CacheKey,
        data: Arc<Vec<T>>,
        bytes: usize,
        origin: BlockOrigin,
    ) {
        self.blocks.write().insert(key, (data, bytes, origin));
    }

    /// Discards every cached partition the given executor produced (any
    /// incarnation). Returns `(partitions_dropped, bytes_dropped)`.
    pub fn discard_executor(&self, executor: usize) -> (usize, usize) {
        let mut blocks = self.blocks.write();
        let before = blocks.len();
        let mut bytes_dropped = 0;
        blocks.retain(|_, (_, bytes, origin)| {
            let keep = !origin.lives_on(executor);
            if !keep {
                bytes_dropped += *bytes;
            }
            keep
        });
        (before - blocks.len(), bytes_dropped)
    }

    /// Removes one block (simulating executor loss of that partition).
    /// Returns true when a block was present.
    pub fn evict(&self, key: CacheKey) -> bool {
        self.blocks.write().remove(&key).is_some()
    }

    /// Removes every cached partition of an RDD (`unpersist`), returning
    /// how many blocks were dropped (so callers can charge the
    /// `partitions_evicted` metric).
    pub fn evict_rdd(&self, rdd_id: usize) -> usize {
        let mut blocks = self.blocks.write();
        let before = blocks.len();
        blocks.retain(|k, _| k.rdd_id != rdd_id);
        before - blocks.len()
    }

    /// Number of cached blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.read().len()
    }

    /// Total bytes of cached data.
    pub fn resident_bytes(&self) -> usize {
        self.blocks.read().values().map(|(_, b, _)| *b).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_evict_roundtrip() {
        let bm = BlockManager::default();
        let key = CacheKey {
            rdd_id: 3,
            partition: 1,
        };
        assert!(bm.get::<u64>(key).is_none());
        bm.put(key, Arc::new(vec![1u64, 2, 3]), 24, BlockOrigin::DRIVER);
        assert_eq!(*bm.get::<u64>(key).unwrap(), vec![1, 2, 3]);
        assert_eq!(bm.resident_bytes(), 24);
        assert!(bm.evict(key));
        assert!(bm.get::<u64>(key).is_none());
        assert!(!bm.evict(key));
    }

    #[test]
    fn evict_rdd_removes_all_its_partitions() {
        let bm = BlockManager::default();
        for p in 0..4 {
            bm.put(
                CacheKey {
                    rdd_id: 7,
                    partition: p,
                },
                Arc::new(vec![p as u64]),
                8,
                BlockOrigin::DRIVER,
            );
        }
        bm.put(
            CacheKey {
                rdd_id: 8,
                partition: 0,
            },
            Arc::new(vec![0u64]),
            8,
            BlockOrigin::DRIVER,
        );
        assert_eq!(bm.evict_rdd(7), 4);
        assert_eq!(bm.num_blocks(), 1);
        assert_eq!(bm.evict_rdd(7), 0, "second eviction finds nothing");
    }

    #[test]
    fn discard_executor_drops_only_its_partitions() {
        let bm = BlockManager::default();
        for p in 0..4 {
            bm.put(
                CacheKey {
                    rdd_id: 2,
                    partition: p,
                },
                Arc::new(vec![p as u64]),
                8,
                BlockOrigin::executor(p % 2, 0),
            );
        }
        assert_eq!(bm.discard_executor(1), (2, 16));
        assert_eq!(bm.num_blocks(), 2);
        for p in 0..4 {
            let key = CacheKey {
                rdd_id: 2,
                partition: p,
            };
            assert_eq!(bm.get::<u64>(key).is_some(), p % 2 == 0);
        }
        assert_eq!(
            bm.discard_executor(5),
            (0, 0),
            "unknown executor is a no-op"
        );
    }
}
