//! The DAG scheduler: cuts lineage into stages and runs tasks.
//!
//! An action walks the lineage graph of its target RDD, collects every
//! shuffle dependency in topological order, runs the map stage of each
//! not-yet-materialised shuffle, and finally runs the result stage. Stages
//! whose shuffle output already exists are *skipped* (Spark's skipped-stage
//! reuse); failed task attempts are retried up to the context's limit, and
//! anything recomputed on retry is rebuilt from lineage.
//!
//! Tasks must never trigger nested actions: all actions run on the driver
//! thread, tasks run on executor threads.

use crate::context::SpangleContext;
use crate::failure::TaskSite;
use crate::metrics::MetricField;
use crate::rdd::pair::ShuffleDepDyn;
use crate::rdd::{Dependency, LineageNode, Rdd};
use crate::Data;
use crossbeam::channel::unbounded;
use std::collections::HashSet;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;

/// Information available to a running task.
#[derive(Clone, Copy, Debug)]
pub struct TaskContext {
    /// Stage the task belongs to.
    pub stage_id: usize,
    /// Partition the task computes.
    pub partition: usize,
    /// Zero-based attempt number (>0 on retries).
    pub attempt: usize,
}

/// Why one task attempt failed.
#[derive(Clone, Debug)]
pub enum TaskError {
    /// The failure injector killed this attempt.
    Injected,
    /// User code panicked.
    Panicked(String),
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::Injected => write!(f, "injected failure"),
            TaskError::Panicked(msg) => write!(f, "task panicked: {msg}"),
        }
    }
}

/// A job failed: some task exhausted its attempts.
#[derive(Clone, Debug)]
pub struct JobError {
    /// Stage of the failing task.
    pub stage_id: usize,
    /// Partition of the failing task.
    pub partition: usize,
    /// Attempts made.
    pub attempts: usize,
    /// The final attempt's error.
    pub last_error: TaskError,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job aborted: stage {} partition {} failed after {} attempts: {}",
            self.stage_id, self.partition, self.attempts, self.last_error
        )
    }
}

impl std::error::Error for JobError {}

/// Runs `func` over every partition of `rdd`, returning one result per
/// partition in partition order. This is the single entry point every
/// action lowers to.
pub fn run_job<T: Data, R: Send + 'static>(
    rdd: &Rdd<T>,
    func: impl Fn(usize, Arc<Vec<T>>) -> R + Send + Sync + 'static,
) -> Result<Vec<R>, JobError> {
    let ctx = rdd.context().clone();

    // Map stages, parents before children.
    for dep in topo_shuffle_deps(rdd.lineage()) {
        if ctx.inner.shuffle.is_completed(dep.shuffle_id()) {
            ctx.metrics().add(MetricField::StagesSkipped, 1);
            continue;
        }
        let stage_id = ctx.new_stage_id();
        let num_maps = dep.num_map_partitions();
        let site_rdd = dep.parent_rdd_id();
        let dep_for_tasks = Arc::clone(&dep);
        run_stage(&ctx, stage_id, num_maps, site_rdd, move |tc| {
            dep_for_tasks.run_map_task(tc.partition, tc);
        })?;
        ctx.inner.shuffle.mark_completed(dep.shuffle_id(), num_maps);
    }

    // Result stage.
    let stage_id = ctx.new_stage_id();
    let target = rdd.clone();
    let func = Arc::new(func);
    run_stage(&ctx, stage_id, rdd.num_partitions(), rdd.id(), move |tc| {
        func(tc.partition, target.iterator(tc.partition, tc))
    })
}

/// Collects all shuffle dependencies reachable from `root`, ordered so
/// that every shuffle appears after the shuffles its map stage reads from.
fn topo_shuffle_deps(root: Arc<dyn LineageNode>) -> Vec<Arc<dyn ShuffleDepDyn>> {
    struct Walk {
        order: Vec<Arc<dyn ShuffleDepDyn>>,
        seen_shuffles: HashSet<usize>,
        seen_nodes: HashSet<usize>,
    }

    impl Walk {
        fn visit_node(&mut self, node: Arc<dyn LineageNode>) {
            if !self.seen_nodes.insert(node.rdd_id()) {
                return;
            }
            for dep in node.dependencies() {
                match dep {
                    Dependency::Narrow(parent) => self.visit_node(parent),
                    Dependency::Shuffle(shuffle) => self.visit_shuffle(shuffle),
                }
            }
        }

        fn visit_shuffle(&mut self, shuffle: Arc<dyn ShuffleDepDyn>) {
            if !self.seen_shuffles.insert(shuffle.shuffle_id()) {
                return;
            }
            self.visit_node(shuffle.parent_lineage());
            self.order.push(shuffle);
        }
    }

    let mut walk = Walk {
        order: Vec::new(),
        seen_shuffles: HashSet::new(),
        seen_nodes: HashSet::new(),
    };
    walk.visit_node(root);
    walk.order
}

/// Runs one stage: `num_tasks` tasks placed on their partitions'
/// executors, with retry on injected failures and panics.
fn run_stage<R: Send + 'static>(
    ctx: &SpangleContext,
    stage_id: usize,
    num_tasks: usize,
    site_rdd: usize,
    work: impl Fn(&TaskContext) -> R + Send + Sync + 'static,
) -> Result<Vec<R>, JobError> {
    ctx.metrics().add(MetricField::StagesRun, 1);
    if num_tasks == 0 {
        return Ok(Vec::new());
    }

    let work = Arc::new(work);
    let (tx, rx) = unbounded::<(usize, usize, Result<R, TaskError>)>();

    let submit = |partition: usize, attempt: usize| {
        let work = Arc::clone(&work);
        let tx = tx.clone();
        let task_ctx = ctx.clone();
        ctx.inner.pool.submit(
            partition,
            Box::new(move || {
                task_ctx.metrics().add(MetricField::TasksRun, 1);
                let tc = TaskContext {
                    stage_id,
                    partition,
                    attempt,
                };
                let site = TaskSite {
                    rdd_id: site_rdd,
                    partition,
                };
                let outcome = if task_ctx.inner.failures.should_fail(site) {
                    Err(TaskError::Injected)
                } else {
                    std::panic::catch_unwind(AssertUnwindSafe(|| work(&tc)))
                        .map_err(|payload| TaskError::Panicked(panic_message(payload.as_ref())))
                };
                // The driver may have aborted the job already; a closed
                // channel is fine.
                let _ = tx.send((partition, attempt, outcome));
            }),
        );
    };

    for p in 0..num_tasks {
        submit(p, 0);
    }

    let mut results: Vec<Option<R>> = std::iter::repeat_with(|| None).take(num_tasks).collect();
    let mut completed = 0usize;
    while completed < num_tasks {
        let (partition, attempt, outcome) = rx
            .recv()
            .expect("executor pool dropped while a stage was running");
        match outcome {
            Ok(r) => {
                results[partition] = Some(r);
                completed += 1;
            }
            Err(err) => {
                let attempts_made = attempt + 1;
                if attempts_made >= ctx.inner.max_task_attempts {
                    return Err(JobError {
                        stage_id,
                        partition,
                        attempts: attempts_made,
                        last_error: err,
                    });
                }
                ctx.metrics().add(MetricField::TaskRetries, 1);
                ctx.metrics().add(MetricField::Recomputations, 1);
                submit(partition, attempt + 1);
            }
        }
    }

    Ok(results
        .into_iter()
        .map(|r| r.expect("stage finished with a missing partition result"))
        .collect())
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use crate::rdd::pair::PairRdd;
    use crate::{HashPartitioner, SpangleContext};
    use std::sync::Arc;

    fn sorted<T: Ord>(mut v: Vec<T>) -> Vec<T> {
        v.sort();
        v
    }

    #[test]
    fn reduce_by_key_merges_all_values() {
        let ctx = SpangleContext::new(3);
        let pairs: Vec<(u64, u64)> = (0..100).map(|i| (i % 10, 1)).collect();
        let rdd = ctx.parallelize(pairs, 5);
        let reduced = rdd.reduce_by_key(Arc::new(HashPartitioner::new(4)), |a, b| a + b);
        let out = sorted(reduced.collect().unwrap());
        assert_eq!(out, (0u64..10).map(|k| (k, 10u64)).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_job_runs_two_stages_and_charges_bytes() {
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize((0u64..50).map(|i| (i % 5, i)).collect(), 4);
        let reduced = rdd.reduce_by_key(Arc::new(HashPartitioner::new(3)), |a, b| a + b);
        let before = ctx.metrics_snapshot();
        reduced.collect().unwrap();
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(delta.stages_run, 2, "one map stage + one result stage");
        assert_eq!(delta.tasks_run, 4 + 3);
        assert!(delta.shuffle_write_bytes > 0);
        assert!(delta.shuffle_read_bytes > 0);
    }

    #[test]
    fn second_action_skips_the_completed_map_stage() {
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize((0u64..50).map(|i| (i % 5, i)).collect(), 4);
        let reduced = rdd.reduce_by_key(Arc::new(HashPartitioner::new(3)), |a, b| a + b);
        reduced.collect().unwrap();
        let before = ctx.metrics_snapshot();
        reduced.count().unwrap();
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(delta.stages_run, 1, "map stage must be skipped");
        assert_eq!(delta.stages_skipped, 1);
        assert_eq!(delta.shuffle_write_bytes, 0);
    }

    #[test]
    fn join_produces_the_cross_product_per_key() {
        let ctx = SpangleContext::new(2);
        let left = ctx.parallelize(vec![(1u64, "a"), (1, "b"), (2, "c")], 2);
        let right = ctx.parallelize(vec![(1u64, 10u64), (2, 20), (3, 30)], 2);
        // &str is not MemSize; map to String first.
        let left = left.map(|(k, v)| (k, v.to_string()));
        let joined = left.join(&right, Arc::new(HashPartitioner::new(2)));
        let out = sorted(joined.collect().unwrap());
        assert_eq!(
            out,
            vec![
                (1, ("a".to_string(), 10)),
                (1, ("b".to_string(), 10)),
                (2, ("c".to_string(), 20)),
            ]
        );
    }

    #[test]
    fn cogroup_of_copartitioned_sides_is_shuffle_free() {
        let ctx = SpangleContext::new(2);
        let p: Arc<HashPartitioner> = Arc::new(HashPartitioner::new(4));
        let left = ctx
            .parallelize((0u64..40).map(|i| (i % 8, i)).collect(), 4)
            .partition_by(p.clone());
        let right = ctx
            .parallelize((0u64..40).map(|i| (i % 8, i * 2)).collect(), 4)
            .partition_by(p.clone());
        // Materialise both sides' shuffles first.
        left.persist().count().unwrap();
        right.persist().count().unwrap();

        let before = ctx.metrics_snapshot();
        let grouped = left.cogroup(&right, p);
        let n = grouped.count().unwrap();
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(n, 8);
        assert_eq!(delta.shuffle_write_bytes, 0, "local join must not shuffle");
        assert_eq!(delta.stages_run, 1, "local join runs in a single stage");
    }

    #[test]
    fn cogroup_of_unaligned_sides_shuffles_both() {
        let ctx = SpangleContext::new(2);
        let left = ctx.parallelize((0u64..40).map(|i| (i % 8, i)).collect(), 4);
        let right = ctx.parallelize((0u64..40).map(|i| (i % 8, i * 2)).collect(), 5);
        let before = ctx.metrics_snapshot();
        let grouped = left.cogroup(&right, Arc::new(HashPartitioner::new(4)));
        grouped.count().unwrap();
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(delta.stages_run, 3, "two map stages + result stage");
        assert!(delta.shuffle_write_bytes > 0);
    }

    #[test]
    fn injected_task_failure_is_retried_and_job_succeeds() {
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize((0u64..20).collect(), 4);
        ctx.failure_injector().fail_task(rdd.id(), 2, 2);
        let before = ctx.metrics_snapshot();
        let sum: u64 = rdd.reduce(|a, b| a + b).unwrap().unwrap();
        assert_eq!(sum, 190);
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(delta.task_retries, 2);
        assert!(ctx.failure_injector().is_drained());
    }

    #[test]
    fn exhausted_attempts_abort_the_job() {
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize((0u64..20).collect(), 4);
        ctx.failure_injector().fail_task(rdd.id(), 1, 100);
        let err = rdd.collect().unwrap_err();
        assert_eq!(err.partition, 1);
        assert_eq!(err.attempts, 4);
    }

    #[test]
    fn panicking_task_surfaces_as_job_error() {
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize((0u64..10).collect(), 2);
        let bad = rdd.map(|x| {
            assert!(x != 7, "poison element");
            x
        });
        let err = bad.collect().unwrap_err();
        match err.last_error {
            crate::TaskError::Panicked(msg) => assert!(msg.contains("poison"), "msg was: {msg}"),
            other => panic!("expected panic error, got {other:?}"),
        }
    }

    #[test]
    fn evicted_cached_partition_is_recomputed_from_lineage() {
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize((0u64..100).collect(), 4).map(|x| x * 3);
        rdd.persist();
        let first = rdd.collect().unwrap();
        // All four partitions cached now; evict one and recompute.
        assert!(ctx.evict_cached_partition(rdd.id(), 1));
        let before = ctx.metrics_snapshot();
        let second = rdd.collect().unwrap();
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(first, second);
        assert_eq!(delta.cache_hits, 3);
        assert_eq!(delta.cache_misses, 1);
    }

    #[test]
    fn cached_shuffled_rdd_survives_without_rerunning_maps() {
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize((0u64..40).map(|i| (i % 4, 1u64)).collect(), 4);
        let reduced = rdd.reduce_by_key(Arc::new(HashPartitioner::new(2)), |a, b| a + b);
        reduced.persist();
        reduced.count().unwrap();
        let before = ctx.metrics_snapshot();
        let out = sorted(reduced.collect().unwrap());
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(out, vec![(0, 10), (1, 10), (2, 10), (3, 10)]);
        assert_eq!(delta.cache_hits, 2);
        assert_eq!(delta.shuffle_read_bytes, 0, "reads come from cache");
    }

    #[test]
    fn map_values_preserves_partitioning() {
        let ctx = SpangleContext::new(2);
        let p: Arc<HashPartitioner> = Arc::new(HashPartitioner::new(3));
        let rdd = ctx
            .parallelize((0u64..30).map(|i| (i, i)).collect(), 3)
            .partition_by(p.clone());
        let mapped = rdd.map_values(|v| v * 2);
        assert_eq!(
            mapped.partitioner_sig(),
            Some(crate::partitioner::Partitioner::<u64>::sig(&*p))
        );
        // And filtering keeps it too.
        let filtered = mapped.filter(|(_, v)| v % 4 == 0);
        assert!(filtered.partitioner_sig().is_some());
    }

    #[test]
    fn chained_shuffles_run_in_topological_order() {
        let ctx = SpangleContext::new(3);
        let rdd = ctx.parallelize((0u64..60).map(|i| (i % 6, 1u64)).collect(), 4);
        // Two chained shuffles: reduce then re-key and reduce again.
        let once = rdd.reduce_by_key(Arc::new(HashPartitioner::new(3)), |a, b| a + b);
        let twice = once
            .map(|(k, v)| (k % 2, v))
            .reduce_by_key(Arc::new(HashPartitioner::new(2)), |a, b| a + b);
        let before = ctx.metrics_snapshot();
        let out = sorted(twice.collect().unwrap());
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(out, vec![(0, 30), (1, 30)]);
        assert_eq!(delta.stages_run, 3);
    }

    #[test]
    fn group_by_key_collects_every_value() {
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize((0u64..12).map(|i| (i % 3, i)).collect(), 3);
        let grouped = rdd.group_by_key(Arc::new(HashPartitioner::new(2)));
        let mut out = grouped.collect().unwrap();
        out.sort_by_key(|(k, _)| *k);
        for (k, mut vs) in out {
            vs.sort();
            assert_eq!(vs, (0..4).map(|j| k + 3 * j).collect::<Vec<_>>());
        }
    }
}
