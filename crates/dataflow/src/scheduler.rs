//! The event-driven DAG scheduler.
//!
//! An action builds an explicit stage graph from the lineage of its target
//! RDD: one *map stage* per shuffle dependency plus one *result stage*,
//! with parent/child edges wherever a stage reads a shuffle's output. The
//! driver then submits every stage whose parents are satisfied and
//! advances purely on completion events — sibling map stages (the two
//! sides of an unaligned join, the two shuffles of a matmul) run
//! concurrently instead of barriering one after the other.
//!
//! Stage activation is demand-driven and race-free: a map stage first
//! [`ShuffleService::try_claim`]s its shuffle. Exactly one job becomes the
//! owner and runs the stage; a job that finds the shuffle `Completed`
//! skips the stage (Spark's skipped-stage reuse, without even visiting its
//! ancestors), and a job that finds it `InFlight` treats the stage as
//! *external*, registering a completion callback on the shuffle service
//! ([`ShuffleService::subscribe`]) that injects an event into the job's
//! own channel when the owner finishes or aborts. No thread is ever
//! parked on an awaited shuffle — stage readiness is event-driven end to
//! end, and an aborting owner wakes its externals immediately instead of
//! leaking parked waiters.
//!
//! Tasks are *placed* on the executor owning their partition but may be
//! stolen by an idle sibling (see [`crate::executor`]); stolen attempts
//! are charged as remote in the job's [`StageReport::tasks_stolen`] and
//! the per-executor busy times recorded in each [`JobReport`].
//!
//! Failure semantics are unchanged from the barrier scheduler: failed task
//! attempts retry up to the context's limit with lineage recomputation,
//! and an exhausted task aborts the whole job. On abort every shuffle the
//! job still owns is abandoned so concurrent or subsequent jobs can
//! re-claim them — an abort never wedges the cluster.
//!
//! Tasks must never trigger nested actions: all actions run on driver
//! (user) threads, tasks run on executor threads.
//!
//! [`ShuffleService::try_claim`]: crate::shuffle::ShuffleService::try_claim
//! [`ShuffleService::subscribe`]: crate::shuffle::ShuffleService::subscribe

use crate::context::SpangleContext;
use crate::executor::TaskInfo;
use crate::failure::TaskSite;
use crate::metrics::{JobReport, MetricField, StageOutcome, StageReport};
use crate::rdd::pair::ShuffleDepDyn;
use crate::rdd::{Dependency, LineageNode, Rdd};
use crate::shuffle::ShuffleClaim;
use crate::sync::channel::{unbounded, Receiver, Sender};
use crate::Data;
use std::collections::{HashMap, HashSet};
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::Instant;

/// Information available to a running task.
#[derive(Clone, Copy, Debug)]
pub struct TaskContext {
    /// Job the task belongs to.
    pub job_id: usize,
    /// Stage the task belongs to.
    pub stage_id: usize,
    /// Partition the task computes.
    pub partition: usize,
    /// Zero-based attempt number (>0 on retries).
    pub attempt: usize,
}

/// Why one task attempt failed.
#[derive(Clone, Debug)]
pub enum TaskError {
    /// The failure injector killed this attempt.
    Injected,
    /// User code panicked.
    Panicked(String),
    /// The executor pool shut down while the job was running.
    ExecutorShutdown,
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::Injected => write!(f, "injected failure"),
            TaskError::Panicked(msg) => write!(f, "task panicked: {msg}"),
            TaskError::ExecutorShutdown => write!(f, "executor pool shut down"),
        }
    }
}

/// A job failed: some task exhausted its attempts (or the cluster went
/// away underneath it).
#[derive(Clone, Debug)]
pub struct JobError {
    /// Job that aborted.
    pub job_id: usize,
    /// Stage of the failing task.
    pub stage_id: usize,
    /// Partition of the failing task.
    pub partition: usize,
    /// Attempts made.
    pub attempts: usize,
    /// The final attempt's error.
    pub last_error: TaskError,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job {} aborted: stage {} partition {} failed after {} attempts: {}",
            self.job_id, self.stage_id, self.partition, self.attempts, self.last_error
        )
    }
}

impl std::error::Error for JobError {}

/// Lifecycle of one stage inside one job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StageState {
    /// Not reached by activation yet.
    Idle,
    /// This job owns the stage and is waiting on `waiting_on` parents.
    Waiting,
    /// Another job is running the stage; a waiter thread is watching it.
    External,
    /// Tasks submitted, `remaining` still outstanding.
    Running,
    /// All tasks done (and the shuffle, if any, marked complete).
    Finished,
    /// Satisfied without running: the shuffle output already existed.
    Skipped,
}

/// Task body of a stage: map stages write shuffle blocks and yield `None`,
/// the result stage yields `Some(R)`.
type StageWork<R> = Arc<dyn Fn(&TaskContext) -> Option<R> + Send + Sync>;

/// One node of the job's stage graph.
struct Stage<R> {
    /// The shuffle this map stage feeds; `None` for the result stage.
    shuffle_id: Option<usize>,
    work: StageWork<R>,
    /// Stage indices this stage reads shuffle output from.
    parents: Vec<usize>,
    /// Stage indices that read this stage's shuffle output.
    children: Vec<usize>,
    num_tasks: usize,
    /// RDD id used as the failure-injection site for this stage's tasks.
    site_rdd: usize,
    state: StageState,
    /// Context-wide stage id, allocated when the stage is scheduled.
    stage_id: usize,
    /// Unsatisfied parents (only meaningful in `Waiting`).
    waiting_on: usize,
    /// Outstanding tasks (only meaningful in `Running`).
    remaining: usize,
    /// Summed task CPU time over all attempts.
    task_nanos: u64,
    /// Attempts that ran on a non-home executor (work stealing).
    tasks_stolen: usize,
    started: Option<Instant>,
}

/// What wakes the driver's event loop.
enum Event<R> {
    /// A task attempt finished (successfully or not).
    Task {
        stage_idx: usize,
        partition: usize,
        attempt: usize,
        nanos: u64,
        /// Executor the attempt actually ran on.
        ran_on: usize,
        /// Whether the attempt was stolen from its placed executor.
        stolen: bool,
        outcome: Result<Option<R>, TaskError>,
    },
    /// An external (other-job) map stage finished: `completed` says
    /// whether its owner completed it or abandoned it.
    External { stage_idx: usize, completed: bool },
}

/// Runs `func` over every partition of `rdd`, returning one result per
/// partition in partition order. This is the single entry point every
/// action lowers to.
pub fn run_job<T: Data, R: Send + 'static>(
    rdd: &Rdd<T>,
    func: impl Fn(usize, Arc<Vec<T>>) -> R + Send + Sync + 'static,
) -> Result<Vec<R>, JobError> {
    let ctx = rdd.context().clone();
    let job_id = ctx.new_job_id();
    let started = Instant::now();
    let (tx, rx) = unbounded::<Event<R>>();

    let stages = build_stages(rdd, func);
    let result_idx = stages.len() - 1;
    let num_results = stages[result_idx].num_tasks;

    let num_executors = ctx.num_executors();
    let mut run = JobRun {
        ctx,
        job_id,
        stages,
        tx,
        owned: HashSet::new(),
        running: 0,
        max_concurrent: 0,
        executor_busy: vec![0; num_executors],
        reports: Vec::new(),
    };
    let mut results: Vec<Option<R>> = std::iter::repeat_with(|| None).take(num_results).collect();

    run.activate(result_idx)?;
    run.drive(&rx, result_idx, &mut results)?;

    run.ctx.metrics().record_job(JobReport {
        job_id,
        stages: run.reports,
        max_concurrent_stages: run.max_concurrent,
        executor_busy_nanos: run.executor_busy,
        wall_nanos: started.elapsed().as_nanos() as u64,
    });
    Ok(results
        .into_iter()
        .map(|r| r.expect("job finished with a missing partition result"))
        .collect())
}

/// Builds the job's stage graph: one map stage per reachable shuffle
/// (parents before children, so indices are topological) plus the result
/// stage at the end.
fn build_stages<T: Data, R: Send + 'static>(
    rdd: &Rdd<T>,
    func: impl Fn(usize, Arc<Vec<T>>) -> R + Send + Sync + 'static,
) -> Vec<Stage<R>> {
    let deps = topo_shuffle_deps(rdd.lineage());
    let mut by_shuffle: HashMap<usize, usize> = HashMap::new();
    let mut stages: Vec<Stage<R>> = Vec::with_capacity(deps.len() + 1);

    for dep in &deps {
        by_shuffle.insert(dep.shuffle_id(), stages.len());
        let work = {
            let dep = Arc::clone(dep);
            Arc::new(move |tc: &TaskContext| {
                dep.run_map_task(tc.partition, tc);
                None
            })
        };
        stages.push(Stage {
            shuffle_id: Some(dep.shuffle_id()),
            work,
            parents: Vec::new(),
            children: Vec::new(),
            num_tasks: dep.num_map_partitions(),
            site_rdd: dep.parent_rdd_id(),
            state: StageState::Idle,
            stage_id: 0,
            waiting_on: 0,
            remaining: 0,
            task_nanos: 0,
            tasks_stolen: 0,
            started: None,
        });
    }

    // Wire map-stage edges: a stage's parents are the shuffles its map
    // side reads, i.e. the shuffle dependencies reachable from its parent
    // lineage without crossing another shuffle boundary.
    for (idx, dep) in deps.iter().enumerate() {
        for parent in direct_parent_shuffles(dep.parent_lineage()) {
            let p = by_shuffle[&parent.shuffle_id()];
            stages[p].children.push(idx);
            stages[idx].parents.push(p);
        }
    }

    let result_idx = stages.len();
    let mut result_parents = Vec::new();
    for parent in direct_parent_shuffles(rdd.lineage()) {
        let p = by_shuffle[&parent.shuffle_id()];
        stages[p].children.push(result_idx);
        result_parents.push(p);
    }
    let work = {
        let target = rdd.clone();
        let func = Arc::new(func);
        Arc::new(move |tc: &TaskContext| {
            Some(func(tc.partition, target.iterator(tc.partition, tc)))
        })
    };
    stages.push(Stage {
        shuffle_id: None,
        work,
        parents: result_parents,
        children: Vec::new(),
        num_tasks: rdd.num_partitions(),
        site_rdd: rdd.id(),
        state: StageState::Idle,
        stage_id: 0,
        waiting_on: 0,
        remaining: 0,
        task_nanos: 0,
        tasks_stolen: 0,
        started: None,
    });
    stages
}

/// Collects all shuffle dependencies reachable from `root`, ordered so
/// that every shuffle appears after the shuffles its map stage reads from.
fn topo_shuffle_deps(root: Arc<dyn LineageNode>) -> Vec<Arc<dyn ShuffleDepDyn>> {
    struct Walk {
        order: Vec<Arc<dyn ShuffleDepDyn>>,
        seen_shuffles: HashSet<usize>,
        seen_nodes: HashSet<usize>,
    }

    impl Walk {
        fn visit_node(&mut self, node: Arc<dyn LineageNode>) {
            if !self.seen_nodes.insert(node.rdd_id()) {
                return;
            }
            for dep in node.dependencies() {
                match dep {
                    Dependency::Narrow(parent) => self.visit_node(parent),
                    Dependency::Shuffle(shuffle) => self.visit_shuffle(shuffle),
                }
            }
        }

        fn visit_shuffle(&mut self, shuffle: Arc<dyn ShuffleDepDyn>) {
            if !self.seen_shuffles.insert(shuffle.shuffle_id()) {
                return;
            }
            self.visit_node(shuffle.parent_lineage());
            self.order.push(shuffle);
        }
    }

    let mut walk = Walk {
        order: Vec::new(),
        seen_shuffles: HashSet::new(),
        seen_nodes: HashSet::new(),
    };
    walk.visit_node(root);
    walk.order
}

/// The shuffle dependencies `root` reads *directly*: reachable through
/// narrow edges only, without descending past another shuffle boundary.
fn direct_parent_shuffles(root: Arc<dyn LineageNode>) -> Vec<Arc<dyn ShuffleDepDyn>> {
    let mut out: Vec<Arc<dyn ShuffleDepDyn>> = Vec::new();
    let mut seen_nodes = HashSet::new();
    let mut seen_shuffles = HashSet::new();
    let mut stack = vec![root];
    while let Some(node) = stack.pop() {
        if !seen_nodes.insert(node.rdd_id()) {
            continue;
        }
        for dep in node.dependencies() {
            match dep {
                Dependency::Narrow(parent) => stack.push(parent),
                Dependency::Shuffle(shuffle) => {
                    if seen_shuffles.insert(shuffle.shuffle_id()) {
                        out.push(shuffle);
                    }
                }
            }
        }
    }
    out
}

/// Mutable driver-side state of one running job.
struct JobRun<R> {
    ctx: SpangleContext,
    job_id: usize,
    stages: Vec<Stage<R>>,
    tx: Sender<Event<R>>,
    /// Shuffles this job claimed ownership of and has not completed yet;
    /// abandoned on abort so other jobs can re-claim them.
    owned: HashSet<usize>,
    /// Stages currently in `Running` state.
    running: usize,
    /// High-water mark of `running`.
    max_concurrent: usize,
    /// Nanoseconds of this job's task time per executor, from task events.
    executor_busy: Vec<u64>,
    reports: Vec<StageReport>,
}

impl<R: Send + 'static> JobRun<R> {
    /// Processes events until the result stage finishes.
    fn drive(
        &mut self,
        rx: &Receiver<Event<R>>,
        result_idx: usize,
        results: &mut [Option<R>],
    ) -> Result<(), JobError> {
        while self.stages[result_idx].state != StageState::Finished {
            let event = rx
                .recv()
                .expect("executor pool dropped while a job was running");
            match event {
                Event::Task {
                    stage_idx,
                    partition,
                    attempt,
                    nanos,
                    ran_on,
                    stolen,
                    outcome,
                } => {
                    self.stages[stage_idx].task_nanos += nanos;
                    self.stages[stage_idx].tasks_stolen += stolen as usize;
                    self.executor_busy[ran_on] += nanos;
                    match outcome {
                        Ok(result) => {
                            if let Some(r) = result {
                                results[partition] = Some(r);
                            }
                            self.stages[stage_idx].remaining -= 1;
                            if self.stages[stage_idx].remaining == 0 {
                                self.finish_stage(stage_idx)?;
                            }
                        }
                        Err(err) => {
                            let attempts = attempt + 1;
                            if attempts >= self.ctx.inner.max_task_attempts {
                                return Err(self.abort(stage_idx, partition, attempts, err));
                            }
                            self.ctx.metrics().add(MetricField::TaskRetries, 1);
                            self.ctx.metrics().add(MetricField::Recomputations, 1);
                            self.submit_task(stage_idx, partition, attempt + 1)?;
                        }
                    }
                }
                Event::External {
                    stage_idx,
                    completed,
                } => {
                    if completed {
                        self.skip(stage_idx);
                        self.satisfy_children(stage_idx)?;
                    } else {
                        // The owning job abandoned the shuffle; race to
                        // re-claim it (we may become the owner now).
                        self.stages[stage_idx].state = StageState::Idle;
                        self.activate(stage_idx)?;
                        // If activation skipped or finished it already,
                        // wake the children that were counting on it.
                        if self.stages[stage_idx].is_satisfied() {
                            self.satisfy_children(stage_idx)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Demand-driven activation: resolves the stage to `Skipped`,
    /// `External`, `Running`, or `Waiting` (and recursively activates its
    /// ancestors when this job owns it). Idempotent.
    fn activate(&mut self, idx: usize) -> Result<(), JobError> {
        if self.stages[idx].state != StageState::Idle {
            return Ok(());
        }
        match self.stages[idx].shuffle_id {
            // The result stage is always ours to run.
            None => self.activate_owned(idx),
            Some(shuffle_id) => match self.ctx.inner.shuffle.try_claim(shuffle_id) {
                ShuffleClaim::Completed => {
                    self.skip(idx);
                    Ok(())
                }
                ShuffleClaim::InFlight => {
                    self.watch(idx, shuffle_id);
                    Ok(())
                }
                ShuffleClaim::Owner => {
                    self.owned.insert(shuffle_id);
                    self.activate_owned(idx)
                }
            },
        }
    }

    /// Activates a stage this job owns: activates its parents, then either
    /// submits it (all parents satisfied) or parks it in `Waiting`.
    fn activate_owned(&mut self, idx: usize) -> Result<(), JobError> {
        self.stages[idx].state = StageState::Waiting;
        let parents = self.stages[idx].parents.clone();
        let mut waiting_on = 0;
        for p in parents {
            self.activate(p)?;
            if !self.stages[p].is_satisfied() {
                waiting_on += 1;
            }
        }
        self.stages[idx].waiting_on = waiting_on;
        if waiting_on == 0 {
            self.submit_stage(idx)?;
        }
        Ok(())
    }

    /// Marks a stage satisfied-without-running and accounts the skip.
    fn skip(&mut self, idx: usize) {
        let stage = &mut self.stages[idx];
        stage.state = StageState::Skipped;
        stage.stage_id = self.ctx.new_stage_id();
        self.ctx.metrics().add(MetricField::StagesSkipped, 1);
        self.reports.push(StageReport {
            stage_id: stage.stage_id,
            shuffle_id: stage.shuffle_id,
            num_tasks: stage.num_tasks,
            tasks_stolen: 0,
            outcome: StageOutcome::Skipped,
            task_nanos: 0,
            wall_nanos: 0,
        });
    }

    /// Subscribes to an in-flight external shuffle: when the owning job
    /// completes (or abandons) it, the callback reports back through this
    /// job's event channel. No thread is parked; if this job aborts
    /// meanwhile, the callback just hits a closed channel when it fires.
    fn watch(&mut self, idx: usize, shuffle_id: usize) {
        self.stages[idx].state = StageState::External;
        let tx = self.tx.clone();
        self.ctx.inner.shuffle.subscribe(
            shuffle_id,
            Box::new(move |completed| {
                let _ = tx.send(Event::External {
                    stage_idx: idx,
                    completed,
                });
            }),
        );
    }

    /// Submits every task of a stage to the executor pool.
    fn submit_stage(&mut self, idx: usize) -> Result<(), JobError> {
        let stage = &mut self.stages[idx];
        stage.stage_id = self.ctx.new_stage_id();
        stage.state = StageState::Running;
        stage.remaining = stage.num_tasks;
        stage.started = Some(Instant::now());
        self.ctx.metrics().add(MetricField::StagesRun, 1);
        self.running += 1;
        self.max_concurrent = self.max_concurrent.max(self.running);
        let num_tasks = stage.num_tasks;
        if num_tasks == 0 {
            return self.finish_stage(idx);
        }
        for partition in 0..num_tasks {
            self.submit_task(idx, partition, 0)?;
        }
        Ok(())
    }

    /// Submits one task attempt, placed on the executor owning its
    /// partition. A shut-down pool aborts the job cleanly.
    fn submit_task(
        &mut self,
        stage_idx: usize,
        partition: usize,
        attempt: usize,
    ) -> Result<(), JobError> {
        let stage = &self.stages[stage_idx];
        let tc = TaskContext {
            job_id: self.job_id,
            stage_id: stage.stage_id,
            partition,
            attempt,
        };
        let site = TaskSite {
            rdd_id: stage.site_rdd,
            partition,
        };
        let work = Arc::clone(&stage.work);
        let tx = self.tx.clone();
        let ctx = self.ctx.clone();
        let task = Box::new(move |info: &TaskInfo| {
            ctx.metrics().add(MetricField::TasksRun, 1);
            if info.stolen {
                ctx.metrics().add(MetricField::TasksStolen, 1);
            }
            let start = Instant::now();
            let outcome = if ctx.inner.failures.should_fail(site, attempt) {
                Err(TaskError::Injected)
            } else {
                std::panic::catch_unwind(AssertUnwindSafe(|| work(&tc)))
                    .map_err(|payload| TaskError::Panicked(panic_message(payload.as_ref())))
            };
            // Release the work closure (and the lineage Arcs it captures)
            // BEFORE signalling the driver: once the driver sees the final
            // event the job may return and drop its RDDs, and shuffle
            // garbage collection relies on those being the last references.
            drop(work);
            // The driver may have aborted the job already; a closed
            // channel is fine.
            let _ = tx.send(Event::Task {
                stage_idx,
                partition,
                attempt,
                nanos: start.elapsed().as_nanos() as u64,
                ran_on: info.ran_on,
                stolen: info.stolen,
                outcome,
            });
        });
        if self.ctx.inner.pool.submit(partition, task).is_err() {
            return Err(self.abort(stage_idx, partition, attempt, TaskError::ExecutorShutdown));
        }
        Ok(())
    }

    /// All tasks of a stage completed: publish its shuffle, account it,
    /// and wake children that were waiting on it.
    fn finish_stage(&mut self, idx: usize) -> Result<(), JobError> {
        let stage = &mut self.stages[idx];
        stage.state = StageState::Finished;
        self.running -= 1;
        let wall_nanos = stage
            .started
            .map(|s| s.elapsed().as_nanos() as u64)
            .unwrap_or(0);
        if let Some(shuffle_id) = stage.shuffle_id {
            self.ctx
                .inner
                .shuffle
                .mark_completed(shuffle_id, stage.num_tasks);
            self.owned.remove(&shuffle_id);
        }
        self.reports.push(StageReport {
            stage_id: stage.stage_id,
            shuffle_id: stage.shuffle_id,
            num_tasks: stage.num_tasks,
            tasks_stolen: stage.tasks_stolen,
            outcome: StageOutcome::Ran,
            task_nanos: stage.task_nanos,
            wall_nanos,
        });
        self.satisfy_children(idx)
    }

    /// Decrements the waiting count of every child parked on this (now
    /// satisfied) stage and submits those that became ready.
    fn satisfy_children(&mut self, idx: usize) -> Result<(), JobError> {
        let children = self.stages[idx].children.clone();
        for child in children {
            if self.stages[child].state == StageState::Waiting {
                self.stages[child].waiting_on -= 1;
                if self.stages[child].waiting_on == 0 {
                    self.submit_stage(child)?;
                }
            }
        }
        Ok(())
    }

    /// Aborts the job: releases every shuffle claim the job still holds so
    /// other (or future) jobs can re-claim and run those map stages.
    fn abort(
        &mut self,
        stage_idx: usize,
        partition: usize,
        attempts: usize,
        last_error: TaskError,
    ) -> JobError {
        for shuffle_id in self.owned.drain() {
            self.ctx.inner.shuffle.abandon(shuffle_id);
        }
        JobError {
            job_id: self.job_id,
            stage_id: self.stages[stage_idx].stage_id,
            partition,
            attempts,
            last_error,
        }
    }
}

impl<R> Stage<R> {
    /// Whether dependents of this stage can read its shuffle output.
    fn is_satisfied(&self) -> bool {
        matches!(self.state, StageState::Finished | StageState::Skipped)
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use crate::rdd::pair::PairRdd;
    use crate::{HashPartitioner, SpangleContext};
    use std::sync::Arc;

    fn sorted<T: Ord>(mut v: Vec<T>) -> Vec<T> {
        v.sort();
        v
    }

    #[test]
    fn reduce_by_key_merges_all_values() {
        let ctx = SpangleContext::new(3);
        let pairs: Vec<(u64, u64)> = (0..100).map(|i| (i % 10, 1)).collect();
        let rdd = ctx.parallelize(pairs, 5);
        let reduced = rdd.reduce_by_key(Arc::new(HashPartitioner::new(4)), |a, b| a + b);
        let out = sorted(reduced.collect().unwrap());
        assert_eq!(out, (0u64..10).map(|k| (k, 10u64)).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_job_runs_two_stages_and_charges_bytes() {
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize((0u64..50).map(|i| (i % 5, i)).collect(), 4);
        let reduced = rdd.reduce_by_key(Arc::new(HashPartitioner::new(3)), |a, b| a + b);
        let before = ctx.metrics_snapshot();
        reduced.collect().unwrap();
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(delta.stages_run, 2, "one map stage + one result stage");
        assert_eq!(delta.tasks_run, 4 + 3);
        assert!(delta.shuffle_write_bytes > 0);
        assert!(delta.shuffle_read_bytes > 0);
    }

    #[test]
    fn second_action_skips_the_completed_map_stage() {
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize((0u64..50).map(|i| (i % 5, i)).collect(), 4);
        let reduced = rdd.reduce_by_key(Arc::new(HashPartitioner::new(3)), |a, b| a + b);
        reduced.collect().unwrap();
        let before = ctx.metrics_snapshot();
        reduced.count().unwrap();
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(delta.stages_run, 1, "map stage must be skipped");
        assert_eq!(delta.stages_skipped, 1);
        assert_eq!(delta.shuffle_write_bytes, 0);
        let report = ctx.last_job_report().unwrap();
        assert_eq!(report.stages_run(), 1);
        assert_eq!(report.stages_skipped(), 1);
    }

    #[test]
    fn join_produces_the_cross_product_per_key() {
        let ctx = SpangleContext::new(2);
        let left = ctx.parallelize(vec![(1u64, "a"), (1, "b"), (2, "c")], 2);
        let right = ctx.parallelize(vec![(1u64, 10u64), (2, 20), (3, 30)], 2);
        // &str is not MemSize; map to String first.
        let left = left.map(|(k, v)| (k, v.to_string()));
        let joined = left.join(&right, Arc::new(HashPartitioner::new(2)));
        let out = sorted(joined.collect().unwrap());
        assert_eq!(
            out,
            vec![
                (1, ("a".to_string(), 10)),
                (1, ("b".to_string(), 10)),
                (2, ("c".to_string(), 20)),
            ]
        );
    }

    #[test]
    fn cogroup_of_copartitioned_sides_is_shuffle_free() {
        let ctx = SpangleContext::new(2);
        let p: Arc<HashPartitioner> = Arc::new(HashPartitioner::new(4));
        let left = ctx
            .parallelize((0u64..40).map(|i| (i % 8, i)).collect(), 4)
            .partition_by(p.clone());
        let right = ctx
            .parallelize((0u64..40).map(|i| (i % 8, i * 2)).collect(), 4)
            .partition_by(p.clone());
        // Materialise both sides' shuffles first.
        left.persist().count().unwrap();
        right.persist().count().unwrap();

        let before = ctx.metrics_snapshot();
        let grouped = left.cogroup(&right, p);
        let n = grouped.count().unwrap();
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(n, 8);
        assert_eq!(delta.shuffle_write_bytes, 0, "local join must not shuffle");
        assert_eq!(delta.stages_run, 1, "local join runs in a single stage");
    }

    #[test]
    fn cogroup_of_unaligned_sides_shuffles_both() {
        let ctx = SpangleContext::new(2);
        let left = ctx.parallelize((0u64..40).map(|i| (i % 8, i)).collect(), 4);
        let right = ctx.parallelize((0u64..40).map(|i| (i % 8, i * 2)).collect(), 5);
        let before = ctx.metrics_snapshot();
        let grouped = left.cogroup(&right, Arc::new(HashPartitioner::new(4)));
        grouped.count().unwrap();
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(delta.stages_run, 3, "two map stages + result stage");
        assert!(delta.shuffle_write_bytes > 0);
    }

    /// The event-driven scheduler's signature behaviour: the two map
    /// stages of an unaligned join have no edge between them, so both are
    /// submitted before any task completes and run concurrently.
    #[test]
    fn unaligned_join_runs_sibling_map_stages_concurrently() {
        let ctx = SpangleContext::new(4);
        let left = ctx.parallelize((0u64..400).map(|i| (i % 16, i)).collect(), 4);
        let right = ctx.parallelize((0u64..400).map(|i| (i % 16, i * 2)).collect(), 5);
        let joined = left.join(&right, Arc::new(HashPartitioner::new(4)));
        let n = joined.count().unwrap();
        assert!(n > 0);
        let report = ctx.last_job_report().unwrap();
        assert!(
            report.max_concurrent_stages >= 2,
            "sibling map stages must overlap, report was: {report}"
        );
        assert_eq!(report.stages.len(), 3);
    }

    /// When one sibling map stage exhausts its retries the job aborts
    /// without deadlocking, and every shuffle claim the job held is
    /// released so a rerun can claim and complete them.
    #[test]
    fn sibling_stage_failure_aborts_and_releases_claims() {
        let ctx = SpangleContext::new(2);
        let left = ctx.parallelize((0u64..40).map(|i| (i % 8, i)).collect(), 4);
        let right = ctx.parallelize((0u64..40).map(|i| (i % 8, i * 2)).collect(), 5);
        // Kill one left-side map task exactly as often as the attempt
        // limit: the first job aborts, the injector drains, a rerun works.
        ctx.failure_injector().fail_task(left.id(), 1, 4);
        let grouped = left.cogroup(&right, Arc::new(HashPartitioner::new(4)));
        let err = grouped.count().unwrap_err();
        assert_eq!(err.partition, 1);
        assert_eq!(err.attempts, 4);
        assert!(ctx.failure_injector().is_drained());
        // Claims were abandoned, not leaked: the rerun owns both map
        // stages again and completes.
        let n = grouped.count().unwrap();
        assert_eq!(n, 8);
    }

    /// Two jobs racing over the same shuffled RDD: the claim protocol
    /// elects one owner for the map stage, the other job waits for (or
    /// reuses) its output, and the maps run exactly once in total.
    #[test]
    fn concurrent_jobs_run_a_shared_map_stage_exactly_once() {
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize((0u64..60).map(|i| (i % 6, 1u64)).collect(), 4);
        let reduced = rdd.reduce_by_key(Arc::new(HashPartitioner::new(3)), |a, b| a + b);
        let before = ctx.metrics_snapshot();
        let (a, b) = {
            let ra = reduced.clone();
            let rb = reduced.clone();
            let ta = std::thread::spawn(move || sorted(ra.collect().unwrap()));
            let tb = std::thread::spawn(move || sorted(rb.collect().unwrap()));
            (ta.join().unwrap(), tb.join().unwrap())
        };
        assert_eq!(a, b);
        assert_eq!(a, (0u64..6).map(|k| (k, 10u64)).collect::<Vec<_>>());
        let delta = ctx.metrics_snapshot() - before;
        // One map stage (4 tasks) ran once; each job ran its own result
        // stage (3 tasks); the non-owner skipped the map stage.
        assert_eq!(delta.tasks_run, 4 + 3 + 3, "map tasks must not run twice");
        assert_eq!(delta.stages_run, 3);
        assert_eq!(delta.stages_skipped, 1);
    }

    #[test]
    fn injected_task_failure_is_retried_and_job_succeeds() {
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize((0u64..20).collect(), 4);
        ctx.failure_injector().fail_task(rdd.id(), 2, 2);
        let before = ctx.metrics_snapshot();
        let sum: u64 = rdd.reduce(|a, b| a + b).unwrap().unwrap();
        assert_eq!(sum, 190);
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(delta.task_retries, 2);
        assert!(ctx.failure_injector().is_drained());
    }

    #[test]
    fn exhausted_attempts_abort_the_job() {
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize((0u64..20).collect(), 4);
        ctx.failure_injector().fail_task(rdd.id(), 1, 100);
        let err = rdd.collect().unwrap_err();
        assert_eq!(err.partition, 1);
        assert_eq!(err.attempts, 4);
    }

    #[test]
    fn panicking_task_surfaces_as_job_error() {
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize((0u64..10).collect(), 2);
        let bad = rdd.map(|x| {
            assert!(x != 7, "poison element");
            x
        });
        let err = bad.collect().unwrap_err();
        match err.last_error {
            crate::TaskError::Panicked(msg) => assert!(msg.contains("poison"), "msg was: {msg}"),
            other => panic!("expected panic error, got {other:?}"),
        }
    }

    #[test]
    fn evicted_cached_partition_is_recomputed_from_lineage() {
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize((0u64..100).collect(), 4).map(|x| x * 3);
        rdd.persist();
        let first = rdd.collect().unwrap();
        // All four partitions cached now; evict one and recompute.
        assert!(ctx.evict_cached_partition(rdd.id(), 1));
        let before = ctx.metrics_snapshot();
        let second = rdd.collect().unwrap();
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(first, second);
        assert_eq!(delta.cache_hits, 3);
        assert_eq!(delta.cache_misses, 1);
    }

    #[test]
    fn cached_shuffled_rdd_survives_without_rerunning_maps() {
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize((0u64..40).map(|i| (i % 4, 1u64)).collect(), 4);
        let reduced = rdd.reduce_by_key(Arc::new(HashPartitioner::new(2)), |a, b| a + b);
        reduced.persist();
        reduced.count().unwrap();
        let before = ctx.metrics_snapshot();
        let out = sorted(reduced.collect().unwrap());
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(out, vec![(0, 10), (1, 10), (2, 10), (3, 10)]);
        assert_eq!(delta.cache_hits, 2);
        assert_eq!(delta.shuffle_read_bytes, 0, "reads come from cache");
    }

    #[test]
    fn map_values_preserves_partitioning() {
        let ctx = SpangleContext::new(2);
        let p: Arc<HashPartitioner> = Arc::new(HashPartitioner::new(3));
        let rdd = ctx
            .parallelize((0u64..30).map(|i| (i, i)).collect(), 3)
            .partition_by(p.clone());
        let mapped = rdd.map_values(|v| v * 2);
        assert_eq!(
            mapped.partitioner_sig(),
            Some(crate::partitioner::Partitioner::<u64>::sig(&*p))
        );
        // And filtering keeps it too.
        let filtered = mapped.filter(|(_, v)| v % 4 == 0);
        assert!(filtered.partitioner_sig().is_some());
    }

    #[test]
    fn chained_shuffles_run_in_topological_order() {
        let ctx = SpangleContext::new(3);
        let rdd = ctx.parallelize((0u64..60).map(|i| (i % 6, 1u64)).collect(), 4);
        // Two chained shuffles: reduce then re-key and reduce again.
        let once = rdd.reduce_by_key(Arc::new(HashPartitioner::new(3)), |a, b| a + b);
        let twice = once
            .map(|(k, v)| (k % 2, v))
            .reduce_by_key(Arc::new(HashPartitioner::new(2)), |a, b| a + b);
        let before = ctx.metrics_snapshot();
        let out = sorted(twice.collect().unwrap());
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(out, vec![(0, 30), (1, 30)]);
        assert_eq!(delta.stages_run, 3);
        // Chained stages depend on each other, so the event-driven
        // scheduler must still run them one at a time, parents first.
        let report = ctx.last_job_report().unwrap();
        assert_eq!(report.max_concurrent_stages, 1);
        let order: Vec<Option<usize>> = report.stages.iter().map(|s| s.shuffle_id).collect();
        assert_eq!(order.len(), 3);
        assert!(order[0].is_some() && order[1].is_some());
        assert!(
            order[0].unwrap() < order[1].unwrap(),
            "first shuffle must complete before the one that reads it"
        );
        assert_eq!(order[2], None, "result stage completes last");
    }

    /// Deliberately skewed partition durations: the executor owning the
    /// slow partitions backs up, its idle sibling steals the backlog, and
    /// the steals are charged as remote in the job report.
    #[test]
    fn skewed_partitions_are_stolen_and_charged_remote() {
        let ctx = SpangleContext::new(2);
        // 6 partitions of 10 elements on 2 executors: partitions 0/2/4
        // (all placed on executor 0) sleep once, partitions 1/3/5 are
        // instant — executor 1 drains its own queue and must steal.
        let rdd = ctx.parallelize((0u64..60).collect(), 6).map(|x| {
            if (x / 10) % 2 == 0 && x % 10 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(40));
            }
            x
        });
        let before = ctx.metrics_snapshot();
        assert_eq!(rdd.count().unwrap(), 60);
        let delta = ctx.metrics_snapshot() - before;
        let report = ctx.last_job_report().unwrap();
        assert!(
            report.tasks_stolen() >= 1,
            "idle executor must steal from the skewed backlog, report was: {report}"
        );
        assert_eq!(delta.tasks_stolen, report.tasks_stolen() as u64);
        assert_eq!(report.executor_busy_nanos.len(), 2);
        assert!(
            report.executor_busy_nanos.iter().sum::<u64>() > 0,
            "busy time must be attributed"
        );
    }

    /// The locality guarantee: a perfectly balanced co-partitioned join
    /// (one task per executor at every stage) never steals — every task
    /// runs on the executor its partition is placed on, so the join stays
    /// genuinely local.
    #[test]
    fn balanced_copartitioned_join_never_steals() {
        let ctx = SpangleContext::new(4);
        let p: Arc<HashPartitioner> = Arc::new(HashPartitioner::new(4));
        let left = ctx
            .parallelize((0u64..40).map(|i| (i % 8, i)).collect(), 4)
            .partition_by(p.clone());
        let right = ctx
            .parallelize((0u64..40).map(|i| (i % 8, i * 2)).collect(), 4)
            .partition_by(p.clone());
        let before = ctx.metrics_snapshot();
        left.persist().count().unwrap();
        right.persist().count().unwrap();

        let before_join = ctx.metrics_snapshot();
        let grouped = left.cogroup(&right, p);
        let n = grouped.count().unwrap();
        let join_delta = ctx.metrics_snapshot() - before_join;
        let delta = ctx.metrics_snapshot() - before;
        assert_eq!(n, 8);
        let report = ctx.last_job_report().unwrap();
        assert_eq!(
            report.tasks_stolen(),
            0,
            "balanced one-task-per-executor stages must stay local: {report}"
        );
        assert_eq!(
            delta.tasks_stolen, 0,
            "no stage of this balanced pipeline may steal"
        );
        assert_eq!(
            join_delta.shuffle_write_bytes, 0,
            "local join must not shuffle"
        );
    }

    #[test]
    fn group_by_key_collects_every_value() {
        let ctx = SpangleContext::new(2);
        let rdd = ctx.parallelize((0u64..12).map(|i| (i % 3, i)).collect(), 3);
        let grouped = rdd.group_by_key(Arc::new(HashPartitioner::new(2)));
        let mut out = grouped.collect().unwrap();
        out.sort_by_key(|(k, _)| *k);
        for (k, mut vs) in out {
            vs.sort();
            assert_eq!(vs, (0..4).map(|j| k + 3 * j).collect::<Vec<_>>());
        }
    }
}
